//! A raw SRAM device model.

use envy_sim::time::Ns;

/// A byte-addressable SRAM array with access timing and persistence
/// semantics.
///
/// eNVy's SRAM is battery backed: "the SRAM must be battery backed to
/// prevent data loss in the event of a power failure" (§3.2). The model
/// supports both battery-backed and volatile parts so tests can verify
/// that recovery relies only on persistent state.
///
/// # Example
///
/// ```
/// use envy_sram::SramArray;
///
/// let mut s = SramArray::battery_backed(1024);
/// s.write(100, &[1, 2, 3]);
/// s.power_failure();
/// let mut out = [0u8; 3];
/// s.read(100, &mut out);
/// assert_eq!(out, [1, 2, 3]); // survived the power failure
/// ```
#[derive(Debug, Clone)]
pub struct SramArray {
    data: Vec<u8>,
    battery_backed: bool,
    access_time: Ns,
}

impl SramArray {
    /// Create a battery-backed SRAM of `bytes` capacity with the paper's
    /// 100 ns access time (Figure 12).
    pub fn battery_backed(bytes: usize) -> SramArray {
        SramArray {
            data: vec![0; bytes],
            battery_backed: true,
            access_time: Ns::from_nanos(100),
        }
    }

    /// Create a volatile SRAM (loses contents on power failure).
    pub fn volatile(bytes: usize) -> SramArray {
        SramArray {
            battery_backed: false,
            ..SramArray::battery_backed(bytes)
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Whether contents survive power failures.
    pub fn is_battery_backed(&self) -> bool {
        self.battery_backed
    }

    /// Single-access device time.
    pub fn access_time(&self) -> Ns {
        self.access_time
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity.
    pub fn read(&self, addr: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.data[addr..addr + buf.len()]);
    }

    /// Write `bytes` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity.
    pub fn write(&mut self, addr: usize, bytes: &[u8]) {
        self.data[addr..addr + bytes.len()].copy_from_slice(bytes);
    }

    /// Simulate a power failure: volatile parts lose their contents,
    /// battery-backed parts keep them.
    pub fn power_failure(&mut self) {
        if !self.battery_backed {
            self.data.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = SramArray::battery_backed(64);
        s.write(10, &[9, 8, 7]);
        let mut out = [0; 3];
        s.read(10, &mut out);
        assert_eq!(out, [9, 8, 7]);
    }

    #[test]
    fn battery_backed_survives_power_failure() {
        let mut s = SramArray::battery_backed(16);
        s.write(0, &[0xAA; 16]);
        s.power_failure();
        let mut out = [0; 16];
        s.read(0, &mut out);
        assert_eq!(out, [0xAA; 16]);
    }

    #[test]
    fn volatile_loses_contents() {
        let mut s = SramArray::volatile(16);
        assert!(!s.is_battery_backed());
        s.write(0, &[0xAA; 16]);
        s.power_failure();
        let mut out = [0xFF; 16];
        s.read(0, &mut out);
        assert_eq!(out, [0; 16]);
    }

    #[test]
    fn paper_access_time() {
        let s = SramArray::battery_backed(1);
        assert_eq!(s.access_time(), Ns::from_nanos(100));
        assert_eq!(s.capacity(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let s = SramArray::battery_backed(4);
        let mut out = [0; 8];
        s.read(0, &mut out);
    }
}
