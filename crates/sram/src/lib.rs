#![warn(missing_docs)]
//! Battery-backed SRAM substrate for the eNVy reproduction.
//!
//! eNVy pairs its Flash array with a relatively small battery-backed SRAM
//! (§3.2–3.3): a **FIFO write buffer** absorbs copy-on-write traffic and
//! multiple writes to hot pages, and the **page table** lives in SRAM
//! because mappings change frequently and must update in place.
//!
//! * [`array::SramArray`] — a raw SRAM device with access timing and
//!   battery-backed/volatile persistence semantics.
//! * [`buffer::WriteBuffer`] — the FIFO page buffer: pages enter at the
//!   head, are flushed from the tail, and track their segment of origin
//!   (needed by the locality-gathering cleaner, §4.3).

pub mod array;
pub mod buffer;

pub use array::SramArray;
pub use buffer::{BufferedPage, FrameMut, InsertError, WriteBuffer};
