//! The FIFO write buffer (§3.2).
//!
//! "The SRAM is managed as a FIFO write buffer. New pages are inserted at
//! the head and pages are flushed from the tail. … The ability to retain
//! pages in SRAM for some time helps to reduce traffic to the Flash array
//! since multiple writes to the same page do not require additional
//! copy-on-write operations."
//!
//! Each buffered page records its *origin* — the Flash segment (or
//! partition) it was copied from — because the locality-gathering cleaner
//! flushes pages back to where they came from (§4.3: "When a page is
//! placed into the SRAM buffer, we record which segment it comes from.
//! When it is flushed, it is written back to the same segment.").

use std::collections::HashMap;

/// A page held in the SRAM write buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferedPage {
    /// Logical page number.
    pub logical: u64,
    /// Origin segment (or partition, under the hybrid policy) recorded at
    /// copy-on-write time; `None` for pages that never lived in Flash.
    pub origin: Option<u32>,
    /// Page contents when payload storage is enabled.
    pub data: Option<Box<[u8]>>,
}

/// FIFO write buffer of page frames.
///
/// Frames are stored in a slab so that a buffered page's contents can be
/// updated in place (that is the buffer's purpose) while FIFO order is
/// tracked separately.
///
/// # Example
///
/// ```
/// use envy_sram::WriteBuffer;
///
/// let mut buf = WriteBuffer::new(2, 16, false);
/// buf.insert(7, Some(3), None).unwrap();
/// buf.insert(9, None, None).unwrap();
/// assert!(buf.is_full());
/// let oldest = buf.pop_tail().unwrap();
/// assert_eq!(oldest.logical, 7); // FIFO: first in, first out
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    page_bytes: usize,
    store_data: bool,
    slots: Vec<Option<BufferedPage>>,
    free: Vec<usize>,
    fifo: std::collections::VecDeque<usize>,
    index: HashMap<u64, usize>,
    /// Page frames handed back via [`WriteBuffer::recycle_frame`], reused
    /// by the next insert so steady-state copy-on-write/flush cycles do
    /// not allocate. Bounded by `capacity`.
    spare_frames: Vec<Box<[u8]>>,
}

impl WriteBuffer {
    /// Create a buffer of `capacity` page frames of `page_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `page_bytes` is zero.
    pub fn new(capacity: usize, page_bytes: usize, store_data: bool) -> WriteBuffer {
        assert!(capacity > 0, "buffer capacity must be non-zero");
        assert!(page_bytes > 0, "page size must be non-zero");
        WriteBuffer {
            capacity,
            page_bytes,
            store_data,
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            fifo: std::collections::VecDeque::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            spare_frames: Vec::new(),
        }
    }

    /// Number of buffered pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the buffer holds no pages.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether every frame is occupied.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Whether a logical page is buffered.
    pub fn contains(&self, logical: u64) -> bool {
        self.index.contains_key(&logical)
    }

    /// Insert a page at the FIFO head.
    ///
    /// `initial` seeds the frame contents (the Flash copy made by
    /// copy-on-write); ignored when payload storage is disabled.
    ///
    /// Returns `Err(())` if the buffer is full — the caller must flush
    /// first — or if the page is already buffered (re-writes go through
    /// [`WriteBuffer::write`], not a second insert).
    ///
    /// # Errors
    ///
    /// See above; the error carries no payload.
    #[allow(clippy::result_unit_err)]
    pub fn insert(
        &mut self,
        logical: u64,
        origin: Option<u32>,
        initial: Option<&[u8]>,
    ) -> Result<(), ()> {
        if self.is_full() || self.contains(logical) {
            return Err(());
        }
        let slot = self.free.pop().expect("free list tracks occupancy");
        let data = if self.store_data {
            let mut page = self
                .spare_frames
                .pop()
                .unwrap_or_else(|| vec![0xFF; self.page_bytes].into_boxed_slice());
            match initial {
                Some(initial) => page.copy_from_slice(initial),
                None => page.fill(0xFF),
            }
            Some(page)
        } else {
            None
        };
        self.slots[slot] = Some(BufferedPage {
            logical,
            origin,
            data,
        });
        self.fifo.push_back(slot);
        self.index.insert(logical, slot);
        Ok(())
    }

    /// Write bytes into a buffered page.
    ///
    /// Returns `false` if the page is not buffered. With payload storage
    /// disabled this only confirms residency.
    ///
    /// # Panics
    ///
    /// Panics if `offset + bytes.len()` exceeds the page size.
    pub fn write(&mut self, logical: u64, offset: usize, bytes: &[u8]) -> bool {
        assert!(
            offset + bytes.len() <= self.page_bytes,
            "write exceeds page bounds"
        );
        let Some(&slot) = self.index.get(&logical) else {
            return false;
        };
        if let Some(page) = self.slots[slot].as_mut().and_then(|p| p.data.as_mut()) {
            page[offset..offset + bytes.len()].copy_from_slice(bytes);
        }
        true
    }

    /// Read bytes from a buffered page.
    ///
    /// Returns `false` if the page is not buffered.
    ///
    /// # Panics
    ///
    /// Panics if `offset + buf.len()` exceeds the page size.
    pub fn read(&self, logical: u64, offset: usize, buf: &mut [u8]) -> bool {
        assert!(
            offset + buf.len() <= self.page_bytes,
            "read exceeds page bounds"
        );
        let Some(&slot) = self.index.get(&logical) else {
            return false;
        };
        if let Some(page) = self.slots[slot].as_ref().and_then(|p| p.data.as_ref()) {
            buf.copy_from_slice(&page[offset..offset + buf.len()]);
        }
        true
    }

    /// Borrow a buffered page.
    pub fn get(&self, logical: u64) -> Option<&BufferedPage> {
        self.index
            .get(&logical)
            .and_then(|&slot| self.slots[slot].as_ref())
    }

    /// The oldest page (next flush candidate) without removing it.
    pub fn peek_tail(&self) -> Option<&BufferedPage> {
        self.fifo
            .front()
            .and_then(|&slot| self.slots[slot].as_ref())
    }

    /// Remove and return the oldest page.
    pub fn pop_tail(&mut self) -> Option<BufferedPage> {
        let slot = self.fifo.pop_front()?;
        let page = self.slots[slot].take().expect("fifo tracks live slots");
        self.index.remove(&page.logical);
        self.free.push(slot);
        Some(page)
    }

    /// Remove a specific page (used when a cleaned/rolled-back page must
    /// leave the buffer out of FIFO order).
    pub fn remove(&mut self, logical: u64) -> Option<BufferedPage> {
        let slot = self.index.remove(&logical)?;
        let page = self.slots[slot].take().expect("index tracks live slots");
        self.fifo.retain(|&s| s != slot);
        self.free.push(slot);
        Some(page)
    }

    /// Return a page frame (taken from a popped [`BufferedPage`]) for
    /// reuse by future inserts. Wrong-sized frames and overflow beyond
    /// one frame per slot are dropped.
    pub fn recycle_frame(&mut self, frame: Box<[u8]>) {
        if frame.len() == self.page_bytes && self.spare_frames.len() < self.capacity {
            self.spare_frames.push(frame);
        }
    }

    /// Iterate over buffered pages in FIFO order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &BufferedPage> {
        self.fifo
            .iter()
            .filter_map(move |&slot| self.slots[slot].as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_insertion_order() {
        let mut b = WriteBuffer::new(4, 8, false);
        for lp in [10, 20, 30] {
            b.insert(lp, None, None).unwrap();
        }
        assert_eq!(b.pop_tail().unwrap().logical, 10);
        assert_eq!(b.pop_tail().unwrap().logical, 20);
        assert_eq!(b.pop_tail().unwrap().logical, 30);
        assert_eq!(b.pop_tail(), None);
    }

    #[test]
    fn rewrite_does_not_change_fifo_position() {
        let mut b = WriteBuffer::new(4, 8, true);
        b.insert(1, None, None).unwrap();
        b.insert(2, None, None).unwrap();
        assert!(b.write(1, 0, &[42])); // rewrite of oldest page
        assert_eq!(b.peek_tail().unwrap().logical, 1);
    }

    #[test]
    fn insert_full_fails() {
        let mut b = WriteBuffer::new(2, 8, false);
        b.insert(1, None, None).unwrap();
        b.insert(2, None, None).unwrap();
        assert!(b.is_full());
        assert!(b.insert(3, None, None).is_err());
    }

    #[test]
    fn duplicate_insert_fails() {
        let mut b = WriteBuffer::new(4, 8, false);
        b.insert(1, None, None).unwrap();
        assert!(b.insert(1, None, None).is_err());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn data_roundtrip_with_seed() {
        let mut b = WriteBuffer::new(2, 4, true);
        b.insert(5, Some(9), Some(&[1, 2, 3, 4])).unwrap();
        b.write(5, 1, &[9, 9]);
        let mut out = [0; 4];
        assert!(b.read(5, 0, &mut out));
        assert_eq!(out, [1, 9, 9, 4]);
        let page = b.get(5).unwrap();
        assert_eq!(page.origin, Some(9));
        assert_eq!(page.data.as_deref(), Some(&[1u8, 9, 9, 4][..]));
    }

    #[test]
    fn read_write_missing_page() {
        let mut b = WriteBuffer::new(2, 4, true);
        assert!(!b.write(7, 0, &[0]));
        let mut out = [0; 1];
        assert!(!b.read(7, 0, &mut out));
    }

    #[test]
    fn remove_out_of_order_keeps_fifo_consistent() {
        let mut b = WriteBuffer::new(4, 8, false);
        for lp in [1, 2, 3] {
            b.insert(lp, None, None).unwrap();
        }
        let removed = b.remove(2).unwrap();
        assert_eq!(removed.logical, 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop_tail().unwrap().logical, 1);
        assert_eq!(b.pop_tail().unwrap().logical, 3);
        // Slot can be reused.
        b.insert(9, None, None).unwrap();
        assert!(b.contains(9));
    }

    #[test]
    fn slots_recycle_under_churn() {
        let mut b = WriteBuffer::new(3, 8, true);
        for round in 0..100u64 {
            b.insert(round, None, None).unwrap();
            if b.is_full() {
                b.pop_tail();
            }
        }
        assert!(b.len() <= 3);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut b = WriteBuffer::new(4, 8, false);
        for lp in [5, 6, 7] {
            b.insert(lp, None, None).unwrap();
        }
        let order: Vec<u64> = b.iter().map(|p| p.logical).collect();
        assert_eq!(order, vec![5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "exceeds page bounds")]
    fn write_past_page_end_panics() {
        let mut b = WriteBuffer::new(1, 4, true);
        b.insert(1, None, None).unwrap();
        b.write(1, 3, &[0, 0]);
    }

    #[test]
    fn stateless_mode_tracks_residency_only() {
        let mut b = WriteBuffer::new(2, 8, false);
        b.insert(1, Some(0), None).unwrap();
        assert!(b.write(1, 0, &[1, 2]));
        assert!(b.get(1).unwrap().data.is_none());
    }
}
