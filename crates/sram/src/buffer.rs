//! The FIFO write buffer (§3.2).
//!
//! "The SRAM is managed as a FIFO write buffer. New pages are inserted at
//! the head and pages are flushed from the tail. … The ability to retain
//! pages in SRAM for some time helps to reduce traffic to the Flash array
//! since multiple writes to the same page do not require additional
//! copy-on-write operations."
//!
//! Each buffered page records its *origin* — the Flash segment (or
//! partition) it was copied from — because the locality-gathering cleaner
//! flushes pages back to where they came from (§4.3: "When a page is
//! placed into the SRAM buffer, we record which segment it comes from.
//! When it is flushed, it is written back to the same segment.").
//!
//! The logical-page → frame index is a direct-map array over the bounded
//! logical page space rather than a hash map: every host access probes
//! the buffer, and at 4 bytes per logical page the index costs less SRAM
//! than the page table's 6 bytes per mapping while making the probe a
//! single array load.
//!
//! Both the index and the page frames are published to concurrent readers
//! (see `envy_sync`): index entries are single atomic `u32` words and the
//! frames live in a fixed atomic arena, so a reader validating against the
//! store's epoch can copy a buffered page lock-free while the single
//! writer mutates behind it.

use envy_sync::{ArenaView, SharedArena, SharedSlots, SlotsView};

/// Metadata for a page held in the SRAM write buffer. Payload bytes (when
/// stored) live in the buffer's shared frame arena, not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferedPage {
    /// Logical page number.
    pub logical: u64,
    /// Origin segment (or partition, under the hybrid policy) recorded at
    /// copy-on-write time; `None` for pages that never lived in Flash.
    pub origin: Option<u32>,
}

/// Why an insert was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// Every frame is occupied — the caller must flush first.
    BufferFull,
    /// The page is already buffered — re-writes go through
    /// [`WriteBuffer::write`], not a second insert.
    AlreadyBuffered,
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::BufferFull => write!(f, "write buffer is full"),
            InsertError::AlreadyBuffered => write!(f, "page is already buffered"),
        }
    }
}

impl std::error::Error for InsertError {}

/// Direct-map index encoding: `0` = not buffered, else `slot + 1`. The
/// zero sentinel keeps "not buffered" the all-zeroes state, so a reader
/// racing an insert can only ever observe empty or a fully-formed entry.
const IDX_EMPTY: u32 = 0;

/// Exclusive access to one page frame claimed by
/// [`WriteBuffer::insert_frame`].
///
/// The frame's contents are **unspecified** on claim — the caller must
/// overwrite the whole page or [`FrameMut::fill`] it before relying on any
/// byte.
#[derive(Debug)]
pub struct FrameMut<'a> {
    arena: &'a SharedArena,
    base: usize,
    len: usize,
}

impl FrameMut<'_> {
    /// Frame length in bytes (the page size).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the frame has zero bytes (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set every byte of the frame to `value`.
    pub fn fill(&mut self, value: u8) {
        self.arena.fill(self.base, self.len, value);
    }

    /// Overwrite the whole frame. `src` must be page-sized.
    pub fn copy_from_slice(&mut self, src: &[u8]) {
        assert_eq!(src.len(), self.len, "frame copy must be page-sized");
        self.arena.write_bytes(self.base, src);
    }

    /// Write `bytes` at `offset` within the frame.
    pub fn write(&mut self, offset: usize, bytes: &[u8]) {
        assert!(
            offset + bytes.len() <= self.len,
            "frame write exceeds page bounds"
        );
        self.arena.write_bytes(self.base + offset, bytes);
    }
}

/// FIFO write buffer of page frames.
///
/// Frames are stored in a fixed slab so that a buffered page's contents
/// can be updated in place (that is the buffer's purpose) while FIFO order
/// is tracked separately. Steady-state copy-on-write/flush cycles never
/// allocate: slots and frames are recycled by index.
///
/// # Example
///
/// ```
/// use envy_sram::WriteBuffer;
///
/// let mut buf = WriteBuffer::new(2, 16, 64, false);
/// buf.insert(7, Some(3), None).unwrap();
/// buf.insert(9, None, None).unwrap();
/// assert!(buf.is_full());
/// let oldest = buf.pop_tail().unwrap();
/// assert_eq!(oldest.logical, 7); // FIFO: first in, first out
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    page_bytes: usize,
    len: usize,
    slots: Vec<Option<BufferedPage>>,
    free: Vec<usize>,
    fifo: std::collections::VecDeque<usize>,
    /// `index[logical] = slot + 1`, [`IDX_EMPTY`] when not buffered.
    /// Atomic words shared with concurrent readers.
    index: SharedSlots,
    /// Page frame slab: slot `s` occupies bytes
    /// `s * page_bytes .. (s + 1) * page_bytes`. `None` when payload
    /// storage is disabled (residency-only mode).
    frames: Option<SharedArena>,
}

impl WriteBuffer {
    /// Create a buffer of `capacity` page frames of `page_bytes` each,
    /// indexing the logical page space `0..logical_pages`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `page_bytes` is zero, or if `capacity`
    /// overflows the slot index width.
    pub fn new(
        capacity: usize,
        page_bytes: usize,
        logical_pages: u64,
        store_data: bool,
    ) -> WriteBuffer {
        assert!(capacity > 0, "buffer capacity must be non-zero");
        assert!(page_bytes > 0, "page size must be non-zero");
        assert!(
            capacity < u32::MAX as usize,
            "buffer capacity overflows the slot index"
        );
        WriteBuffer {
            capacity,
            page_bytes,
            len: 0,
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            fifo: std::collections::VecDeque::with_capacity(capacity),
            index: SharedSlots::new(logical_pages as usize, IDX_EMPTY),
            frames: store_data.then(|| SharedArena::new(capacity * page_bytes, 0xFF)),
        }
    }

    /// Number of buffered pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every frame is occupied.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Whether page payloads are stored (vs. residency-only tracking).
    pub fn stores_data(&self) -> bool {
        self.frames.is_some()
    }

    /// Reader handle to the direct-map index (`slot + 1` encoding), for
    /// lock-free concurrent probes validated by an external epoch.
    pub fn reader_index(&self) -> SlotsView {
        self.index.view()
    }

    /// Reader handle to the frame slab, if payload storage is enabled.
    pub fn reader_frames(&self) -> Option<ArenaView> {
        self.frames.as_ref().map(SharedArena::view)
    }

    /// The occupied slot holding a logical page, if buffered. Pages
    /// outside the indexed logical space are never buffered.
    #[inline]
    fn slot_of(&self, logical: u64) -> Option<usize> {
        if (logical as usize) < self.index.len() {
            match self.index.get(logical as usize) {
                IDX_EMPTY => None,
                entry => Some(entry as usize - 1),
            }
        } else {
            None
        }
    }

    /// Whether a logical page is buffered.
    #[inline]
    pub fn contains(&self, logical: u64) -> bool {
        self.slot_of(logical).is_some()
    }

    /// Insert a page at the FIFO head and expose its frame.
    ///
    /// This is the combined insert-and-fill entry point for the
    /// copy-on-write path: one index probe claims the frame, and the
    /// caller writes the Flash original plus the host bytes straight into
    /// the returned frame. The frame's contents are **unspecified** — the
    /// caller must overwrite the whole page or [`FrameMut::fill`] it.
    /// Returns `Ok(None)` when payload storage is disabled.
    ///
    /// # Errors
    ///
    /// [`InsertError::BufferFull`] or [`InsertError::AlreadyBuffered`].
    ///
    /// # Panics
    ///
    /// Panics if `logical` is outside the indexed logical page space.
    pub fn insert_frame(
        &mut self,
        logical: u64,
        origin: Option<u32>,
    ) -> Result<Option<FrameMut<'_>>, InsertError> {
        assert!(
            (logical as usize) < self.index.len(),
            "logical page within the indexed space"
        );
        if self.index.get(logical as usize) != IDX_EMPTY {
            return Err(InsertError::AlreadyBuffered);
        }
        if self.len == self.capacity {
            return Err(InsertError::BufferFull);
        }
        let slot = self.free.pop().expect("free list tracks occupancy");
        self.slots[slot] = Some(BufferedPage { logical, origin });
        self.fifo.push_back(slot);
        self.len += 1;
        self.index.set(logical as usize, slot as u32 + 1);
        Ok(self.frames.as_ref().map(|arena| FrameMut {
            arena,
            base: slot * self.page_bytes,
            len: self.page_bytes,
        }))
    }

    /// Insert a page at the FIFO head.
    ///
    /// `initial` seeds the frame contents (the Flash copy made by
    /// copy-on-write); `None` seeds erased (0xFF) bytes. Ignored when
    /// payload storage is disabled.
    ///
    /// # Errors
    ///
    /// [`InsertError::BufferFull`] if the buffer is full — the caller
    /// must flush first — or [`InsertError::AlreadyBuffered`] (re-writes
    /// go through [`WriteBuffer::write`], not a second insert).
    pub fn insert(
        &mut self,
        logical: u64,
        origin: Option<u32>,
        initial: Option<&[u8]>,
    ) -> Result<(), InsertError> {
        if let Some(mut frame) = self.insert_frame(logical, origin)? {
            match initial {
                Some(initial) => frame.copy_from_slice(initial),
                None => frame.fill(0xFF),
            }
        }
        Ok(())
    }

    /// Write bytes into a buffered page.
    ///
    /// Returns `false` if the page is not buffered. With payload storage
    /// disabled this only confirms residency.
    ///
    /// # Panics
    ///
    /// Panics if `offset + bytes.len()` exceeds the page size.
    pub fn write(&mut self, logical: u64, offset: usize, bytes: &[u8]) -> bool {
        assert!(
            offset + bytes.len() <= self.page_bytes,
            "write exceeds page bounds"
        );
        let Some(slot) = self.slot_of(logical) else {
            return false;
        };
        if let Some(arena) = &self.frames {
            arena.write_bytes(slot * self.page_bytes + offset, bytes);
        }
        true
    }

    /// Read bytes from a buffered page.
    ///
    /// Returns `false` if the page is not buffered.
    ///
    /// # Panics
    ///
    /// Panics if `offset + buf.len()` exceeds the page size.
    pub fn read(&self, logical: u64, offset: usize, buf: &mut [u8]) -> bool {
        self.read_into(logical, offset, buf).is_some()
    }

    /// Read bytes from a buffered page, reporting in one probe both
    /// residency and whether payload bytes were copied.
    ///
    /// Returns `None` if the page is not buffered, `Some(true)` if `buf`
    /// was filled from the frame, and `Some(false)` if the buffer tracks
    /// residency only (payload storage disabled — the caller substitutes
    /// erased bytes).
    ///
    /// # Panics
    ///
    /// Panics if `offset + buf.len()` exceeds the page size.
    pub fn read_into(&self, logical: u64, offset: usize, buf: &mut [u8]) -> Option<bool> {
        assert!(
            offset + buf.len() <= self.page_bytes,
            "read exceeds page bounds"
        );
        let slot = self.slot_of(logical)?;
        match &self.frames {
            Some(arena) => {
                arena.read_bytes(slot * self.page_bytes + offset, buf);
                Some(true)
            }
            None => Some(false),
        }
    }

    /// Borrow a buffered page's metadata.
    pub fn get(&self, logical: u64) -> Option<&BufferedPage> {
        self.slot_of(logical)
            .and_then(|slot| self.slots[slot].as_ref())
    }

    /// The oldest page (next flush candidate) without removing it.
    pub fn peek_tail(&self) -> Option<&BufferedPage> {
        self.fifo
            .front()
            .and_then(|&slot| self.slots[slot].as_ref())
    }

    /// Remove and return the oldest page.
    pub fn pop_tail(&mut self) -> Option<BufferedPage> {
        let slot = self.fifo.pop_front()?;
        let page = self.slots[slot].take().expect("fifo tracks live slots");
        self.index.set(page.logical as usize, IDX_EMPTY);
        self.free.push(slot);
        self.len -= 1;
        Some(page)
    }

    /// Remove a specific page (used when a cleaned/rolled-back page must
    /// leave the buffer out of FIFO order).
    pub fn remove(&mut self, logical: u64) -> Option<BufferedPage> {
        let slot = self.slot_of(logical)?;
        let page = self.slots[slot].take().expect("index tracks live slots");
        self.index.set(logical as usize, IDX_EMPTY);
        self.fifo.retain(|&s| s != slot);
        self.free.push(slot);
        self.len -= 1;
        Some(page)
    }

    /// Iterate over buffered pages in FIFO order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &BufferedPage> {
        self.fifo
            .iter()
            .filter_map(move |&slot| self.slots[slot].as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_insertion_order() {
        let mut b = WriteBuffer::new(4, 8, 64, false);
        for lp in [10, 20, 30] {
            b.insert(lp, None, None).unwrap();
        }
        assert_eq!(b.pop_tail().unwrap().logical, 10);
        assert_eq!(b.pop_tail().unwrap().logical, 20);
        assert_eq!(b.pop_tail().unwrap().logical, 30);
        assert_eq!(b.pop_tail(), None);
    }

    #[test]
    fn rewrite_does_not_change_fifo_position() {
        let mut b = WriteBuffer::new(4, 8, 64, true);
        b.insert(1, None, None).unwrap();
        b.insert(2, None, None).unwrap();
        assert!(b.write(1, 0, &[42])); // rewrite of oldest page
        assert_eq!(b.peek_tail().unwrap().logical, 1);
    }

    #[test]
    fn insert_full_fails() {
        let mut b = WriteBuffer::new(2, 8, 64, false);
        b.insert(1, None, None).unwrap();
        b.insert(2, None, None).unwrap();
        assert!(b.is_full());
        assert_eq!(b.insert(3, None, None), Err(InsertError::BufferFull));
    }

    #[test]
    fn duplicate_insert_fails() {
        let mut b = WriteBuffer::new(4, 8, 64, false);
        b.insert(1, None, None).unwrap();
        assert_eq!(b.insert(1, None, None), Err(InsertError::AlreadyBuffered));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn duplicate_insert_reported_even_when_full() {
        // AlreadyBuffered takes precedence over BufferFull: a re-write of
        // a buffered page must never look like a capacity problem.
        let mut b = WriteBuffer::new(2, 8, 64, false);
        b.insert(1, None, None).unwrap();
        b.insert(2, None, None).unwrap();
        assert_eq!(b.insert(1, None, None), Err(InsertError::AlreadyBuffered));
    }

    #[test]
    fn data_roundtrip_with_seed() {
        let mut b = WriteBuffer::new(2, 4, 64, true);
        b.insert(5, Some(9), Some(&[1, 2, 3, 4])).unwrap();
        b.write(5, 1, &[9, 9]);
        let mut out = [0; 4];
        assert!(b.read(5, 0, &mut out));
        assert_eq!(out, [1, 9, 9, 4]);
        let page = b.get(5).unwrap();
        assert_eq!(page.origin, Some(9));
    }

    #[test]
    fn insert_frame_exposes_writable_frame() {
        let mut b = WriteBuffer::new(2, 4, 64, true);
        let mut frame = b.insert_frame(3, Some(1)).unwrap().unwrap();
        frame.copy_from_slice(&[7, 8, 9, 10]);
        let mut out = [0; 4];
        assert_eq!(b.read_into(3, 0, &mut out), Some(true));
        assert_eq!(out, [7, 8, 9, 10]);
        assert_eq!(b.get(3).unwrap().origin, Some(1));
    }

    #[test]
    fn insert_frame_stateless_returns_no_frame() {
        let mut b = WriteBuffer::new(2, 4, 64, false);
        assert!(b.insert_frame(3, None).unwrap().is_none());
        assert!(b.contains(3));
    }

    #[test]
    fn insert_seeds_erased_bytes_over_reused_frames() {
        // A reused frame slot holds stale contents; an insert with no
        // seed must still read back erased.
        let mut b = WriteBuffer::new(1, 4, 64, true);
        b.insert(1, None, Some(&[1, 2, 3, 4])).unwrap();
        b.pop_tail().unwrap();
        b.insert(2, None, None).unwrap();
        let mut out = [0; 4];
        assert_eq!(b.read_into(2, 0, &mut out), Some(true));
        assert_eq!(out, [0xFF; 4]);
    }

    #[test]
    fn read_write_missing_page() {
        let mut b = WriteBuffer::new(2, 4, 64, true);
        assert!(!b.write(7, 0, &[0]));
        let mut out = [0; 1];
        assert!(!b.read(7, 0, &mut out));
        assert_eq!(b.read_into(7, 0, &mut out), None);
    }

    #[test]
    fn read_into_reports_payload_presence() {
        let mut b = WriteBuffer::new(2, 4, 64, false);
        b.insert(1, None, None).unwrap();
        let mut out = [0xAB; 2];
        // Residency-only mode: buffered, but no payload was copied.
        assert_eq!(b.read_into(1, 0, &mut out), Some(false));
        assert_eq!(out, [0xAB; 2]);
    }

    #[test]
    fn remove_out_of_order_keeps_fifo_consistent() {
        let mut b = WriteBuffer::new(4, 8, 64, false);
        for lp in [1, 2, 3] {
            b.insert(lp, None, None).unwrap();
        }
        let removed = b.remove(2).unwrap();
        assert_eq!(removed.logical, 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop_tail().unwrap().logical, 1);
        assert_eq!(b.pop_tail().unwrap().logical, 3);
        // Slot can be reused.
        b.insert(9, None, None).unwrap();
        assert!(b.contains(9));
    }

    #[test]
    fn slots_recycle_under_churn() {
        let mut b = WriteBuffer::new(3, 8, 256, true);
        for round in 0..100u64 {
            b.insert(round, None, None).unwrap();
            if b.is_full() {
                b.pop_tail();
            }
        }
        assert!(b.len() <= 3);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut b = WriteBuffer::new(4, 8, 64, false);
        for lp in [5, 6, 7] {
            b.insert(lp, None, None).unwrap();
        }
        let order: Vec<u64> = b.iter().map(|p| p.logical).collect();
        assert_eq!(order, vec![5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "exceeds page bounds")]
    fn write_past_page_end_panics() {
        let mut b = WriteBuffer::new(1, 4, 64, true);
        b.insert(1, None, None).unwrap();
        b.write(1, 3, &[0, 0]);
    }

    #[test]
    fn stateless_mode_tracks_residency_only() {
        let mut b = WriteBuffer::new(2, 8, 64, false);
        assert!(!b.stores_data());
        b.insert(1, Some(0), None).unwrap();
        assert!(b.write(1, 0, &[1, 2]));
        let mut out = [0u8; 2];
        assert_eq!(b.read_into(1, 0, &mut out), Some(false));
    }

    #[test]
    fn out_of_space_pages_are_never_buffered() {
        let b = WriteBuffer::new(2, 8, 64, false);
        // Probes beyond the indexed logical space are cheap misses, not
        // panics (the engine bounds-checks before inserting).
        assert!(!b.contains(64));
        assert!(!b.contains(u64::MAX));
    }

    #[test]
    fn reader_handles_track_writer_state() {
        let mut b = WriteBuffer::new(2, 4, 64, true);
        let idx = b.reader_index();
        let frames = b.reader_frames().unwrap();
        b.insert(5, None, Some(&[1, 2, 3, 4])).unwrap();
        let slot = idx.get(5) as usize - 1;
        let mut out = [0u8; 4];
        frames.read_bytes(slot * 4, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        b.pop_tail().unwrap();
        assert_eq!(idx.get(5), 0);
    }
}
