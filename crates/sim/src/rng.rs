//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the workspace must be reproducible bit-for-bit, so
//! rather than depending on an external RNG whose stream may change between
//! library versions, the kernel carries its own implementation of
//! xoshiro256** (Blackman & Vigna), seeded through SplitMix64 exactly as the
//! reference implementation recommends.

/// A deterministic xoshiro256** PRNG.
///
/// # Example
///
/// ```
/// use envy_sim::rng::Rng;
///
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) produces a valid, full-period generator: the
    /// state is expanded through SplitMix64, which never yields the all-zero
    /// state.
    pub fn seed_from(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire's unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// `p <= 0.0` never fires and `p >= 1.0` always fires.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fork a statistically independent child generator.
    ///
    /// Useful for giving each workload component its own stream while
    /// keeping a single root seed.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::seed_from(12345);
        let mut b = Rng::seed_from(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should almost never collide");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from(0);
        // The all-zero state is a fixed point of xoshiro; SplitMix64
        // expansion must avoid it.
        let outputs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::seed_from(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from(99);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.below(10) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for &b in &buckets {
            let dev = (b as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_panics() {
        Rng::seed_from(1).below(0);
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let v = r.range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(11);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(5);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_probability() {
        let mut r = Rng::seed_from(21);
        let hits = (0..100_000).filter(|_| r.chance(0.9)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.9).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng::seed_from(8);
        let mut child = parent.fork();
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
