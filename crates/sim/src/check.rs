//! A small randomized-testing harness driven by the workspace PRNG.
//!
//! The workspace must build with zero network access, so instead of an
//! external property-testing framework the test suites use this module:
//! [`cases`] runs a closure against many independently seeded [`Gen`]
//! streams, and on failure reports the case number and seed so the run
//! can be reproduced with [`replay`].
//!
//! There is no shrinking — failures print the seed, and the generator
//! methods are simple enough that a failing case is usually small to
//! read directly. Determinism is absolute: the same `(base_seed, cases)`
//! pair always exercises the same inputs, on every platform.

use crate::rng::Rng;

/// A source of random test inputs: a thin layer over [`Rng`] with
/// generator conveniences used by the test suites.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Create a generator from a seed.
    pub fn seed_from(seed: u64) -> Gen {
        Gen {
            rng: Rng::seed_from(seed),
        }
    }

    /// The underlying PRNG, for raw draws.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.range(lo, hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range(lo as u64, hi as u64) as usize
    }

    /// A random `u64` (full range).
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A random byte vector with length in `[min_len, max_len)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len >= max_len`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.byte()).collect()
    }

    /// Pick one element of a slice by reference.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Build a vector of `[min_len, max_len)` items from a generator
    /// closure (the analogue of a collection strategy).
    ///
    /// # Panics
    ///
    /// Panics if `min_len >= max_len`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Derive the per-case seed for `case` under `base_seed`.
///
/// Each case gets a statistically independent stream, and the derivation
/// depends only on `(base_seed, case)` — never on execution order — so
/// any single case can be replayed in isolation.
pub fn case_seed(base_seed: u64, case: u64) -> u64 {
    // One SplitMix64-style mix of the pair; Rng::seed_from expands it.
    let mut z = base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `cases` independently seeded instances of a randomized test.
///
/// The closure receives a fresh [`Gen`] per case. A panic inside the
/// closure is caught, annotated with the case number and seed, and
/// re-raised so the failure is reproducible via [`replay`].
///
/// # Panics
///
/// Re-panics with context if any case fails.
pub fn cases(base_seed: u64, total: u64, mut test: impl FnMut(&mut Gen)) {
    for case in 0..total {
        let seed = case_seed(base_seed, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut gen = Gen::seed_from(seed);
            test(&mut gen);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "randomized case {case}/{total} failed (base_seed={base_seed:#x}); \
                 reproduce with envy_sim::check::replay({seed:#x}, ...)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-run a single failing case from the seed printed by [`cases`].
pub fn replay(seed: u64, mut test: impl FnMut(&mut Gen)) {
    let mut gen = Gen::seed_from(seed);
    test(&mut gen);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        let mut second: Vec<u64> = Vec::new();
        cases(7, 16, |g| first.push(g.u64()));
        cases(7, 16, |g| second.push(g.u64()));
        // Closure captures mutate through AssertUnwindSafe; compare after.
        assert_eq!(first, second);
        assert_eq!(first.len(), 16);
    }

    #[test]
    fn case_seeds_are_order_free_and_distinct() {
        let a = case_seed(42, 3);
        let b = case_seed(42, 4);
        assert_ne!(a, b);
        assert_eq!(a, case_seed(42, 3));
    }

    #[test]
    fn failing_case_reports_seed_and_repanics() {
        let result = std::panic::catch_unwind(|| {
            cases(1, 4, |g| {
                let v = g.below(100);
                assert!(v < 1000, "always passes");
                if g.chance(2.0) {
                    panic!("forced failure");
                }
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn generators_respect_bounds() {
        cases(11, 8, |g| {
            assert!(g.below(10) < 10);
            let v = g.range(5, 9);
            assert!((5..9).contains(&v));
            let bytes = g.bytes(1, 64);
            assert!((1..64).contains(&bytes.len()));
            let items = [1, 2, 3];
            assert!(items.contains(g.pick(&items)));
            let vec = g.vec_of(2, 5, |g| g.byte());
            assert!((2..5).contains(&vec.len()));
        });
    }
}
