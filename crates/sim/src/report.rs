//! Plain-text table formatting shared by the figure-regeneration binaries.
//!
//! Every benchmark binary in `envy-bench` prints its figure or table as an
//! aligned text table plus a machine-readable CSV block, so results can be
//! both eyeballed and re-plotted.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use envy_sim::report::Table;
///
/// let mut t = Table::new(&["locality", "greedy", "hybrid"]);
/// t.row(&["50/50".into(), "1.30".into(), "1.45".into()]);
/// let text = t.render();
/// assert!(text.contains("locality"));
/// assert!(text.contains("50/50"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with a sensible number of decimals for table output.
pub fn fmt_f64(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["12345".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["only one"]);
        t.row(&["a".into(), "b".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["x,y", "z"]);
        t.row(&["a\"b".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"x,y\",z\n"));
        assert!(csv.contains("\"a\"\"b\",plain"));
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new(&["n", "v"]);
        t.row_display(&[1.5, 2.25]);
        assert!(t.render().contains("1.5"));
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1.2345), "1.234"); // 3 decimals below 10
    }
}
