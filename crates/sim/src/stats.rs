//! Statistics gathering: counters, running moments, histograms, and
//! time-weighted averages.
//!
//! These are the building blocks for the paper's reported metrics: average
//! read/write latency (Figure 15), achieved throughput (Figures 13–14),
//! cleaning cost (Figures 6, 8–10), and the controller time breakdown
//! (§5.3).

use crate::time::Ns;
use std::fmt;

/// A plain event counter.
///
/// # Example
///
/// ```
/// use envy_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Reset to zero, returning the prior value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// Create an empty accumulator.
    pub fn new() -> MeanVar {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if no observations).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Latency histogram with logarithmic buckets.
///
/// Bucket `i` covers durations whose nanosecond count has `i` significant
/// bits, i.e. `[2^(i-1), 2^i)`; this spans 1 ns to ~584 years in 64
/// buckets, plenty for read latencies (180 ns) through segment erases
/// (50 ms) and beyond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: Ns) {
        let n = d.as_nanos();
        let bucket = (64 - n.leading_zeros()) as usize; // 0 for n == 0
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.sum_ns += n;
        self.min_ns = self.min_ns.min(n);
        self.max_ns = self.max_ns.max(n);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration ([`Ns::ZERO`] if empty).
    pub fn mean(&self) -> Ns {
        match self.sum_ns.checked_div(self.count) {
            Some(mean) => Ns::from_nanos(mean),
            None => Ns::ZERO,
        }
    }

    /// Smallest recorded duration (`None` if empty).
    pub fn min(&self) -> Option<Ns> {
        (self.count > 0).then(|| Ns::from_nanos(self.min_ns))
    }

    /// Largest recorded duration (`None` if empty).
    pub fn max(&self) -> Option<Ns> {
        (self.count > 0).then(|| Ns::from_nanos(self.max_ns))
    }

    /// Approximate quantile (`q` in `[0, 1]`), resolved to bucket upper
    /// bounds; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<Ns> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let upper = if i == 0 { 0 } else { 1u64 << i };
                return Some(Ns::from_nanos(upper.min(self.max_ns).max(self.min_ns)));
            }
        }
        Some(Ns::from_nanos(self.max_ns))
    }

    /// Total of all recorded durations.
    pub fn sum(&self) -> Ns {
        Ns::from_nanos(self.sum_ns)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }
}

/// Time-weighted average of a piecewise-constant quantity (e.g. write
/// buffer occupancy, device utilization).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeWeighted {
    last_time: Ns,
    last_value: f64,
    integral: f64,
    started: bool,
}

impl TimeWeighted {
    /// Create an empty accumulator.
    pub fn new() -> TimeWeighted {
        TimeWeighted::default()
    }

    /// Record that the quantity changed to `value` at time `now`.
    ///
    /// The previous value is integrated over `[last_time, now)`. Calls must
    /// have non-decreasing `now`; an earlier `now` is ignored.
    pub fn set(&mut self, now: Ns, value: f64) {
        if self.started && now > self.last_time {
            self.integral += self.last_value * (now.as_nanos() - self.last_time.as_nanos()) as f64;
        }
        if !self.started || now >= self.last_time {
            self.last_time = now;
            self.last_value = value;
            self.started = true;
        }
    }

    /// Time-weighted mean over `[first set, now)`.
    pub fn mean_until(&self, now: Ns) -> f64 {
        if !self.started || now <= Ns::ZERO {
            return 0.0;
        }
        let mut integral = self.integral;
        if now > self.last_time {
            integral += self.last_value * (now.as_nanos() - self.last_time.as_nanos()) as f64;
        }
        let span = now.as_nanos() as f64;
        if span == 0.0 {
            0.0
        } else {
            integral / span
        }
    }
}

/// Exponentially-weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `(0, 1]`; larger alpha
    /// weights recent samples more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value (`None` before the first sample).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn meanvar_known_values() {
        let mut m = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn meanvar_empty() {
        let m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn histogram_mean_and_extremes() {
        let mut h = Histogram::new();
        h.record(Ns::from_nanos(100));
        h.record(Ns::from_nanos(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Ns::from_nanos(200));
        assert_eq!(h.min(), Some(Ns::from_nanos(100)));
        assert_eq!(h.max(), Some(Ns::from_nanos(300)));
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Ns::from_nanos(i * 10));
        }
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q99 <= h.max().unwrap());
    }

    #[test]
    fn histogram_empty_quantile() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Ns::from_nanos(10));
        b.record(Ns::from_nanos(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(Ns::from_nanos(10)));
        assert_eq!(a.max(), Some(Ns::from_nanos(1000)));
    }

    #[test]
    fn histogram_zero_duration() {
        let mut h = Histogram::new();
        h.record(Ns::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Ns::ZERO);
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new();
        tw.set(Ns::from_nanos(0), 0.0);
        tw.set(Ns::from_nanos(50), 1.0);
        // 0 for 50ns, 1 for 50ns -> mean 0.5 at t=100.
        let mean = tw.mean_until(Ns::from_nanos(100));
        assert!((mean - 0.5).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn time_weighted_constant() {
        let mut tw = TimeWeighted::new();
        tw.set(Ns::ZERO, 3.0);
        assert!((tw.mean_until(Ns::from_secs(1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.record(0.0);
        for _ in 0..64 {
            e.record(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
