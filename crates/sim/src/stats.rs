//! Statistics gathering: counters, running moments, histograms, and
//! time-weighted averages.
//!
//! These are the building blocks for the paper's reported metrics: average
//! read/write latency (Figure 15), achieved throughput (Figures 13–14),
//! cleaning cost (Figures 6, 8–10), and the controller time breakdown
//! (§5.3).

use crate::time::Ns;
use std::fmt;

/// A plain event counter.
///
/// # Example
///
/// ```
/// use envy_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Reset to zero, returning the prior value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// Create an empty accumulator.
    pub fn new() -> MeanVar {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if no observations).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Sub-bucket resolution of [`Histogram`]: each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: values below `SUBS` get one exact bucket each;
/// each of the remaining `64 - SUB_BITS` octaves gets `SUBS` sub-buckets.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Latency histogram with log-linear buckets.
///
/// Each power-of-two octave `[2^e, 2^(e+1))` is split into 16 linear
/// sub-buckets, so any quantile is resolved to a relative error of at
/// most 1/16 (≈6 %); values below 16 ns are recorded exactly. The range
/// spans 1 ns to `u64::MAX` ns (~584 years), plenty for read latencies
/// (180 ns) through segment erases (50 ms) and beyond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index a nanosecond value falls into.
fn bucket_of(n: u64) -> usize {
    if n < SUBS as u64 {
        return n as usize;
    }
    let e = 63 - n.leading_zeros(); // e >= SUB_BITS
    let shift = e - SUB_BITS;
    let sub = (n >> shift) as usize - SUBS; // in [0, SUBS)
    (e - SUB_BITS + 1) as usize * SUBS + sub
}

/// The largest nanosecond value contained in a bucket.
fn bucket_upper(b: usize) -> u64 {
    if b < SUBS {
        return b as u64;
    }
    let group = (b / SUBS) as u32; // >= 1
    let sub = (b % SUBS) as u64;
    let shift = group - 1;
    ((SUBS as u64 + sub) << shift) + ((1u64 << shift) - 1)
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: Ns) {
        let n = d.as_nanos();
        self.buckets[bucket_of(n)] += 1;
        self.count += 1;
        self.sum_ns += n;
        self.min_ns = self.min_ns.min(n);
        self.max_ns = self.max_ns.max(n);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration ([`Ns::ZERO`] if empty).
    pub fn mean(&self) -> Ns {
        match self.sum_ns.checked_div(self.count) {
            Some(mean) => Ns::from_nanos(mean),
            None => Ns::ZERO,
        }
    }

    /// Smallest recorded duration (`None` if empty).
    pub fn min(&self) -> Option<Ns> {
        (self.count > 0).then(|| Ns::from_nanos(self.min_ns))
    }

    /// Largest recorded duration (`None` if empty).
    pub fn max(&self) -> Option<Ns> {
        (self.count > 0).then(|| Ns::from_nanos(self.max_ns))
    }

    /// Approximate quantile (`q` in `[0, 1]`), resolved to the upper
    /// bound of the log-linear bucket containing the target rank and
    /// clamped to the observed `[min, max]`; `None` if empty. The error
    /// is at most one sub-bucket (≤1/16 relative).
    pub fn quantile(&self, q: f64) -> Option<Ns> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let upper = bucket_upper(i);
                return Some(Ns::from_nanos(upper.min(self.max_ns).max(self.min_ns)));
            }
        }
        Some(Ns::from_nanos(self.max_ns))
    }

    /// The standard percentile summary `(p50, p95, p99, p999)`; `None`
    /// if empty.
    pub fn percentiles(&self) -> Option<[Ns; 4]> {
        Some([
            self.quantile(0.5)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
            self.quantile(0.999)?,
        ])
    }

    /// Total of all recorded durations.
    pub fn sum(&self) -> Ns {
        Ns::from_nanos(self.sum_ns)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }
}

/// Time-weighted average of a piecewise-constant quantity (e.g. write
/// buffer occupancy, device utilization).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeWeighted {
    last_time: Ns,
    last_value: f64,
    integral: f64,
    started: bool,
}

impl TimeWeighted {
    /// Create an empty accumulator.
    pub fn new() -> TimeWeighted {
        TimeWeighted::default()
    }

    /// Record that the quantity changed to `value` at time `now`.
    ///
    /// The previous value is integrated over `[last_time, now)`. Calls must
    /// have non-decreasing `now`; an earlier `now` is ignored.
    pub fn set(&mut self, now: Ns, value: f64) {
        if self.started && now > self.last_time {
            self.integral += self.last_value * (now.as_nanos() - self.last_time.as_nanos()) as f64;
        }
        if !self.started || now >= self.last_time {
            self.last_time = now;
            self.last_value = value;
            self.started = true;
        }
    }

    /// Time-weighted mean over `[first set, now)`.
    pub fn mean_until(&self, now: Ns) -> f64 {
        if !self.started || now <= Ns::ZERO {
            return 0.0;
        }
        let mut integral = self.integral;
        if now > self.last_time {
            integral += self.last_value * (now.as_nanos() - self.last_time.as_nanos()) as f64;
        }
        let span = now.as_nanos() as f64;
        if span == 0.0 {
            0.0
        } else {
            integral / span
        }
    }
}

/// Exponentially-weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `(0, 1]`; larger alpha
    /// weights recent samples more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value (`None` before the first sample).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// A bounded time series of periodic samples: named columns, one row of
/// values per elapsed window of simulated time.
///
/// The series is dumb storage plus window bookkeeping: callers check
/// [`TimeSeries::due`] as simulated time advances and push one row per
/// window via [`TimeSeries::record`]. When the row bound is reached the
/// oldest rows are dropped, so a long run keeps the most recent history
/// at a fixed memory ceiling.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window: Ns,
    columns: Vec<&'static str>,
    rows: Vec<(Ns, Vec<f64>)>,
    next_end: Ns,
    max_rows: usize,
}

impl TimeSeries {
    /// Create a series sampling every `window`, keeping at most
    /// `max_rows` recent rows.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `max_rows` is zero.
    pub fn new(window: Ns, columns: &[&'static str], max_rows: usize) -> TimeSeries {
        assert!(window > Ns::ZERO, "window must be positive");
        assert!(max_rows > 0, "max_rows must be positive");
        TimeSeries {
            window,
            columns: columns.to_vec(),
            rows: Vec::new(),
            next_end: window,
            max_rows,
        }
    }

    /// The sampling window.
    pub fn window(&self) -> Ns {
        self.window
    }

    /// The column names.
    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// Whether the current window has elapsed at `now`.
    pub fn due(&self, now: Ns) -> bool {
        now >= self.next_end
    }

    /// End of the window currently being accumulated.
    pub fn next_end(&self) -> Ns {
        self.next_end
    }

    /// Record one row for the window ending at [`TimeSeries::next_end`]
    /// and advance past `now` (skipping empty windows in one step after
    /// an idle stretch).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn record(&mut self, now: Ns, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        if self.rows.len() == self.max_rows {
            self.rows.remove(0);
        }
        self.rows.push((self.next_end, values));
        while self.next_end <= now {
            self.next_end += self.window;
        }
    }

    /// The recorded rows, oldest first: `(window end, values)`.
    pub fn rows(&self) -> &[(Ns, Vec<f64>)] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn meanvar_known_values() {
        let mut m = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn meanvar_empty() {
        let m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn histogram_mean_and_extremes() {
        let mut h = Histogram::new();
        h.record(Ns::from_nanos(100));
        h.record(Ns::from_nanos(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Ns::from_nanos(200));
        assert_eq!(h.min(), Some(Ns::from_nanos(100)));
        assert_eq!(h.max(), Some(Ns::from_nanos(300)));
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Ns::from_nanos(i * 10));
        }
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q99 <= h.max().unwrap());
    }

    #[test]
    fn histogram_empty_quantile() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_consistent() {
        // Every bucket's upper bound maps back into that bucket, and the
        // mapping is monotone over a wide sample of values.
        for b in 0..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_upper(b)), b, "bucket {b}");
            assert!(bucket_upper(b) < bucket_upper(b + 1));
        }
        let mut last = 0;
        for e in 0..64u32 {
            for n in [1u64 << e, (1u64 << e) + (1u64 << e) / 3] {
                let b = bucket_of(n);
                assert!(b >= last, "bucket_of not monotone at {n}");
                last = b;
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    /// Regression test for the coarse log-bucket quantile, which rounded
    /// every quantile up to a power of two (overstating p50 by up to 2×).
    /// The log-linear histogram must track exact sample percentiles to
    /// within one sub-bucket (1/16 relative error).
    #[test]
    fn quantile_matches_exact_percentiles_within_one_sub_bucket() {
        let mut rng = crate::rng::Rng::seed_from(0xDECADE);
        // A latency-shaped mixture: a tight mode near 180 ns, a slower
        // mode near 4 µs, and a rare 50 ms tail.
        let mut samples: Vec<u64> = Vec::new();
        let mut h = Histogram::new();
        for _ in 0..10_000 {
            let r = rng.below(1000);
            let v = if r < 850 {
                150 + rng.below(80)
            } else if r < 995 {
                3_500 + rng.below(1_000)
            } else {
                50_000_000 + rng.below(1_000_000)
            };
            samples.push(v);
            h.record(Ns::from_nanos(v));
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((samples.len() as f64 * q).ceil() as usize).max(1) - 1;
            let exact = samples[rank];
            let approx = h.quantile(q).unwrap().as_nanos();
            let eb = bucket_of(exact);
            let ab = bucket_of(approx);
            assert!(
                ab.abs_diff(eb) <= 1,
                "q={q}: exact {exact} (bucket {eb}) vs approx {approx} (bucket {ab})"
            );
        }
    }

    #[test]
    fn percentiles_summary_ordered() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Ns::from_nanos(i));
        }
        let [p50, p95, p99, p999] = h.percentiles().unwrap();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        // Within one sub-bucket of the exact values.
        assert!(p50.as_nanos().abs_diff(500) <= 500 / 16 + 1, "p50 {p50}");
        assert!(p99.as_nanos().abs_diff(990) <= 990 / 16 + 1, "p99 {p99}");
        assert_eq!(Histogram::new().percentiles(), None);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Ns::from_nanos(10));
        b.record(Ns::from_nanos(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(Ns::from_nanos(10)));
        assert_eq!(a.max(), Some(Ns::from_nanos(1000)));
    }

    #[test]
    fn histogram_zero_duration() {
        let mut h = Histogram::new();
        h.record(Ns::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Ns::ZERO);
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new();
        tw.set(Ns::from_nanos(0), 0.0);
        tw.set(Ns::from_nanos(50), 1.0);
        // 0 for 50ns, 1 for 50ns -> mean 0.5 at t=100.
        let mean = tw.mean_until(Ns::from_nanos(100));
        assert!((mean - 0.5).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn time_weighted_constant() {
        let mut tw = TimeWeighted::new();
        tw.set(Ns::ZERO, 3.0);
        assert!((tw.mean_until(Ns::from_secs(1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.record(0.0);
        for _ in 0..64 {
            e.record(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn time_series_windows_and_bound() {
        let mut ts = TimeSeries::new(Ns::from_micros(10), &["a", "b"], 3);
        assert!(!ts.due(Ns::from_micros(9)));
        assert!(ts.due(Ns::from_micros(10)));
        ts.record(Ns::from_micros(10), vec![1.0, 2.0]);
        assert_eq!(ts.next_end(), Ns::from_micros(20));
        // An idle stretch skips whole windows in one step.
        ts.record(Ns::from_micros(55), vec![3.0, 4.0]);
        assert_eq!(ts.next_end(), Ns::from_micros(60));
        ts.record(Ns::from_micros(60), vec![5.0, 6.0]);
        ts.record(Ns::from_micros(70), vec![7.0, 8.0]);
        // Bounded at 3 rows: the oldest was dropped.
        assert_eq!(ts.rows().len(), 3);
        assert_eq!(ts.rows()[0].0, Ns::from_micros(20));
        assert_eq!(ts.rows()[2].1, vec![7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn time_series_rejects_bad_row() {
        let mut ts = TimeSeries::new(Ns::from_micros(1), &["a"], 4);
        ts.record(Ns::from_micros(1), vec![1.0, 2.0]);
    }
}
