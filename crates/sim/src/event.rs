//! A stable-ordered discrete-event queue.
//!
//! Events scheduled for the same instant pop in insertion order, which keeps
//! simulations deterministic regardless of heap internals.

use crate::time::Ns;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then by insertion sequence.
#[derive(Debug)]
struct Entry<T> {
    at: Ns,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list keyed by simulated time.
///
/// # Example
///
/// ```
/// use envy_sim::{event::EventQueue, time::Ns};
///
/// let mut q = EventQueue::new();
/// q.schedule(Ns::from_nanos(20), "late");
/// q.schedule(Ns::from_nanos(10), "early");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t, what), (Ns::from_nanos(10), "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Ns, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Ns, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Ns> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Ns::from_nanos(30), 'c');
        q.schedule(Ns::from_nanos(10), 'a');
        q.schedule(Ns::from_nanos(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Ns::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Ns::from_nanos(1), ());
        assert_eq!(q.peek_time(), Some(Ns::from_nanos(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Ns::from_nanos(10), 1);
        q.schedule(Ns::from_nanos(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(Ns::from_nanos(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop(), None);
    }
}
