//! Random distributions used by the paper's workloads.
//!
//! The evaluation section uses three distributions:
//!
//! * **Uniform** account selection for TPC-A (§5.2).
//! * **Exponential** transaction inter-arrival times (§5.2).
//! * **Bimodal** "x/y" locality-of-reference distributions for the cleaning
//!   studies (Figures 8–10): "10/90 means that 90 % of all accesses go to
//!   10 % of the data, while 10 % goes to the remaining 90 % of data".
//!
//! A [`Zipf`] distribution is also provided for extension experiments.

use crate::rng::Rng;
use crate::time::Ns;

/// Uniform distribution over an integer range `[lo, hi)`.
///
/// # Example
///
/// ```
/// use envy_sim::{rng::Rng, dist::UniformRange};
/// let mut rng = Rng::seed_from(1);
/// let d = UniformRange::new(10, 20);
/// let v = d.sample(&mut rng);
/// assert!((10..20).contains(&v));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformRange {
    lo: u64,
    hi: u64,
}

impl UniformRange {
    /// Create a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: u64, hi: u64) -> UniformRange {
        assert!(lo < hi, "UniformRange requires lo < hi");
        UniformRange { lo, hi }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        rng.range(self.lo, self.hi)
    }
}

/// Exponential distribution over simulated durations.
///
/// Used for transaction inter-arrival times: "transaction arrival times are
/// exponentially distributed with a mean corresponding to the transaction
/// rate being simulated" (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean_ns: f64,
}

impl Exponential {
    /// Create an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if the mean is zero.
    pub fn with_mean(mean: Ns) -> Exponential {
        assert!(mean > Ns::ZERO, "Exponential requires a positive mean");
        Exponential {
            mean_ns: mean.as_nanos() as f64,
        }
    }

    /// Create from an event rate in events per second.
    ///
    /// # Panics
    ///
    /// Panics if `per_sec` is not a positive, finite number.
    pub fn with_rate_per_sec(per_sec: f64) -> Exponential {
        assert!(
            per_sec.is_finite() && per_sec > 0.0,
            "rate must be positive and finite"
        );
        Exponential {
            mean_ns: 1e9 / per_sec,
        }
    }

    /// Draw one inter-arrival gap (always at least 1 ns so simulated time
    /// strictly advances).
    pub fn sample(&self, rng: &mut Rng) -> Ns {
        // Inverse CDF; 1-u avoids ln(0).
        let u = 1.0 - rng.f64();
        let v = -self.mean_ns * u.ln();
        Ns::from_nanos((v as u64).max(1))
    }
}

/// The paper's bimodal "hot/cold" access distribution over `n` items.
///
/// `Bimodal::from_spec(n, 10, 90)` reproduces the paper's "10/90" label:
/// 90 % of accesses target the first 10 % of items (the *hot* region) and
/// the remaining 10 % of accesses target the other 90 % (the *cold*
/// region). `50/50` degenerates to a uniform distribution.
///
/// # Example
///
/// ```
/// use envy_sim::{rng::Rng, dist::Bimodal};
/// let mut rng = Rng::seed_from(1);
/// let d = Bimodal::from_spec(1000, 10, 90);
/// let hits = (0..10_000).filter(|_| d.sample(&mut rng) < 100).count();
/// assert!(hits > 8_500); // ~90% of accesses in the first 10% of items
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bimodal {
    n: u64,
    hot_items: u64,
    hot_prob: f64,
}

impl Bimodal {
    /// Create from the paper's `data%/access%` notation.
    ///
    /// `data_pct` is the share of items that are hot; `access_pct` is the
    /// share of accesses that go to them.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or either percentage is outside `1..=99`…
    /// except that `data_pct + access_pct` must equal 100 in the paper's
    /// notation, which is *not* enforced: other mixes are legal and useful
    /// for ablations.
    pub fn from_spec(n: u64, data_pct: u32, access_pct: u32) -> Bimodal {
        assert!(n > 0, "Bimodal requires at least one item");
        assert!(
            (1..=99).contains(&data_pct) && (1..=99).contains(&access_pct),
            "percentages must be in 1..=99"
        );
        let hot_items = ((n as u128 * data_pct as u128) / 100).max(1) as u64;
        Bimodal {
            n,
            hot_items: hot_items.min(n),
            hot_prob: access_pct as f64 / 100.0,
        }
    }

    /// A uniform distribution expressed as the trivial bimodal (50/50).
    pub fn uniform(n: u64) -> Bimodal {
        Bimodal::from_spec(n, 50, 50)
    }

    /// The number of items in the hot region.
    pub fn hot_items(&self) -> u64 {
        self.hot_items
    }

    /// Total number of items.
    pub fn items(&self) -> u64 {
        self.n
    }

    /// Draw one item index in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if rng.chance(self.hot_prob) {
            rng.below(self.hot_items)
        } else if self.hot_items == self.n {
            rng.below(self.n)
        } else {
            rng.range(self.hot_items, self.n)
        }
    }
}

/// Zipf distribution over `[0, n)` with exponent `s` (extension workloads).
///
/// Sampled by inversion over the precomputed CDF; construction is `O(n)`
/// and sampling is `O(log n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "Zipf requires at least one item");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw one item index; index 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) | Err(i) => (i as u64).min(self.cdf.len() as u64 - 1),
        }
    }
}

/// YCSB's "latest" distribution: item `n-1` (the most recently inserted)
/// is the most popular, with popularity falling off zipfian with
/// recency. Sampling draws a zipfian *age* and subtracts it from the
/// newest item, so the hot set tracks the head as `n` grows — the
/// generator behind YCSB workload D's read side.
///
/// The CDF is precomputed for a fixed capacity; [`Latest::sample`]
/// takes the *current* item count so one distribution serves a growing
/// keyspace without re-deriving the harmonic sums on every insert.
#[derive(Debug, Clone, PartialEq)]
pub struct Latest {
    ages: Zipf,
}

impl Latest {
    /// Create a latest-skewed distribution with room for up to
    /// `capacity` items, exponent `s`.
    ///
    /// # Panics
    ///
    /// As [`Zipf::new`].
    pub fn new(capacity: u64, s: f64) -> Latest {
        Latest {
            ages: Zipf::new(capacity, s),
        }
    }

    /// Draw one item index in `[0, n)`, skewed toward `n - 1`. `n` is
    /// the current item count and must be at least 1 (it may be less
    /// than the construction capacity; larger ages are redrawn by
    /// clamping to the oldest item).
    pub fn sample(&self, rng: &mut Rng, n: u64) -> u64 {
        debug_assert!(n > 0, "Latest requires at least one item");
        let age = self.ages.sample(rng).min(n - 1);
        n - 1 - age
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_range_covers_interval() {
        let mut rng = Rng::seed_from(1);
        let d = UniformRange::new(5, 8);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((5..8).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_range_rejects_empty() {
        UniformRange::new(8, 8);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = Rng::seed_from(2);
        let mean = Ns::from_micros(100);
        let d = Exponential::with_mean(mean);
        let n = 200_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng).as_nanos()).sum();
        let observed = total as f64 / n as f64;
        let expected = mean.as_nanos() as f64;
        assert!(
            (observed - expected).abs() / expected < 0.02,
            "observed mean {observed}, expected {expected}"
        );
    }

    #[test]
    fn exponential_rate_construction() {
        let d = Exponential::with_rate_per_sec(10_000.0);
        // 10k/sec -> 100us mean
        assert!((d.mean_ns - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn exponential_strictly_positive() {
        let mut rng = Rng::seed_from(3);
        let d = Exponential::with_mean(Ns::from_nanos(2));
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= Ns::from_nanos(1));
        }
    }

    #[test]
    fn bimodal_10_90_concentrates_accesses() {
        let mut rng = Rng::seed_from(4);
        let d = Bimodal::from_spec(10_000, 10, 90);
        assert_eq!(d.hot_items(), 1_000);
        let n = 100_000;
        let hot_hits = (0..n).filter(|_| d.sample(&mut rng) < 1_000).count();
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "hot fraction {frac}");
    }

    #[test]
    fn bimodal_50_50_is_uniform() {
        let mut rng = Rng::seed_from(5);
        let d = Bimodal::uniform(1_000);
        let n = 100_000;
        let lower_half = (0..n).filter(|_| d.sample(&mut rng) < 500).count();
        let frac = lower_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "lower-half fraction {frac}");
    }

    #[test]
    fn bimodal_samples_in_range() {
        let mut rng = Rng::seed_from(6);
        let d = Bimodal::from_spec(37, 5, 95);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) < 37);
        }
    }

    #[test]
    fn bimodal_cold_region_reachable() {
        let mut rng = Rng::seed_from(7);
        let d = Bimodal::from_spec(100, 10, 90);
        assert!((0..10_000).any(|_| d.sample(&mut rng) >= 10));
    }

    #[test]
    fn zipf_head_is_hottest() {
        let mut rng = Rng::seed_from(8);
        let d = Zipf::new(100, 1.0);
        let n = 100_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_skew_ordering_is_monotone() {
        // Seeded and deterministic: the observed frequency ranking must
        // follow the index ranking exactly for a well-separated head.
        let mut rng = Rng::seed_from(0x51AF);
        let d = Zipf::new(1_000, 0.99);
        let n = 200_000;
        let mut counts = vec![0u64; 1_000];
        for _ in 0..n {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        // Head frequencies strictly decrease.
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        // ~35% of mass on the hottest 1% of items at s≈1 (vs 1% for
        // uniform) — the skew YCSB's zipfian constant produces.
        let head: u64 = counts[..10].iter().sum();
        let frac = head as f64 / n as f64;
        assert!(
            (0.30..0.45).contains(&frac),
            "head-10 fraction {frac} outside the zipfian band"
        );
    }

    #[test]
    fn latest_prefers_recent_items() {
        let mut rng = Rng::seed_from(0x1A7E);
        let d = Latest::new(1_000, 0.99);
        let n = 200_000;
        let mut counts = vec![0u64; 1_000];
        for _ in 0..n {
            counts[d.sample(&mut rng, 1_000) as usize] += 1;
        }
        // The newest item is the hottest and recency decays monotonically
        // across decade boundaries.
        assert!(counts[999] > counts[998]);
        assert!(counts[999] > counts[900]);
        assert!(counts[900] > counts[500]);
        let newest_decile: u64 = counts[900..].iter().sum();
        let oldest_decile: u64 = counts[..100].iter().sum();
        assert!(
            newest_decile > 10 * oldest_decile,
            "recency bias too weak: newest {newest_decile} vs oldest {oldest_decile}"
        );
    }

    #[test]
    fn latest_tracks_a_growing_keyspace() {
        let mut rng = Rng::seed_from(0x1A7F);
        let d = Latest::new(10_000, 0.99);
        // With only 1 item every draw is that item.
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng, 1), 0);
        }
        // As n grows the mode follows n-1.
        for n in [10u64, 100, 5_000] {
            let mut newest = 0u64;
            for _ in 0..10_000 {
                let v = d.sample(&mut rng, n);
                assert!(v < n);
                if v == n - 1 {
                    newest += 1;
                }
            }
            assert!(newest > 0, "newest item never drawn at n={n}");
        }
    }

    #[test]
    fn distributions_are_deterministic_for_a_seed() {
        // The statistical tests above stay meaningful across --jobs and
        // platforms only because the sample streams are pure functions
        // of the seed. Pin a prefix of each stream.
        let mut a = Rng::seed_from(0xD15E);
        let mut b = Rng::seed_from(0xD15E);
        let zipf = Zipf::new(512, 0.99);
        let latest = Latest::new(512, 0.99);
        let sa: Vec<u64> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    zipf.sample(&mut a)
                } else {
                    latest.sample(&mut a, 512)
                }
            })
            .collect();
        let sb: Vec<u64> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    zipf.sample(&mut b)
                } else {
                    latest.sample(&mut b, 512)
                }
            })
            .collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut rng = Rng::seed_from(9);
        let d = Zipf::new(10, 0.0);
        let n = 100_000;
        let zeros = (0..n).filter(|_| d.sample(&mut rng) == 0).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "item-0 fraction {frac}");
    }
}
