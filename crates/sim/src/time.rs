//! Simulated time.
//!
//! All timing in the workspace is expressed in integer nanoseconds via
//! [`Ns`]. The paper's quantities span eight orders of magnitude — 100 ns
//! chip reads up to 50 ms segment erases — which a `u64` covers for
//! simulations of several centuries of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant in simulated nanoseconds.
///
/// `Ns` is used both as a point on the simulated clock and as a span
/// between two points; the arithmetic is the same and the simulator does
/// not benefit from distinguishing the two at the type level.
///
/// # Example
///
/// ```
/// use envy_sim::time::Ns;
///
/// let program = Ns::from_micros(4);
/// let erase = Ns::from_millis(50);
/// assert!(erase > program);
/// assert_eq!(program * 3, Ns::from_micros(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// Zero nanoseconds.
    pub const ZERO: Ns = Ns(0);
    /// One microsecond.
    pub const MICRO: Ns = Ns(1_000);
    /// One millisecond.
    pub const MILLI: Ns = Ns(1_000_000);
    /// One second.
    pub const SEC: Ns = Ns(1_000_000_000);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(n: u64) -> Ns {
        Ns(n)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Ns {
        Ns(s * 1_000_000_000)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns [`Ns::ZERO`] instead of wrapping.
    pub fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Ns) -> Option<Ns> {
        self.0.checked_sub(rhs.0).map(Ns)
    }

    /// The larger of `self` and `rhs`.
    pub fn max(self, rhs: Ns) -> Ns {
        Ns(self.0.max(rhs.0))
    }

    /// The smaller of `self` and `rhs`.
    pub fn min(self, rhs: Ns) -> Ns {
        Ns(self.0.min(rhs.0))
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, Add::add)
    }
}

impl fmt::Display for Ns {
    /// Human-readable display with an automatically chosen unit.
    ///
    /// ```
    /// use envy_sim::time::Ns;
    /// assert_eq!(Ns::from_nanos(180).to_string(), "180ns");
    /// assert_eq!(Ns::from_micros(4).to_string(), "4.000us");
    /// assert_eq!(Ns::from_millis(50).to_string(), "50.000ms");
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n < 1_000 {
            write!(f, "{n}ns")
        } else if n < 1_000_000 {
            write!(f, "{:.3}us", n as f64 / 1e3)
        } else if n < 1_000_000_000 {
            write!(f, "{:.3}ms", n as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", n as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Ns::from_micros(1), Ns::MICRO);
        assert_eq!(Ns::from_millis(1), Ns::MILLI);
        assert_eq!(Ns::from_secs(1), Ns::SEC);
        assert_eq!(Ns::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let a = Ns::from_nanos(100);
        let b = Ns::from_nanos(60);
        assert_eq!(a + b, Ns::from_nanos(160));
        assert_eq!(a - b, Ns::from_nanos(40));
        assert_eq!(a * 2, Ns::from_nanos(200));
        assert_eq!(a / 4, Ns::from_nanos(25));
        let mut c = a;
        c += b;
        assert_eq!(c, Ns::from_nanos(160));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_and_checked_sub() {
        let a = Ns::from_nanos(5);
        let b = Ns::from_nanos(9);
        assert_eq!(a.saturating_sub(b), Ns::ZERO);
        assert_eq!(b.saturating_sub(a), Ns::from_nanos(4));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(Ns::from_nanos(4)));
    }

    #[test]
    fn min_max() {
        let a = Ns::from_nanos(5);
        let b = Ns::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Ns = (1..=4).map(Ns::from_nanos).sum();
        assert_eq!(total, Ns::from_nanos(10));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(Ns::from_micros(2).as_micros_f64(), 2.0);
        assert_eq!(Ns::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Ns::from_nanos(999).to_string(), "999ns");
        assert_eq!(Ns::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(Ns::from_millis(50).to_string(), "50.000ms");
        assert_eq!(Ns::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(Ns::from_millis(50) > Ns::from_micros(4));
        assert!(Ns::ZERO < Ns::from_nanos(1));
    }
}
