#![warn(missing_docs)]
//! Discrete-event simulation kernel for the eNVy reproduction.
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! * [`time::Ns`] — simulated time in nanoseconds, the unit used throughout
//!   the paper (reads ≈180 ns, programs 4 µs, erases 50 ms).
//! * [`rng::Rng`] — a small, fully deterministic PRNG (xoshiro256**), so
//!   every experiment is reproducible bit-for-bit run to run.
//! * [`dist`] — the access distributions used in the paper's evaluation:
//!   uniform, the bimodal "x/y" locality-of-reference distributions of
//!   Figures 8–10, and exponential inter-arrival times (§5.2).
//! * [`stats`] — counters, histograms, time-weighted means, and EWMA used
//!   for latency/throughput/cleaning-cost accounting.
//! * [`event`] — a stable-ordered event queue for event-driven workloads.
//! * [`report`] — plain-text table formatting shared by the figure binaries.
//!
//! # Example
//!
//! ```
//! use envy_sim::time::Ns;
//! use envy_sim::rng::Rng;
//! use envy_sim::dist::Exponential;
//!
//! let mut rng = Rng::seed_from(42);
//! let arrivals = Exponential::with_mean(Ns::from_micros(100));
//! let gap = arrivals.sample(&mut rng);
//! assert!(gap > Ns::ZERO);
//! ```

pub mod check;
pub mod dist;
pub mod event;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Bimodal, Exponential, Latest, UniformRange, Zipf};
pub use event::EventQueue;
pub use rng::Rng;
pub use stats::{Counter, Histogram, MeanVar, TimeSeries, TimeWeighted};
pub use time::Ns;
