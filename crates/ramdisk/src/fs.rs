//! A minimal FAT-style filesystem over a [`BlockDevice`].
//!
//! On-disk layout (all little-endian):
//!
//! * block 0 — superblock: magic, geometry, region offsets
//! * blocks `1 .. 1+fat_blocks` — the allocation table, one `u32` per
//!   data block (`FREE`, `END`, or the next block in the chain)
//! * directory blocks — 64-byte entries: name (47 bytes + NUL flag),
//!   size, first block
//! * data blocks

use crate::device::BlockDevice;
use envy_core::{EnvyError, Memory};
use std::error::Error;
use std::fmt;

const MAGIC: u64 = 0x654E_5679_4653_0001;
const FREE: u32 = 0;
const END: u32 = u32::MAX;
const DIR_ENTRY_BYTES: u64 = 64;
const NAME_BYTES: usize = 46;

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The device does not contain a formatted filesystem.
    BadMagic,
    /// The device is too small to format.
    DeviceTooSmall,
    /// No file with that name.
    NotFound,
    /// The directory is full.
    TooManyFiles,
    /// No free data blocks left.
    NoSpace,
    /// File names are limited to 46 bytes.
    NameTooLong,
    /// An error from the underlying memory.
    Memory(EnvyError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::BadMagic => write!(f, "device is not a SimpleFs volume"),
            FsError::DeviceTooSmall => write!(f, "device too small to format"),
            FsError::NotFound => write!(f, "file not found"),
            FsError::TooManyFiles => write!(f, "directory is full"),
            FsError::NoSpace => write!(f, "no free data blocks"),
            FsError::NameTooLong => write!(f, "file name exceeds 46 bytes"),
            FsError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for FsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FsError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnvyError> for FsError {
    fn from(e: EnvyError) -> FsError {
        FsError::Memory(e)
    }
}

/// A mounted SimpleFs volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimpleFs {
    dev: BlockDevice,
    fat_base: u64, // first FAT block
    dir_base: u64, // first directory block
    dir_entries: u64,
    data_base: u64, // first data block
    data_blocks: u64,
}

#[derive(Debug, Clone)]
struct DirEntry {
    used: bool,
    name: String,
    size: u64,
    first: u32,
}

impl SimpleFs {
    /// Format a device and mount the empty volume.
    ///
    /// # Errors
    ///
    /// [`FsError::DeviceTooSmall`] if the device cannot hold the
    /// metadata plus at least one data block; memory errors.
    pub fn format<M: Memory>(mem: &mut M, dev: BlockDevice) -> Result<SimpleFs, FsError> {
        let bb = dev.block_bytes() as u64;
        let dir_entries = 64u64;
        let dir_blocks = (dir_entries * DIR_ENTRY_BYTES).div_ceil(bb);
        // Solve for the FAT size: each data block needs 4 bytes of FAT.
        let mut fat_blocks = 1u64;
        loop {
            let overhead = 1 + fat_blocks + dir_blocks;
            if overhead >= dev.blocks() {
                return Err(FsError::DeviceTooSmall);
            }
            let data = dev.blocks() - overhead;
            if fat_blocks * bb >= data * 4 {
                break;
            }
            fat_blocks += 1;
        }
        let fs = SimpleFs {
            dev,
            fat_base: 1,
            dir_base: 1 + fat_blocks,
            dir_entries,
            data_base: 1 + fat_blocks + dir_blocks,
            data_blocks: dev.blocks() - 1 - fat_blocks - dir_blocks,
        };
        // Zero the metadata blocks (FAT all-FREE, directory all-unused).
        let zero = vec![0u8; bb as usize];
        for b in 0..fs.data_base {
            dev.write_block(mem, b, &zero)?;
        }
        // Superblock.
        let mut sb = vec![0u8; bb as usize];
        sb[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&fat_blocks.to_le_bytes());
        sb[16..24].copy_from_slice(&dir_blocks.to_le_bytes());
        sb[24..32].copy_from_slice(&dir_entries.to_le_bytes());
        sb[32..40].copy_from_slice(&fs.data_blocks.to_le_bytes());
        dev.write_block(mem, 0, &sb)?;
        Ok(fs)
    }

    /// Mount an existing volume.
    ///
    /// # Errors
    ///
    /// [`FsError::BadMagic`] if the device is not formatted; memory
    /// errors.
    pub fn mount<M: Memory>(mem: &mut M, dev: BlockDevice) -> Result<SimpleFs, FsError> {
        let bb = dev.block_bytes() as usize;
        let mut sb = vec![0u8; bb];
        dev.read_block(mem, 0, &mut sb)?;
        let word = |i: usize| u64::from_le_bytes(sb[i..i + 8].try_into().expect("8 bytes"));
        if word(0) != MAGIC {
            return Err(FsError::BadMagic);
        }
        let fat_blocks = word(8);
        let dir_blocks = word(16);
        Ok(SimpleFs {
            dev,
            fat_base: 1,
            dir_base: 1 + fat_blocks,
            dir_entries: word(24),
            data_base: 1 + fat_blocks + dir_blocks,
            data_blocks: word(32),
        })
    }

    // -- FAT access -----------------------------------------------------

    fn fat_addr(&self, data_block: u64) -> (u64, usize) {
        let bb = self.dev.block_bytes() as u64;
        let byte = data_block * 4;
        (self.fat_base + byte / bb, (byte % bb) as usize)
    }

    fn fat_get<M: Memory>(&self, mem: &mut M, data_block: u64) -> Result<u32, FsError> {
        let bb = self.dev.block_bytes() as usize;
        let (block, off) = self.fat_addr(data_block);
        let mut raw = vec![0u8; bb];
        self.dev.read_block(mem, block, &mut raw)?;
        Ok(u32::from_le_bytes(
            raw[off..off + 4].try_into().expect("4 bytes"),
        ))
    }

    fn fat_set<M: Memory>(&self, mem: &mut M, data_block: u64, value: u32) -> Result<(), FsError> {
        let bb = self.dev.block_bytes() as usize;
        let (block, off) = self.fat_addr(data_block);
        let mut raw = vec![0u8; bb];
        self.dev.read_block(mem, block, &mut raw)?;
        raw[off..off + 4].copy_from_slice(&value.to_le_bytes());
        self.dev.write_block(mem, block, &raw)?;
        Ok(())
    }

    fn alloc_block<M: Memory>(&self, mem: &mut M) -> Result<u64, FsError> {
        for b in 0..self.data_blocks {
            if self.fat_get(mem, b)? == FREE {
                self.fat_set(mem, b, END)?;
                return Ok(b);
            }
        }
        Err(FsError::NoSpace)
    }

    // -- Directory access ------------------------------------------------

    fn dir_slot_addr(&self, slot: u64) -> (u64, usize) {
        let bb = self.dev.block_bytes() as u64;
        let byte = slot * DIR_ENTRY_BYTES;
        (self.dir_base + byte / bb, (byte % bb) as usize)
    }

    fn read_entry<M: Memory>(&self, mem: &mut M, slot: u64) -> Result<DirEntry, FsError> {
        let bb = self.dev.block_bytes() as usize;
        let (block, off) = self.dir_slot_addr(slot);
        let mut raw = vec![0u8; bb];
        self.dev.read_block(mem, block, &mut raw)?;
        let e = &raw[off..off + DIR_ENTRY_BYTES as usize];
        let used = e[0] == 1;
        let name_len = (e[1] as usize).min(NAME_BYTES);
        let name = String::from_utf8_lossy(&e[2..2 + name_len]).into_owned();
        let size = u64::from_le_bytes(e[48..56].try_into().expect("8 bytes"));
        let first = u32::from_le_bytes(e[56..60].try_into().expect("4 bytes"));
        Ok(DirEntry {
            used,
            name,
            size,
            first,
        })
    }

    fn write_entry<M: Memory>(
        &self,
        mem: &mut M,
        slot: u64,
        entry: &DirEntry,
    ) -> Result<(), FsError> {
        let bb = self.dev.block_bytes() as usize;
        let (block, off) = self.dir_slot_addr(slot);
        let mut raw = vec![0u8; bb];
        self.dev.read_block(mem, block, &mut raw)?;
        let e = &mut raw[off..off + DIR_ENTRY_BYTES as usize];
        e.fill(0);
        e[0] = u8::from(entry.used);
        let name = entry.name.as_bytes();
        e[1] = name.len() as u8;
        e[2..2 + name.len()].copy_from_slice(name);
        e[48..56].copy_from_slice(&entry.size.to_le_bytes());
        e[56..60].copy_from_slice(&entry.first.to_le_bytes());
        self.dev.write_block(mem, block, &raw)?;
        Ok(())
    }

    fn find<M: Memory>(&self, mem: &mut M, name: &str) -> Result<Option<u64>, FsError> {
        for slot in 0..self.dir_entries {
            let e = self.read_entry(mem, slot)?;
            if e.used && e.name == name {
                return Ok(Some(slot));
            }
        }
        Ok(None)
    }

    // -- Public file API ---------------------------------------------------

    /// Create or replace a file with the given contents.
    ///
    /// # Errors
    ///
    /// [`FsError::NameTooLong`], [`FsError::TooManyFiles`],
    /// [`FsError::NoSpace`], or memory errors. On `NoSpace` the file is
    /// left deleted.
    pub fn write_file<M: Memory>(
        &mut self,
        mem: &mut M,
        name: &str,
        data: &[u8],
    ) -> Result<(), FsError> {
        if name.len() > NAME_BYTES {
            return Err(FsError::NameTooLong);
        }
        // Replace semantics: drop any existing chain first.
        if self.find(mem, name)?.is_some() {
            self.delete(mem, name)?;
        }
        let slot = {
            let mut free = None;
            for s in 0..self.dir_entries {
                if !self.read_entry(mem, s)?.used {
                    free = Some(s);
                    break;
                }
            }
            free.ok_or(FsError::TooManyFiles)?
        };
        let bb = self.dev.block_bytes() as usize;
        let mut first: u32 = END;
        let mut prev: Option<u64> = None;
        let mut written = 0usize;
        while written < data.len() || (data.is_empty() && first == END) {
            let block = self.alloc_block(mem)?;
            if let Some(p) = prev {
                self.fat_set(mem, p, block as u32)?;
            } else {
                first = block as u32;
            }
            let mut sector = vec![0u8; bb];
            let take = bb.min(data.len() - written);
            sector[..take].copy_from_slice(&data[written..written + take]);
            self.dev.write_block(mem, self.data_base + block, &sector)?;
            written += take;
            prev = Some(block);
            if data.is_empty() {
                break;
            }
        }
        self.write_entry(
            mem,
            slot,
            &DirEntry {
                used: true,
                name: name.to_string(),
                size: data.len() as u64,
                first,
            },
        )
    }

    /// Read a whole file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or memory errors.
    pub fn read_file<M: Memory>(&self, mem: &mut M, name: &str) -> Result<Vec<u8>, FsError> {
        let slot = self.find(mem, name)?.ok_or(FsError::NotFound)?;
        let entry = self.read_entry(mem, slot)?;
        let bb = self.dev.block_bytes() as usize;
        let mut out = Vec::with_capacity(entry.size as usize);
        let mut block = entry.first;
        let mut sector = vec![0u8; bb];
        while block != END && (out.len() as u64) < entry.size {
            self.dev
                .read_block(mem, self.data_base + block as u64, &mut sector)?;
            let take = bb.min(entry.size as usize - out.len());
            out.extend_from_slice(&sector[..take]);
            block = self.fat_get(mem, block as u64)?;
        }
        Ok(out)
    }

    /// Delete a file, freeing its blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or memory errors.
    pub fn delete<M: Memory>(&mut self, mem: &mut M, name: &str) -> Result<(), FsError> {
        let slot = self.find(mem, name)?.ok_or(FsError::NotFound)?;
        let entry = self.read_entry(mem, slot)?;
        let mut block = entry.first;
        while block != END {
            let next = self.fat_get(mem, block as u64)?;
            self.fat_set(mem, block as u64, FREE)?;
            block = next;
        }
        self.write_entry(
            mem,
            slot,
            &DirEntry {
                used: false,
                name: String::new(),
                size: 0,
                first: END,
            },
        )
    }

    /// List files as (name, size) pairs.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn list<M: Memory>(&self, mem: &mut M) -> Result<Vec<(String, u64)>, FsError> {
        let mut out = Vec::new();
        for slot in 0..self.dir_entries {
            let e = self.read_entry(mem, slot)?;
            if e.used {
                out.push((e.name, e.size));
            }
        }
        Ok(out)
    }

    /// Number of free data blocks.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn free_blocks<M: Memory>(&self, mem: &mut M) -> Result<u64, FsError> {
        let mut free = 0;
        for b in 0..self.data_blocks {
            if self.fat_get(mem, b)? == FREE {
                free += 1;
            }
        }
        Ok(free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envy_core::VecMemory;

    fn setup() -> (VecMemory, SimpleFs) {
        let mut mem = VecMemory::new(1024 * 1024);
        let dev = BlockDevice::new(0, 512, 2048);
        let fs = SimpleFs::format(&mut mem, dev).unwrap();
        (mem, fs)
    }

    #[test]
    fn format_and_mount() {
        let (mut mem, fs) = setup();
        let mounted = SimpleFs::mount(&mut mem, BlockDevice::new(0, 512, 2048)).unwrap();
        assert_eq!(mounted, fs);
    }

    #[test]
    fn mount_unformatted_fails() {
        let mut mem = VecMemory::new(64 * 1024);
        let dev = BlockDevice::new(0, 512, 128);
        assert_eq!(
            SimpleFs::mount(&mut mem, dev).unwrap_err(),
            FsError::BadMagic
        );
    }

    #[test]
    fn write_read_roundtrip_multiblock() {
        let (mut mem, mut fs) = setup();
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        fs.write_file(&mut mem, "big.bin", &data).unwrap();
        assert_eq!(fs.read_file(&mut mem, "big.bin").unwrap(), data);
    }

    #[test]
    fn empty_file() {
        let (mut mem, mut fs) = setup();
        fs.write_file(&mut mem, "empty", b"").unwrap();
        assert_eq!(fs.read_file(&mut mem, "empty").unwrap(), b"");
        assert_eq!(fs.list(&mut mem).unwrap(), vec![("empty".to_string(), 0)]);
    }

    #[test]
    fn replace_file_reclaims_blocks() {
        let (mut mem, mut fs) = setup();
        let before = fs.free_blocks(&mut mem).unwrap();
        fs.write_file(&mut mem, "f", &vec![1u8; 10_000]).unwrap();
        fs.write_file(&mut mem, "f", b"short").unwrap();
        assert_eq!(fs.read_file(&mut mem, "f").unwrap(), b"short");
        assert_eq!(fs.free_blocks(&mut mem).unwrap(), before - 1);
    }

    #[test]
    fn delete_frees_everything() {
        let (mut mem, mut fs) = setup();
        let before = fs.free_blocks(&mut mem).unwrap();
        fs.write_file(&mut mem, "f", &vec![1u8; 10_000]).unwrap();
        fs.delete(&mut mem, "f").unwrap();
        assert_eq!(fs.free_blocks(&mut mem).unwrap(), before);
        assert_eq!(fs.read_file(&mut mem, "f").unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn many_files_listed() {
        let (mut mem, mut fs) = setup();
        for i in 0..10 {
            fs.write_file(&mut mem, &format!("file{i}"), &[i as u8; 100])
                .unwrap();
        }
        let mut names: Vec<String> = fs
            .list(&mut mem)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        names.sort();
        assert_eq!(names.len(), 10);
        assert_eq!(names[0], "file0");
    }

    #[test]
    fn fills_to_no_space() {
        let mut mem = VecMemory::new(64 * 1024);
        let dev = BlockDevice::new(0, 512, 64);
        let mut fs = SimpleFs::format(&mut mem, dev).unwrap();
        let big = vec![0u8; 512 * 128];
        assert_eq!(
            fs.write_file(&mut mem, "big", &big).unwrap_err(),
            FsError::NoSpace
        );
    }

    #[test]
    fn too_many_files() {
        let (mut mem, mut fs) = setup();
        let mut err = None;
        for i in 0..100 {
            if let Err(e) = fs.write_file(&mut mem, &format!("f{i}"), b"x") {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(FsError::TooManyFiles));
    }

    #[test]
    fn long_name_rejected() {
        let (mut mem, mut fs) = setup();
        let name = "x".repeat(47);
        assert_eq!(
            fs.write_file(&mut mem, &name, b"data").unwrap_err(),
            FsError::NameTooLong
        );
        // 46 bytes is fine.
        fs.write_file(&mut mem, &"y".repeat(46), b"data").unwrap();
    }

    #[test]
    fn persistence_across_remount() {
        let (mut mem, mut fs) = setup();
        fs.write_file(&mut mem, "keep", b"persistent data").unwrap();
        // Mount a second handle from the on-device metadata alone.
        let fs2 = SimpleFs::mount(&mut mem, BlockDevice::new(0, 512, 2048)).unwrap();
        assert_eq!(fs2.read_file(&mut mem, "keep").unwrap(), b"persistent data");
    }

    #[test]
    fn too_small_device_rejected() {
        let mut mem = VecMemory::new(64 * 1024);
        let dev = BlockDevice::new(0, 512, 4);
        assert_eq!(
            SimpleFs::format(&mut mem, dev).unwrap_err(),
            FsError::DeviceTooSmall
        );
    }
}
