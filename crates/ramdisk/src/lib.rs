#![warn(missing_docs)]
//! # envy-ramdisk — block-device compatibility for the eNVy array
//!
//! §1 of the paper: "For backwards compatibility, a simple RAM disk
//! program can make a memory array usable by a standard file system."
//!
//! This crate provides that path: [`BlockDevice`] exposes any
//! [`envy_core::Memory`] as fixed-size sectors, and [`SimpleFs`] is a
//! small FAT-style filesystem over it (superblock, allocation table,
//! fixed directory, chained data blocks) demonstrating that disk-shaped
//! software runs unmodified on the word-addressable array.
//!
//! # Example
//!
//! ```
//! use envy_core::VecMemory;
//! use envy_ramdisk::{BlockDevice, SimpleFs};
//!
//! # fn main() -> Result<(), envy_ramdisk::FsError> {
//! let mut mem = VecMemory::new(256 * 1024);
//! let dev = BlockDevice::new(0, 512, 512);
//! let mut fs = SimpleFs::format(&mut mem, dev)?;
//! fs.write_file(&mut mem, "hello.txt", b"hi there")?;
//! assert_eq!(fs.read_file(&mut mem, "hello.txt")?, b"hi there");
//! # Ok(())
//! # }
//! ```

pub mod device;
pub mod fs;

pub use device::BlockDevice;
pub use fs::{FsError, SimpleFs};
