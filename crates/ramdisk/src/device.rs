//! Sector-granularity adapter over the linear array.

use envy_core::{EnvyError, Memory};

/// A fixed-geometry block device mapped onto a region of linear memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDevice {
    base: u64,
    block_bytes: u32,
    blocks: u64,
}

impl BlockDevice {
    /// Create a device of `blocks` sectors of `block_bytes`, starting at
    /// byte `base` of the underlying memory.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(base: u64, block_bytes: u32, blocks: u64) -> BlockDevice {
        assert!(block_bytes > 0 && blocks > 0, "device must be non-empty");
        BlockDevice {
            base,
            block_bytes,
            blocks,
        }
    }

    /// Sector size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Number of sectors.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.blocks * self.block_bytes as u64
    }

    fn addr_of(&self, block: u64) -> u64 {
        assert!(block < self.blocks, "block {block} out of range");
        self.base + block * self.block_bytes as u64
    }

    /// Read one sector.
    ///
    /// # Errors
    ///
    /// Memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or `buf` is not sector-sized.
    pub fn read_block<M: Memory>(
        &self,
        mem: &mut M,
        block: u64,
        buf: &mut [u8],
    ) -> Result<(), EnvyError> {
        assert_eq!(
            buf.len(),
            self.block_bytes as usize,
            "buffer must be sector-sized"
        );
        mem.read(self.addr_of(block), buf)
    }

    /// Write one sector.
    ///
    /// # Errors
    ///
    /// Memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or `data` is not sector-sized.
    pub fn write_block<M: Memory>(
        &self,
        mem: &mut M,
        block: u64,
        data: &[u8],
    ) -> Result<(), EnvyError> {
        assert_eq!(
            data.len(),
            self.block_bytes as usize,
            "buffer must be sector-sized"
        );
        mem.write(self.addr_of(block), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envy_core::VecMemory;

    #[test]
    fn geometry() {
        let d = BlockDevice::new(1024, 512, 16);
        assert_eq!(d.block_bytes(), 512);
        assert_eq!(d.blocks(), 16);
        assert_eq!(d.capacity(), 8192);
    }

    #[test]
    fn block_roundtrip_respects_base() {
        let mut mem = VecMemory::new(64 * 1024);
        let d = BlockDevice::new(4096, 512, 8);
        let data = vec![0xA5u8; 512];
        d.write_block(&mut mem, 3, &data).unwrap();
        let mut out = vec![0u8; 512];
        d.read_block(&mut mem, 3, &mut out).unwrap();
        assert_eq!(out, data);
        // Raw memory confirms the offset.
        let mut raw = [0u8; 1];
        mem.read(4096 + 3 * 512, &mut raw).unwrap();
        assert_eq!(raw[0], 0xA5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        let mut mem = VecMemory::new(64 * 1024);
        let d = BlockDevice::new(0, 512, 4);
        let mut buf = vec![0u8; 512];
        d.read_block(&mut mem, 4, &mut buf).unwrap();
    }

    #[test]
    #[should_panic(expected = "sector-sized")]
    fn wrong_buffer_size_panics() {
        let mut mem = VecMemory::new(64 * 1024);
        let d = BlockDevice::new(0, 512, 4);
        let mut buf = vec![0u8; 100];
        d.read_block(&mut mem, 0, &mut buf).unwrap();
    }
}
