//! On-memory node layout.
//!
//! A node is 16 header bytes plus 32 slots of (u64 key, u64 value), 528
//! bytes total, stored little-endian. Values are child node addresses in
//! internal nodes and user payloads in leaves. Internal nodes use the
//! *rightmost key ≤ search key* convention: entry `i` covers keys in
//! `[key[i], key[i+1])`.

use envy_core::{EnvyError, Memory};

/// Entries per node (§5.2: "a B-Tree with 32 entries per node").
pub const FANOUT: usize = 32;

/// Node header size in bytes.
pub const HEADER_BYTES: usize = 16;

/// Bytes per (key, value) entry.
pub const ENTRY_BYTES: usize = 16;

/// Total node size in bytes.
pub const NODE_BYTES: usize = HEADER_BYTES + FANOUT * ENTRY_BYTES;

/// A decoded node (the in-memory working copy; [`Node::store`] writes it
/// back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Whether this is a leaf.
    pub leaf: bool,
    /// Sorted (key, value) entries; at most [`FANOUT`].
    pub entries: Vec<(u64, u64)>,
}

impl Node {
    /// An empty leaf.
    pub fn new_leaf() -> Node {
        Node {
            leaf: true,
            entries: Vec::new(),
        }
    }

    /// An empty internal node.
    pub fn new_internal() -> Node {
        Node {
            leaf: false,
            entries: Vec::new(),
        }
    }

    /// Whether the node is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= FANOUT
    }

    /// Load a node from memory at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn load<M: Memory>(mem: &mut M, addr: u64) -> Result<Node, EnvyError> {
        let mut raw = [0u8; NODE_BYTES];
        mem.read(addr, &mut raw)?;
        let leaf = raw[0] == 1;
        let count = (raw[1] as usize).min(FANOUT);
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = HEADER_BYTES + i * ENTRY_BYTES;
            let key = u64::from_le_bytes(raw[off..off + 8].try_into().expect("slice is 8 bytes"));
            let value =
                u64::from_le_bytes(raw[off + 8..off + 16].try_into().expect("slice is 8 bytes"));
            entries.push((key, value));
        }
        Ok(Node { leaf, entries })
    }

    /// Store the node to memory at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if the node holds more than [`FANOUT`] entries.
    pub fn store<M: Memory>(&self, mem: &mut M, addr: u64) -> Result<(), EnvyError> {
        assert!(self.entries.len() <= FANOUT, "node overflow");
        let mut raw = [0u8; NODE_BYTES];
        raw[0] = u8::from(self.leaf);
        raw[1] = self.entries.len() as u8;
        for (i, &(key, value)) in self.entries.iter().enumerate() {
            let off = HEADER_BYTES + i * ENTRY_BYTES;
            raw[off..off + 8].copy_from_slice(&key.to_le_bytes());
            raw[off + 8..off + 16].copy_from_slice(&value.to_le_bytes());
        }
        mem.write(addr, &raw)
    }

    /// Position of `key` in a leaf: `Ok(i)` if present, `Err(i)` for the
    /// insertion point.
    pub fn leaf_search(&self, key: u64) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k)
    }

    /// Child index to descend into for `key` in an internal node: the
    /// rightmost entry whose key is ≤ `key` (entry 0 if all keys are
    /// greater, which only happens transiently for the leftmost path).
    pub fn child_index(&self, key: u64) -> usize {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envy_core::VecMemory;

    #[test]
    fn layout_constants() {
        assert_eq!(FANOUT, 32);
        assert_eq!(NODE_BYTES, 528);
    }

    #[test]
    fn store_load_roundtrip() {
        let mut mem = VecMemory::new(4096);
        let mut n = Node::new_leaf();
        for i in 0..10u64 {
            n.entries.push((i * 3, i * 100));
        }
        n.store(&mut mem, 128).unwrap();
        let back = Node::load(&mut mem, 128).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn internal_flag_roundtrips() {
        let mut mem = VecMemory::new(1024);
        let n = Node::new_internal();
        n.store(&mut mem, 0).unwrap();
        assert!(!Node::load(&mut mem, 0).unwrap().leaf);
    }

    #[test]
    fn full_node_roundtrip() {
        let mut mem = VecMemory::new(1024);
        let mut n = Node::new_leaf();
        for i in 0..FANOUT as u64 {
            n.entries.push((i, i));
        }
        assert!(n.is_full());
        n.store(&mut mem, 0).unwrap();
        assert_eq!(Node::load(&mut mem, 0).unwrap().entries.len(), FANOUT);
    }

    #[test]
    fn leaf_search_positions() {
        let mut n = Node::new_leaf();
        n.entries = vec![(10, 0), (20, 0), (30, 0)];
        assert_eq!(n.leaf_search(20), Ok(1));
        assert_eq!(n.leaf_search(5), Err(0));
        assert_eq!(n.leaf_search(25), Err(2));
        assert_eq!(n.leaf_search(99), Err(3));
    }

    #[test]
    fn child_index_convention() {
        let mut n = Node::new_internal();
        n.entries = vec![(0, 100), (10, 200), (20, 300)];
        assert_eq!(n.child_index(0), 0);
        assert_eq!(n.child_index(5), 0);
        assert_eq!(n.child_index(10), 1);
        assert_eq!(n.child_index(15), 1);
        assert_eq!(n.child_index(99), 2);
    }
}
