//! The B-Tree proper: create/open, point lookups, inserts with preemptive
//! splits, in-place value updates, and bottom-up bulk loading.

use crate::node::{Node, ENTRY_BYTES, FANOUT, HEADER_BYTES, NODE_BYTES};
use envy_core::{EnvyError, Memory};
use std::error::Error;
use std::fmt;

const MAGIC: u64 = 0x656E_5679_4254_7265; // "eNVyBTre"
const REGION_HEADER: u64 = 32;

/// Errors from B-Tree operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BTreeError {
    /// The region cannot hold another node.
    OutOfSpace,
    /// The region header does not contain a B-Tree.
    BadMagic,
    /// Bulk-load input was not strictly ascending.
    NotSorted,
    /// An error from the underlying memory.
    Memory(EnvyError),
}

impl fmt::Display for BTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BTreeError::OutOfSpace => write!(f, "b-tree region out of space"),
            BTreeError::BadMagic => write!(f, "region does not contain a b-tree"),
            BTreeError::NotSorted => write!(f, "bulk-load input must be strictly ascending"),
            BTreeError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for BTreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BTreeError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnvyError> for BTreeError {
    fn from(e: EnvyError) -> BTreeError {
        BTreeError::Memory(e)
    }
}

/// An order-32 B-Tree living in a region of linear memory.
///
/// The region starts with a 32-byte header (magic, root address, bump
/// allocator cursor, region length) so a tree can be re-opened after a
/// crash or from another process — everything lives in the non-volatile
/// array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    region: u64,
    region_len: u64,
    root: u64,
    next_free: u64,
}

impl BTree {
    /// Create a fresh tree occupying `[region, region + len)`.
    ///
    /// # Errors
    ///
    /// [`BTreeError::OutOfSpace`] if the region cannot hold even the
    /// root; memory errors.
    pub fn create<M: Memory>(mem: &mut M, region: u64, len: u64) -> Result<BTree, BTreeError> {
        if len < REGION_HEADER + NODE_BYTES as u64 {
            return Err(BTreeError::OutOfSpace);
        }
        let mut tree = BTree {
            region,
            region_len: len,
            root: region + REGION_HEADER,
            next_free: region + REGION_HEADER,
        };
        let root = tree.alloc(mem)?;
        debug_assert_eq!(root, tree.root);
        Node::new_leaf().store(mem, root)?;
        tree.write_header(mem)?;
        Ok(tree)
    }

    /// Re-open a tree previously created in this region.
    ///
    /// # Errors
    ///
    /// [`BTreeError::BadMagic`] if the header is absent or corrupt.
    pub fn open<M: Memory>(mem: &mut M, region: u64) -> Result<BTree, BTreeError> {
        let mut header = [0u8; REGION_HEADER as usize];
        mem.read(region, &mut header)?;
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().expect("8"));
        if word(0) != MAGIC {
            return Err(BTreeError::BadMagic);
        }
        Ok(BTree {
            region,
            region_len: word(3),
            root: word(1),
            next_free: word(2),
        })
    }

    fn write_header<M: Memory>(&self, mem: &mut M) -> Result<(), BTreeError> {
        let mut header = [0u8; REGION_HEADER as usize];
        header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        header[8..16].copy_from_slice(&self.root.to_le_bytes());
        header[16..24].copy_from_slice(&self.next_free.to_le_bytes());
        header[24..32].copy_from_slice(&self.region_len.to_le_bytes());
        mem.write(self.region, &header)?;
        Ok(())
    }

    fn alloc<M: Memory>(&mut self, mem: &mut M) -> Result<u64, BTreeError> {
        let addr = self.next_free;
        if addr + NODE_BYTES as u64 > self.region + self.region_len {
            return Err(BTreeError::OutOfSpace);
        }
        self.next_free += NODE_BYTES as u64;
        self.write_header(mem)?;
        Ok(addr)
    }

    /// The root node address.
    pub fn root_addr(&self) -> u64 {
        self.root
    }

    /// Bytes of the region consumed by nodes.
    pub fn bytes_used(&self) -> u64 {
        self.next_free - self.region
    }

    /// Look up a key, loading whole nodes (functional path).
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn get<M: Memory>(&self, mem: &mut M, key: u64) -> Result<Option<u64>, BTreeError> {
        let mut addr = self.root;
        loop {
            let node = Node::load(mem, addr)?;
            if node.leaf {
                return Ok(match node.leaf_search(key) {
                    Ok(i) => Some(node.entries[i].1),
                    Err(_) => None,
                });
            }
            if node.entries.is_empty() {
                return Ok(None);
            }
            addr = node.entries[node.child_index(key)].1;
        }
    }

    /// Look up a key with the access pattern real hardware would see:
    /// a header read plus a binary search of individual 8-byte key probes
    /// per node, then one value read (§5.2's index search traffic).
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn get_probed<M: Memory>(&self, mem: &mut M, key: u64) -> Result<Option<u64>, BTreeError> {
        let mut addr = self.root;
        loop {
            let mut header = [0u8; 2];
            mem.read(addr, &mut header)?;
            let leaf = header[0] == 1;
            let count = header[1] as usize;
            // Binary search over the entry keys, one probe per step.
            let mut lo = 0usize;
            let mut hi = count;
            let mut found: Option<usize> = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let mut kb = [0u8; 8];
                mem.read(addr + (HEADER_BYTES + mid * ENTRY_BYTES) as u64, &mut kb)?;
                let k = u64::from_le_bytes(kb);
                match k.cmp(&key) {
                    std::cmp::Ordering::Equal => {
                        found = Some(mid);
                        break;
                    }
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                }
            }
            let read_value = |mem: &mut M, i: usize| -> Result<u64, BTreeError> {
                let mut vb = [0u8; 8];
                mem.read(addr + (HEADER_BYTES + i * ENTRY_BYTES + 8) as u64, &mut vb)?;
                Ok(u64::from_le_bytes(vb))
            };
            if leaf {
                return Ok(match found {
                    Some(i) => Some(read_value(mem, i)?),
                    None => None,
                });
            }
            if count == 0 {
                return Ok(None);
            }
            let idx = match found {
                Some(i) => i,
                None => lo.saturating_sub(1),
            };
            addr = read_value(mem, idx)?;
        }
    }

    /// Insert or replace; returns the previous value if the key existed.
    ///
    /// # Errors
    ///
    /// [`BTreeError::OutOfSpace`] when the region is exhausted; memory
    /// errors.
    pub fn insert<M: Memory>(
        &mut self,
        mem: &mut M,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>, BTreeError> {
        // Preemptive root split keeps the descent simple: every parent we
        // descend from has room for a promoted separator.
        let root_node = Node::load(mem, self.root)?;
        if root_node.is_full() {
            let (sep, right_addr) = self.split_node(mem, self.root, &root_node)?;
            let left_first = root_node.entries[0].0;
            let new_root_addr = self.alloc(mem)?;
            let mut new_root = Node::new_internal();
            new_root.entries.push((left_first, self.root));
            new_root.entries.push((sep, right_addr));
            new_root.store(mem, new_root_addr)?;
            self.root = new_root_addr;
            self.write_header(mem)?;
        }
        let mut addr = self.root;
        loop {
            let mut node = Node::load(mem, addr)?;
            if node.leaf {
                match node.leaf_search(key) {
                    Ok(i) => {
                        let old = node.entries[i].1;
                        node.entries[i].1 = value;
                        node.store(mem, addr)?;
                        return Ok(Some(old));
                    }
                    Err(i) => {
                        node.entries.insert(i, (key, value));
                        node.store(mem, addr)?;
                        return Ok(None);
                    }
                }
            }
            let idx = node.child_index(key);
            let child_addr = node.entries[idx].1;
            let child = Node::load(mem, child_addr)?;
            if child.is_full() {
                let (sep, right_addr) = self.split_node(mem, child_addr, &child)?;
                node.entries.insert(idx + 1, (sep, right_addr));
                // Descending into the leftmost child with a smaller key
                // than any separator: keep the separator exact.
                if key < node.entries[idx].0 {
                    node.entries[idx].0 = node.entries[idx].0.min(key);
                }
                node.store(mem, addr)?;
                addr = if key >= sep { right_addr } else { child_addr };
            } else {
                addr = child_addr;
            }
        }
    }

    /// Split `node` (stored at `addr`) in half; the upper half moves to a
    /// new node. Returns the separator key and the new node's address.
    fn split_node<M: Memory>(
        &mut self,
        mem: &mut M,
        addr: u64,
        node: &Node,
    ) -> Result<(u64, u64), BTreeError> {
        let mid = node.entries.len() / 2;
        let right_addr = self.alloc(mem)?;
        let mut left = node.clone();
        let right_entries = left.entries.split_off(mid);
        let sep = right_entries[0].0;
        let right = Node {
            leaf: node.leaf,
            entries: right_entries,
        };
        left.store(mem, addr)?;
        right.store(mem, right_addr)?;
        Ok((sep, right_addr))
    }

    /// Update an existing key's value in place — exactly one 8-byte write
    /// (the TPC-A balance update, §5.2). Returns `false` if absent.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn update<M: Memory>(&self, mem: &mut M, key: u64, value: u64) -> Result<bool, BTreeError> {
        let mut addr = self.root;
        loop {
            let node = Node::load(mem, addr)?;
            if node.leaf {
                return match node.leaf_search(key) {
                    Ok(i) => {
                        let value_addr = addr + (HEADER_BYTES + i * ENTRY_BYTES + 8) as u64;
                        mem.write(value_addr, &value.to_le_bytes())?;
                        Ok(true)
                    }
                    Err(_) => Ok(false),
                };
            }
            if node.entries.is_empty() {
                return Ok(false);
            }
            addr = node.entries[node.child_index(key)].1;
        }
    }

    /// Remove a key; returns its value if it was present.
    ///
    /// Deletion is *lazy*: the entry is removed from its leaf but no
    /// rebalancing, merging, or node reclamation happens (the region
    /// uses a bump allocator, so node pages are never freed anyway).
    /// Internal separator keys are left untouched — a stale separator
    /// still routes correctly because it only ever *over*-partitions
    /// the key space — and a leaf may become empty, which every read
    /// path (`get`, `get_probed`, `scan`) tolerates. The trade-off is
    /// classic for append-friendly NVM indexes: deletes cost one leaf
    /// rewrite and space is returned only to the leaf, not the region.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn delete<M: Memory>(&mut self, mem: &mut M, key: u64) -> Result<Option<u64>, BTreeError> {
        let mut addr = self.root;
        loop {
            let mut node = Node::load(mem, addr)?;
            if node.leaf {
                return match node.leaf_search(key) {
                    Ok(i) => {
                        let (_, old) = node.entries.remove(i);
                        node.store(mem, addr)?;
                        Ok(Some(old))
                    }
                    Err(_) => Ok(None),
                };
            }
            if node.entries.is_empty() {
                return Ok(None);
            }
            addr = node.entries[node.child_index(key)].1;
        }
    }

    /// Ordered range read: up to `limit` `(key, value)` pairs with
    /// `key >= start`, in ascending key order.
    ///
    /// The traversal is a pruned in-order walk: a subtree is skipped
    /// when the *next* separator key is `<= start`, since every key it
    /// holds is strictly below that separator. Leaves have no sibling
    /// links (nodes are immovable once bump-allocated), so the walk
    /// descends from the root; with fanout 32 the extra internal reads
    /// are one node per level per ~32 leaves visited.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn scan<M: Memory>(
        &self,
        mem: &mut M,
        start: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>, BTreeError> {
        let mut out = Vec::with_capacity(limit.min(FANOUT));
        if limit > 0 {
            self.scan_node(mem, self.root, start, limit, &mut out)?;
        }
        Ok(out)
    }

    fn scan_node<M: Memory>(
        &self,
        mem: &mut M,
        addr: u64,
        start: u64,
        limit: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> Result<(), BTreeError> {
        let node = Node::load(mem, addr)?;
        if node.leaf {
            let from = match node.leaf_search(start) {
                Ok(i) | Err(i) => i,
            };
            for &(k, v) in &node.entries[from..] {
                if out.len() == limit {
                    break;
                }
                out.push((k, v));
            }
            return Ok(());
        }
        for i in 0..node.entries.len() {
            if out.len() == limit {
                break;
            }
            // Subtree i only holds keys < separator i+1: child_index
            // routes any key >= that separator further right. If that
            // bound is <= start the whole subtree is below the range.
            if node
                .entries
                .get(i + 1)
                .is_some_and(|&(sep, _)| sep <= start)
            {
                continue;
            }
            self.scan_node(mem, node.entries[i].1, start, limit, out)?;
        }
        Ok(())
    }

    /// Bulk-load a fresh tree from strictly ascending `(key, value)`
    /// pairs, packing leaves full and building internal levels bottom-up
    /// (how the TPC-A database is initialized).
    ///
    /// # Errors
    ///
    /// [`BTreeError::NotSorted`] on unordered input;
    /// [`BTreeError::OutOfSpace`]; memory errors.
    pub fn bulk_load<M, I>(
        mem: &mut M,
        region: u64,
        len: u64,
        pairs: I,
    ) -> Result<BTree, BTreeError>
    where
        M: Memory,
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut tree = BTree {
            region,
            region_len: len,
            root: region + REGION_HEADER,
            next_free: region + REGION_HEADER,
        };
        // Build the leaf level.
        let mut level: Vec<(u64, u64)> = Vec::new(); // (first key, node addr)
        let mut current = Node::new_leaf();
        let mut last_key: Option<u64> = None;
        for (key, value) in pairs {
            if last_key.is_some_and(|k| key <= k) {
                return Err(BTreeError::NotSorted);
            }
            last_key = Some(key);
            if current.is_full() {
                let addr = tree.alloc_quiet()?;
                current.store(mem, addr)?;
                level.push((current.entries[0].0, addr));
                current = Node::new_leaf();
            }
            current.entries.push((key, value));
        }
        let addr = tree.alloc_quiet()?;
        let first = current.entries.first().map_or(0, |e| e.0);
        current.store(mem, addr)?;
        level.push((first, addr));

        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<(u64, u64)> = Vec::new();
            for chunk in level.chunks(FANOUT) {
                let addr = tree.alloc_quiet()?;
                let node = Node {
                    leaf: false,
                    entries: chunk.to_vec(),
                };
                node.store(mem, addr)?;
                next.push((chunk[0].0, addr));
            }
            level = next;
        }
        tree.root = level[0].1;
        tree.write_header(mem)?;
        Ok(tree)
    }

    fn alloc_quiet(&mut self) -> Result<u64, BTreeError> {
        let addr = self.next_free;
        if addr + NODE_BYTES as u64 > self.region + self.region_len {
            return Err(BTreeError::OutOfSpace);
        }
        self.next_free += NODE_BYTES as u64;
        Ok(addr)
    }

    /// Tree depth (1 for a lone leaf).
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn depth<M: Memory>(&self, mem: &mut M) -> Result<u32, BTreeError> {
        let mut d = 1;
        let mut addr = self.root;
        loop {
            let node = Node::load(mem, addr)?;
            if node.leaf || node.entries.is_empty() {
                return Ok(d);
            }
            d += 1;
            addr = node.entries[0].1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envy_core::VecMemory;

    fn mem() -> VecMemory {
        VecMemory::new(2 * 1024 * 1024)
    }

    #[test]
    fn empty_tree_lookups_miss() {
        let mut m = mem();
        let t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        assert_eq!(t.get(&mut m, 1).unwrap(), None);
        assert_eq!(t.get_probed(&mut m, 1).unwrap(), None);
        assert_eq!(t.depth(&mut m).unwrap(), 1);
    }

    #[test]
    fn insert_then_get() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        assert_eq!(t.insert(&mut m, 10, 100).unwrap(), None);
        assert_eq!(t.insert(&mut m, 10, 200).unwrap(), Some(100));
        assert_eq!(t.get(&mut m, 10).unwrap(), Some(200));
    }

    #[test]
    fn many_inserts_ascending() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        for i in 0..5_000u64 {
            t.insert(&mut m, i, i * 2).unwrap();
        }
        for i in 0..5_000u64 {
            assert_eq!(t.get(&mut m, i).unwrap(), Some(i * 2), "key {i}");
        }
        assert!(t.depth(&mut m).unwrap() >= 3);
    }

    #[test]
    fn many_inserts_shuffled() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        let mut keys: Vec<u64> = (0..5_000).collect();
        let mut rng = envy_sim::rng::Rng::seed_from(3);
        rng.shuffle(&mut keys);
        for &k in &keys {
            t.insert(&mut m, k, k + 7).unwrap();
        }
        for k in 0..5_000u64 {
            assert_eq!(t.get(&mut m, k).unwrap(), Some(k + 7), "key {k}");
            assert_eq!(t.get_probed(&mut m, k).unwrap(), Some(k + 7), "probed {k}");
        }
        assert_eq!(t.get(&mut m, 5_000).unwrap(), None);
    }

    #[test]
    fn probed_and_whole_node_agree() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        for i in (0..2_000u64).map(|i| i * 3) {
            t.insert(&mut m, i, i).unwrap();
        }
        for probe in 0..6_000u64 {
            assert_eq!(
                t.get(&mut m, probe).unwrap(),
                t.get_probed(&mut m, probe).unwrap(),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn update_in_place() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        for i in 0..1_000u64 {
            t.insert(&mut m, i, 0).unwrap();
        }
        assert!(t.update(&mut m, 500, 9_999).unwrap());
        assert_eq!(t.get(&mut m, 500).unwrap(), Some(9_999));
        assert!(!t.update(&mut m, 1_001, 1).unwrap());
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let mut m = mem();
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i, i * 13)).collect();
        let t = BTree::bulk_load(&mut m, 0, 2 * 1024 * 1024, pairs.iter().copied()).unwrap();
        for &(k, v) in &pairs {
            assert_eq!(t.get(&mut m, k).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(t.get(&mut m, 10_000).unwrap(), None);
    }

    #[test]
    fn bulk_load_depths_match_paper_figure_12() {
        // Figure 12: 155 branches -> 2 levels, 1550 tellers -> 3 levels,
        // 15.5M accounts -> 5 levels (we verify the formula at 15,500
        // accounts -> ceil over fanout-32 levels).
        let mut m = mem();
        let t = BTree::bulk_load(&mut m, 0, 64 * 1024, (0..155).map(|i| (i, i))).unwrap();
        assert_eq!(t.depth(&mut m).unwrap(), 2);
        let mut m2 = mem();
        let t2 = BTree::bulk_load(&mut m2, 0, 256 * 1024, (0..1_550).map(|i| (i, i))).unwrap();
        assert_eq!(t2.depth(&mut m2).unwrap(), 3);
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let mut m = mem();
        let r = BTree::bulk_load(&mut m, 0, 64 * 1024, vec![(2, 0), (1, 0)]);
        assert_eq!(r.unwrap_err(), BTreeError::NotSorted);
        let r = BTree::bulk_load(&mut m, 0, 64 * 1024, vec![(1, 0), (1, 0)]);
        assert_eq!(r.unwrap_err(), BTreeError::NotSorted);
    }

    #[test]
    fn open_reattaches_after_drop() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 4096, 512 * 1024).unwrap();
        for i in 0..1_000u64 {
            t.insert(&mut m, i, i).unwrap();
        }
        let reopened = BTree::open(&mut m, 4096).unwrap();
        assert_eq!(reopened, t);
        assert_eq!(reopened.get(&mut m, 999).unwrap(), Some(999));
    }

    #[test]
    fn open_rejects_garbage() {
        let mut m = mem();
        assert_eq!(BTree::open(&mut m, 0).unwrap_err(), BTreeError::BadMagic);
    }

    #[test]
    fn out_of_space_is_clean_error() {
        let mut m = mem();
        // Room for only a few nodes.
        let mut t = BTree::create(&mut m, 0, REGION_HEADER + 3 * NODE_BYTES as u64).unwrap();
        let mut err = None;
        for i in 0..10_000u64 {
            if let Err(e) = t.insert(&mut m, i, i) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(BTreeError::OutOfSpace));
    }

    #[test]
    fn delete_roundtrip() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        assert_eq!(t.delete(&mut m, 5).unwrap(), None);
        t.insert(&mut m, 5, 50).unwrap();
        assert_eq!(t.delete(&mut m, 5).unwrap(), Some(50));
        assert_eq!(t.get(&mut m, 5).unwrap(), None);
        assert_eq!(t.delete(&mut m, 5).unwrap(), None);
        // Reinsertion after delete works.
        t.insert(&mut m, 5, 51).unwrap();
        assert_eq!(t.get(&mut m, 5).unwrap(), Some(51));
    }

    #[test]
    fn delete_many_leaves_survivors_intact() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        for i in 0..5_000u64 {
            t.insert(&mut m, i, i * 2).unwrap();
        }
        // Empty out every even key — many leaves end up sparse or empty.
        for i in (0..5_000u64).step_by(2) {
            assert_eq!(t.delete(&mut m, i).unwrap(), Some(i * 2), "key {i}");
        }
        for i in 0..5_000u64 {
            let want = if i % 2 == 1 { Some(i * 2) } else { None };
            assert_eq!(t.get(&mut m, i).unwrap(), want, "key {i}");
            assert_eq!(t.get_probed(&mut m, i).unwrap(), want, "probed {i}");
        }
    }

    #[test]
    fn delete_whole_tree_then_refill() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        for i in 0..2_000u64 {
            t.insert(&mut m, i, i).unwrap();
        }
        for i in 0..2_000u64 {
            t.delete(&mut m, i).unwrap();
        }
        assert_eq!(t.scan(&mut m, 0, 10).unwrap(), vec![]);
        for i in 0..2_000u64 {
            t.insert(&mut m, i, i + 1).unwrap();
        }
        assert_eq!(t.get(&mut m, 1_999).unwrap(), Some(2_000));
    }

    #[test]
    fn scan_returns_sorted_ranges() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 2 * 1024 * 1024).unwrap();
        let mut keys: Vec<u64> = (0..4_000).map(|i| i * 3).collect();
        let mut rng = envy_sim::rng::Rng::seed_from(9);
        rng.shuffle(&mut keys);
        for &k in &keys {
            t.insert(&mut m, k, k + 1).unwrap();
        }
        // From an existing key.
        let got = t.scan(&mut m, 300, 5).unwrap();
        assert_eq!(
            got,
            vec![(300, 301), (303, 304), (306, 307), (309, 310), (312, 313)]
        );
        // From a key between entries.
        let got = t.scan(&mut m, 301, 2).unwrap();
        assert_eq!(got, vec![(303, 304), (306, 307)]);
        // Past the end.
        assert_eq!(t.scan(&mut m, 12_000, 4).unwrap(), vec![]);
        // Zero limit.
        assert_eq!(t.scan(&mut m, 0, 0).unwrap(), vec![]);
        // Unbounded-ish: whole tree comes back sorted.
        let all = t.scan(&mut m, 0, 10_000).unwrap();
        assert_eq!(all.len(), 4_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn scan_skips_deleted_entries() {
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 1024 * 1024).unwrap();
        for i in 0..100u64 {
            t.insert(&mut m, i, i).unwrap();
        }
        for i in 40..60u64 {
            t.delete(&mut m, i).unwrap();
        }
        let got = t.scan(&mut m, 35, 10).unwrap();
        let want: Vec<(u64, u64)> = (35..40).chain(60..65).map(|i| (i, i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn differential_vs_btreemap() {
        use std::collections::BTreeMap;
        let mut m = mem();
        let mut t = BTree::create(&mut m, 0, 2 * 1024 * 1024).unwrap();
        let mut model = BTreeMap::new();
        let mut rng = envy_sim::rng::Rng::seed_from(77);
        for _ in 0..20_000 {
            let k = rng.below(3_000);
            let v = rng.next_u64();
            let expected = model.insert(k, v);
            let got = t.insert(&mut m, k, v).unwrap();
            assert_eq!(got, expected);
        }
        for (k, v) in &model {
            assert_eq!(t.get(&mut m, *k).unwrap(), Some(*v));
        }
    }
}
