#![warn(missing_docs)]
//! # envy-btree — an order-32 B-Tree over linear memory
//!
//! The paper's TPC-A workload (§5.2) keeps its three index trees as
//! "B-Tree\[s\] with 32 entries per node" stored directly in the eNVy
//! memory array — the whole point of the word-addressable interface is
//! that in-memory data structures need no disk-block layout.
//!
//! This crate implements that structure over any
//! [`envy_core::Memory`], so the same tree runs on plain RAM
//! (for differential testing) and on an [`envy_core::EnvyStore`].
//!
//! # Example
//!
//! ```
//! use envy_btree::BTree;
//! use envy_core::VecMemory;
//!
//! # fn main() -> Result<(), envy_btree::BTreeError> {
//! let mut mem = VecMemory::new(64 * 1024);
//! let mut tree = BTree::create(&mut mem, 0, 64 * 1024)?;
//! tree.insert(&mut mem, 42, 4200)?;
//! assert_eq!(tree.get(&mut mem, 42)?, Some(4200));
//! assert_eq!(tree.get(&mut mem, 7)?, None);
//! # Ok(())
//! # }
//! ```

mod node;
mod tree;

pub use node::{Node, FANOUT, NODE_BYTES};
pub use tree::{BTree, BTreeError};
