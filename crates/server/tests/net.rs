//! Socket serving: protocol roundtrips over TCP and Unix sockets,
//! pipelining, malformed frames, killed connections, deadlines, and
//! graceful drains.

use envy_server::proto::{self, WireOutcome};
use envy_server::{serve, Client, Listener, Reply, Request, ServeConfig, ServeError, ShardedStore};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn launch_tcp(config: ServeConfig) -> (envy_server::ServerHandle, String) {
    let store = ShardedStore::launch(config).unwrap();
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let handle = serve(listener, store).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn tcp_roundtrip_and_graceful_shutdown() {
    let (server, addr) = launch_tcp(ServeConfig::small(2));
    let mut client = Client::connect_tcp(&addr).unwrap();
    client.ping(0).unwrap();
    client.ping(1).unwrap();
    let latency = client.write(4096, b"over-tcp").unwrap();
    assert!(latency.as_nanos() > 0);
    assert_eq!(client.read(4096, 8).unwrap(), b"over-tcp");
    // Cross-shard ranges surface the typed error over the wire.
    let shard_bytes = {
        let cfg = ServeConfig::small(2);
        envy_core::EnvyStore::new(cfg.store).unwrap().size()
    };
    match client.read(shard_bytes - 4, 8) {
        Err(envy_server::ClientError::Serve(ServeError::CrossesShard { .. })) => {}
        other => panic!("expected CrossesShard, got {other:?}"),
    }
    let summary = server.shutdown();
    assert_eq!(summary.connections, 1);
    // 2 pings + write + read admitted; the crossing range was rejected
    // at submission and never counted.
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.outcome.total_served(), summary.requests);
}

#[test]
fn unix_roundtrip_and_wire_shutdown() {
    let path = std::env::temp_dir().join(format!("envy-serve-test-{}.sock", std::process::id()));
    let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
    let listener = Listener::bind_unix(&path).unwrap();
    let server = serve(listener, store).unwrap();

    let mut client = Client::connect_unix(&path).unwrap();
    client.write(128, b"unix").unwrap();
    assert_eq!(client.read(128, 4).unwrap(), b"unix");
    // Wire-level SHUTDOWN: acked, then the server drains and exits.
    client.shutdown_server().unwrap();
    let summary = server.wait();
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.outcome.total_served(), summary.requests);
    assert!(!path.exists(), "socket file must be removed after serving");
}

#[test]
fn pipelined_requests_complete_out_of_order_by_id() {
    let (server, addr) = launch_tcp(ServeConfig::small(2));
    let mut client = Client::connect_tcp(&addr).unwrap();
    let mut ids = Vec::new();
    for i in 0..32u64 {
        let id = client
            .submit(
                Request::Write {
                    addr: i * 512,
                    bytes: vec![i as u8; 16],
                },
                None,
            )
            .unwrap();
        ids.push(id);
    }
    let mut seen = Vec::new();
    for _ in 0..ids.len() {
        let resp = client.recv().unwrap();
        assert!(matches!(
            resp.outcome,
            WireOutcome::Reply(Reply::Done { .. })
        ));
        seen.push(resp.id);
    }
    seen.sort_unstable();
    assert_eq!(seen, ids);
    server.shutdown();
}

#[test]
fn malformed_frame_answers_error_and_connection_survives() {
    let (server, addr) = launch_tcp(ServeConfig::small(1));
    let mut raw = TcpStream::connect(&addr).unwrap();
    // A syntactically valid frame with an unknown opcode.
    let garbage = [0xee_u8; 16];
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    raw.flush().unwrap();
    let payload = proto::read_frame(&mut raw).unwrap().expect("error reply");
    let resp = proto::decode_response(&payload).unwrap();
    assert!(matches!(
        resp.outcome,
        WireOutcome::Err(ServeError::Store(_))
    ));

    // The same connection still serves well-formed requests.
    let ping = proto::encode_request(&proto::WireRequest {
        id: 9,
        deadline_us: 0,
        body: proto::WireBody::Req(Request::Ping { shard: 0 }),
    });
    proto::write_frame(&mut raw, &ping).unwrap();
    let payload = proto::read_frame(&mut raw).unwrap().expect("pong");
    let resp = proto::decode_response(&payload).unwrap();
    assert_eq!(resp.id, 9);
    assert!(matches!(resp.outcome, WireOutcome::Reply(Reply::Pong)));
    server.shutdown();
}

#[test]
fn killed_connection_leaves_other_clients_intact() {
    let config = ServeConfig::small(1).with_service_delay(Duration::from_millis(2));
    let (server, addr) = launch_tcp(config);
    let mut victim = Client::connect_tcp(&addr).unwrap();
    let mut survivor = Client::connect_tcp(&addr).unwrap();

    // The victim floods a pipeline, then its socket dies mid-flight.
    for i in 0..16u64 {
        victim
            .submit(
                Request::Write {
                    addr: i * 64,
                    bytes: vec![1; 8],
                },
                None,
            )
            .unwrap();
    }
    drop(victim);

    // The survivor keeps getting service while the victim's requests
    // complete into the void.
    for i in 0..8u64 {
        survivor.write(8192 + i * 64, b"fine").unwrap();
    }
    assert_eq!(survivor.read(8192, 4).unwrap(), b"fine");
    let summary = server.shutdown();
    assert_eq!(summary.connections, 2);
    // Every admitted request — including the dead client's — was served.
    assert_eq!(summary.outcome.total_served(), summary.requests);
}

#[test]
fn wire_deadline_surfaces_typed_timeout() {
    let config = ServeConfig::small(1)
        .with_batch_max(16)
        .with_service_delay(Duration::from_millis(10));
    let (server, addr) = launch_tcp(config);
    let mut client = Client::connect_tcp(&addr).unwrap();
    let deadline = Some(Duration::from_millis(1));
    for i in 0..6u64 {
        client
            .submit(
                Request::Write {
                    addr: i * 64,
                    bytes: vec![2; 8],
                },
                deadline,
            )
            .unwrap();
    }
    let mut timed_out = 0;
    for _ in 0..6 {
        match client.recv().unwrap().outcome {
            WireOutcome::Err(ServeError::DeadlineExceeded) => timed_out += 1,
            WireOutcome::Reply(_) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(timed_out > 0, "queued-behind-slow requests must expire");
    let summary = server.shutdown();
    assert_eq!(summary.outcome.total_timed_out(), timed_out);
}

#[test]
fn wire_transaction_commit_abort_and_ownership() {
    let (server, addr) = launch_tcp(ServeConfig::small(2));
    let mut client = Client::connect_tcp(&addr).unwrap();
    let shard_bytes = {
        let cfg = ServeConfig::small(2);
        envy_core::EnvyStore::new(cfg.store).unwrap().size()
    };

    // Committed multi-page transaction: all writes visible after.
    let txn = client.txn_begin(0).unwrap();
    client.txn_write(0, b"alpha", txn).unwrap();
    client.txn_write(512, b"bravo", txn).unwrap();
    client.txn_commit(0, txn).unwrap();
    assert_eq!(client.read(0, 5).unwrap(), b"alpha");
    assert_eq!(client.read(512, 5).unwrap(), b"bravo");

    // Aborted transaction: the write is undone byte-exactly.
    let txn = client.txn_begin(0).unwrap();
    client.txn_write(0, b"nope!", txn).unwrap();
    client.txn_abort(0, txn).unwrap();
    assert_eq!(client.read(0, 5).unwrap(), b"alpha");

    // Ownership errors arrive typed over the wire — and the slot-full
    // refusal carries no transaction id (ids are capability-like).
    let txn = client.txn_begin(1).unwrap();
    match client.txn_begin(1) {
        Err(envy_server::ClientError::Serve(ServeError::TxnBusy)) => {}
        other => panic!("expected TxnBusy, got {other:?}"),
    }
    match client.txn_write(shard_bytes, b"x", txn + 1) {
        Err(envy_server::ClientError::Serve(ServeError::NoSuchTxn { .. })) => {}
        other => panic!("expected NoSuchTxn, got {other:?}"),
    }
    client.txn_abort(1, txn).unwrap();
    server.shutdown();
}

#[test]
fn plain_write_never_joins_another_connections_transaction() {
    // Regression test for the silent-join bug: a plain WRITE from one
    // connection used to be absorbed into whatever transaction another
    // connection had open on the shard — acknowledged, then silently
    // undone by that transaction's abort. Now a plain write to a page
    // in the open write set is refused with TXN_CONFLICT, and a plain
    // write to any other page executes independently and survives the
    // abort.
    let (server, addr) = launch_tcp(ServeConfig::small(1));
    let mut alice = Client::connect_tcp(&addr).unwrap();
    let mut bob = Client::connect_tcp(&addr).unwrap();
    alice.write(0, b"base").unwrap();
    alice.write(512, b"hold").unwrap();

    let txn = alice.txn_begin(0).unwrap();
    alice.txn_write(0, b"mine", txn).unwrap();

    // Bob's plain write to the page in Alice's write set: typed
    // conflict, no foreign transaction id attached.
    match bob.write(0, b"bobs") {
        Err(envy_server::ClientError::Serve(ServeError::TxnConflict)) => {}
        other => panic!("expected TxnConflict, got {other:?}"),
    }
    // Bob's plain write to an unowned page: acknowledged and durable,
    // independent of Alice's transaction.
    bob.write(512, b"bobs").unwrap();

    alice.txn_abort(0, txn).unwrap();
    assert_eq!(alice.read(0, 4).unwrap(), b"base", "txn write rolled back");
    assert_eq!(
        bob.read(512, 4).unwrap(),
        b"bobs",
        "acknowledged plain write must survive the foreign abort"
    );
    server.shutdown();
}

#[test]
fn disconnect_aborts_open_transaction() {
    let (server, addr) = launch_tcp(ServeConfig::small(1));
    let mut client = Client::connect_tcp(&addr).unwrap();
    client.write(64, b"base").unwrap();

    // Open a transaction, write under it, and vanish without resolving.
    let txn = client.txn_begin(0).unwrap();
    client.txn_write(64, b"gone", txn).unwrap();
    drop(client);

    // The server aborts the orphan: a fresh connection sees the
    // pre-transaction bytes and can open its own transaction (the
    // shard's single slot was released).
    let mut fresh = Client::connect_tcp(&addr).unwrap();
    let opened = std::time::Instant::now();
    loop {
        match fresh.txn_begin(0) {
            Ok(t) => {
                assert_eq!(fresh.read(64, 4).unwrap(), b"base");
                fresh.txn_abort(0, t).unwrap();
                break;
            }
            Err(envy_server::ClientError::Serve(ServeError::TxnBusy)) => {
                // The disconnect cleanup races connection teardown.
                assert!(
                    opened.elapsed() < Duration::from_secs(5),
                    "orphaned transaction never aborted"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("txn_begin: {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn disconnect_aborts_open_transactions_on_every_shard() {
    let (server, addr) = launch_tcp(ServeConfig::small(2));
    let shard_bytes = {
        let cfg = ServeConfig::small(2);
        envy_core::EnvyStore::new(cfg.store).unwrap().size()
    };
    let mut client = Client::connect_tcp(&addr).unwrap();
    client.write(64, b"zero").unwrap();
    client.write(shard_bytes + 64, b"one!").unwrap();

    // One connection holds an unresolved transaction on BOTH shards,
    // then vanishes. Ids are globally unique and the cleanup table is
    // keyed by (shard, txn), so neither entry can shadow the other:
    // both transactions must be aborted, releasing both slots.
    let t0 = client.txn_begin(0).unwrap();
    let t1 = client.txn_begin(1).unwrap();
    assert_ne!(t0, t1, "transaction ids must be unique across shards");
    client.txn_write(64, b"lost", t0).unwrap();
    client.txn_write(shard_bytes + 64, b"lost", t1).unwrap();
    drop(client);

    let mut fresh = Client::connect_tcp(&addr).unwrap();
    for (shard, base, want) in [(0u32, 0u64, b"zero"), (1, shard_bytes, b"one!")] {
        let opened = std::time::Instant::now();
        loop {
            match fresh.txn_begin(shard) {
                Ok(t) => {
                    assert_eq!(fresh.read(base + 64, 4).unwrap(), want);
                    fresh.txn_abort(shard, t).unwrap();
                    break;
                }
                Err(envy_server::ClientError::Serve(ServeError::TxnBusy)) => {
                    assert!(
                        opened.elapsed() < Duration::from_secs(5),
                        "orphaned transaction on shard {shard} never aborted"
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("txn_begin: {e}"),
            }
        }
    }
    server.shutdown();
}

/// The acceptance anchor for transactions over the wire: a seeded
/// atomic TPC-A run through a real TCP server — with a nonzero seeded
/// abort draw — must land on exactly the simulated clock, statistics
/// (commit/abort/shadow counters included), and bytes of the same
/// spec replayed synchronously against a monolithic store.
#[test]
fn socket_atomic_tpca_matches_monolithic_replay() {
    let config = ServeConfig::small(1);
    let mut baseline = envy_core::EnvyStore::new(config.store.clone()).unwrap();
    baseline.prefill().unwrap();
    let mut mono = baseline.fork();
    let store = ShardedStore::launch_from(vec![baseline.fork()], &config);
    let plan = *store.plan();
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let server = serve(listener, store).unwrap();
    let addr = server.addr().to_string();

    let spec = envy_server::LoadSpec::closed(1, 24)
        .with_seed(41)
        .atomic(0.2);
    let report =
        envy_server::loadgen::run_socket(|| Client::connect_tcp(&addr), plan, &spec).unwrap();
    let mut summary = server.shutdown();
    let mono_report = envy_server::loadgen::run_monolithic(&mut mono, &spec);

    assert!(report.aborted_txns > 0, "seeded abort draw must be nonzero");
    assert_eq!(report.completed_txns, mono_report.completed_txns);
    assert_eq!(report.aborted_txns, mono_report.aborted_txns);
    assert_eq!(report.completed_ops, mono_report.completed_ops);
    assert_eq!(report.errors, 0);
    let served = &summary.outcome.shards[0].store;
    assert_eq!(served.now(), mono.now(), "simulated clock diverged");
    assert_eq!(served.stats(), mono.stats(), "statistics diverged");
    let mut got = vec![0u8; served.size() as usize];
    let mut want = vec![0u8; mono.size() as usize];
    summary.outcome.shards[0].store.read(0, &mut got).unwrap();
    mono.read(0, &mut want).unwrap();
    assert_eq!(got, want, "contents diverged");
}

#[test]
fn socket_loadgen_closed_loop_over_tcp() {
    let (server, addr) = launch_tcp(ServeConfig::small(2));
    let store_plan = {
        let cfg = ServeConfig::small(2);
        let bytes = envy_core::EnvyStore::new(cfg.store).unwrap().size();
        envy_server::ShardPlan::new(2, bytes)
    };
    let spec = envy_server::LoadSpec::closed(3, 5).with_seed(99);
    let report =
        envy_server::loadgen::run_socket(|| Client::connect_tcp(&addr), store_plan, &spec).unwrap();
    assert_eq!(report.completed_txns, 15);
    assert_eq!(report.errors, 0);
    assert!(report.completed_ops > 0);
    let summary = server.shutdown();
    assert_eq!(summary.connections, 3);
    assert_eq!(summary.outcome.total_served(), report.completed_ops);
}
