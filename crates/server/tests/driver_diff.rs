//! Driver-equivalence tests: the event-loop drivers (`epoll`, `poll`)
//! and the thread-per-connection driver must be indistinguishable on
//! the wire — byte-identical responses for a seeded pipelined workload
//! and identical `ServeSummary` accounting — and must run the same
//! disconnect cleanup for half-closed sockets.

use envy_server::proto::{self, WireBody, WireRequest};
use envy_server::{
    serve_with, Client, Listener, NetConfig, NetDriver, Request, ServeConfig, ServeError,
    ShardedStore,
};
use envy_sim::rng::Rng;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Build a seeded pipelined request blob: a deterministic interleave of
/// writes, reads, pings, the four KV operations, and a few malformed
/// (unknown-opcode) frames. One shard + FIFO dispatch means completion
/// order equals admission order, so both drivers must answer with
/// identical byte streams.
///
/// Raw writes draw from the top half of the shard only: the KV store's
/// B-Tree nodes grow from the region base, and a raw write landing in a
/// live index node could forge a cyclic child pointer (a hang, not a
/// typed error). Clobbered *heap* blocks in the top half surface as
/// typed `Corrupt` errors, which both drivers must report identically.
fn seeded_blob(frames: usize) -> (Vec<u8>, u64) {
    let shard_bytes = {
        let cfg = ServeConfig::small(1);
        envy_core::EnvyStore::new(cfg.store).unwrap().size()
    };
    let mut rng = Rng::seed_from(0xD1FF_9);
    let mut blob = Vec::new();
    let mut admitted = 0u64;
    for i in 0..frames as u64 {
        if rng.chance(0.05) {
            // Unknown opcode: syntactically a frame, semantically
            // garbage. Answered with a typed error under id 0; not
            // admitted, so it never counts as a request.
            let garbage = vec![0xee_u8; 8 + rng.below(16) as usize];
            blob.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
            blob.extend_from_slice(&garbage);
            continue;
        }
        let addr = shard_bytes / 2 + rng.below(shard_bytes / 2 - 600);
        let key = rng.below(64);
        let req = match rng.below(7) {
            0 => Request::Write {
                addr,
                bytes: vec![(i % 251) as u8; 1 + rng.below(500) as usize],
            },
            1 => Request::Read {
                addr,
                len: 1 + rng.below(500) as u32,
            },
            2 => Request::Ping { shard: 0 },
            3 => Request::KvPut {
                shard: 0,
                key,
                txn: 0,
                value: vec![(i % 251) as u8; 1 + rng.below(200) as usize],
            },
            4 => Request::KvGet { shard: 0, key },
            5 => Request::KvDelete {
                shard: 0,
                key,
                txn: 0,
            },
            _ => Request::KvScan {
                shard: 0,
                start: key,
                limit: 1 + rng.below(16) as u32,
            },
        };
        let frame = proto::encode_request(&WireRequest {
            id: i,
            deadline_us: 0,
            body: WireBody::Req(req),
        });
        blob.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        blob.extend_from_slice(&frame);
        admitted += 1;
    }
    (blob, admitted)
}

/// Run the blob against a fresh 1-shard server under `driver`; return
/// the raw response bytes and the summary's request count.
fn run_driver(driver: NetDriver, blob: &[u8], frames: usize) -> (Vec<u8>, u64) {
    let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let server = serve_with(
        listener,
        store,
        NetConfig {
            driver,
            idle_timeout: None,
        },
    )
    .unwrap();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(blob).unwrap();
    let mut bytes = Vec::new();
    for _ in 0..frames {
        let payload = proto::read_frame(&mut raw)
            .expect("read response frame")
            .expect("response before eof");
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    drop(raw);
    let summary = server.shutdown();
    (bytes, summary.requests)
}

#[test]
fn drivers_produce_identical_wire_bytes_and_counts() {
    const FRAMES: usize = 200;
    let (blob, admitted) = seeded_blob(FRAMES);
    let (epoll_bytes, epoll_reqs) = run_driver(NetDriver::Epoll, &blob, FRAMES);
    let (poll_bytes, poll_reqs) = run_driver(NetDriver::Poll, &blob, FRAMES);
    let (thread_bytes, thread_reqs) = run_driver(NetDriver::Threads, &blob, FRAMES);

    assert_eq!(epoll_reqs, admitted, "epoll driver request count");
    assert_eq!(poll_reqs, admitted, "poll driver request count");
    assert_eq!(thread_reqs, admitted, "threads driver request count");
    assert!(!epoll_bytes.is_empty());
    assert_eq!(
        epoll_bytes, thread_bytes,
        "epoll and threads drivers must answer byte-identically"
    );
    assert_eq!(
        epoll_bytes, poll_bytes,
        "epoll and poll backends must answer byte-identically"
    );
}

/// A malformed KV frame — a valid `KV_PUT` opcode whose payload is
/// truncated mid-field — must be answered with a typed error under
/// id 0, and the connection must survive: a well-formed KV request
/// pipelined right behind it still gets its real answer.
fn malformed_kv_frame_errors_id0_and_survives(driver: NetDriver) {
    let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let server = serve_with(
        listener,
        store,
        NetConfig {
            driver,
            idle_timeout: None,
        },
    )
    .unwrap();
    let mut raw = TcpStream::connect(server.addr()).unwrap();

    let full = proto::encode_request(&WireRequest {
        id: 7,
        deadline_us: 0,
        body: WireBody::Req(Request::KvPut {
            shard: 0,
            key: 42,
            txn: 0,
            value: vec![0xAB; 16],
        }),
    });
    // `KV_PUT`'s value is "rest of frame", so a short value is still a
    // valid put; cut into the fixed fields (the `key`/`txn` words) to
    // make the frame undecodable.
    let truncated = &full[..20];
    let mut blob = Vec::new();
    blob.extend_from_slice(&(truncated.len() as u32).to_le_bytes());
    blob.extend_from_slice(truncated);
    let follow = proto::encode_request(&WireRequest {
        id: 8,
        deadline_us: 0,
        body: WireBody::Req(Request::KvGet { shard: 0, key: 42 }),
    });
    blob.extend_from_slice(&(follow.len() as u32).to_le_bytes());
    blob.extend_from_slice(&follow);
    raw.write_all(&blob).unwrap();

    let first = proto::read_frame(&mut raw).unwrap().expect("error frame");
    let first = proto::decode_response(&first).unwrap();
    assert_eq!(first.id, 0, "malformed frames are answered under id 0");
    assert!(
        matches!(first.outcome, envy_server::proto::WireOutcome::Err(_)),
        "malformed KV frame must surface a typed error, got {:?} ({driver:?})",
        first.outcome,
    );
    let second = proto::read_frame(&mut raw).unwrap().expect("reply frame");
    let second = proto::decode_response(&second).unwrap();
    assert_eq!(second.id, 8, "the connection must survive the bad frame");
    assert!(
        matches!(
            second.outcome,
            envy_server::proto::WireOutcome::Reply(envy_server::Reply::KvValue(None))
        ),
        "the truncated put must not have executed, got {:?} ({driver:?})",
        second.outcome,
    );
    drop(raw);
    server.shutdown();
}

#[test]
fn malformed_kv_frame_survives_under_epoll() {
    malformed_kv_frame_errors_id0_and_survives(NetDriver::Epoll);
}

#[test]
fn malformed_kv_frame_survives_under_poll_backend() {
    malformed_kv_frame_errors_id0_and_survives(NetDriver::Poll);
}

#[test]
fn malformed_kv_frame_survives_under_threads() {
    malformed_kv_frame_errors_id0_and_survives(NetDriver::Threads);
}

/// A half-closed socket — the client shuts down only its **write**
/// side and keeps reading — must still get its open transactions
/// aborted (the EOF runs the same disconnect cleanup as a full close),
/// releasing the shard's transaction slot within the idle timeout.
fn half_close_aborts_open_txn(driver: NetDriver) {
    let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let server = serve_with(
        listener,
        store,
        NetConfig {
            driver,
            idle_timeout: Some(Duration::from_millis(300)),
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    let mut client = Client::connect_tcp(&addr).unwrap();
    client.write(64, b"base").unwrap();
    let txn = client.txn_begin(0).unwrap();
    client.txn_write(64, b"gone", txn).unwrap();
    // Half-close: no more requests will come, but the read side stays
    // open — a client that crashed between encode and close behaves
    // exactly like this.
    client.shutdown_write().unwrap();

    let mut fresh = Client::connect_tcp(&addr).unwrap();
    let opened = Instant::now();
    loop {
        match fresh.txn_begin(0) {
            Ok(t) => {
                // The orphan was aborted: pre-transaction bytes, slot free.
                assert_eq!(fresh.read(64, 4).unwrap(), b"base");
                fresh.txn_abort(0, t).unwrap();
                break;
            }
            Err(envy_server::ClientError::Serve(ServeError::TxnBusy)) => {
                assert!(
                    opened.elapsed() < Duration::from_secs(5),
                    "half-closed connection's transaction never aborted ({driver:?})"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("txn_begin: {e}"),
        }
    }
    // After the cleanup the server closes its end, so the half-closed
    // client's read side sees EOF rather than hanging forever.
    match client.recv() {
        Err(envy_server::ClientError::Disconnected) => {}
        other => panic!("expected server-side close, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn half_closed_socket_aborts_txn_under_epoll() {
    half_close_aborts_open_txn(NetDriver::Epoll);
}

#[test]
fn half_closed_socket_aborts_txn_under_poll_backend() {
    half_close_aborts_open_txn(NetDriver::Poll);
}

#[test]
fn half_closed_socket_aborts_txn_under_threads() {
    half_close_aborts_open_txn(NetDriver::Threads);
}

/// A connection that goes fully silent (no EOF at all) is reaped by
/// the idle timeout and its transaction aborted — the teardown path
/// that EOF-based cleanup alone can never catch.
fn silent_connection_reaped_by_idle_timeout(driver: NetDriver) {
    let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let server = serve_with(
        listener,
        store,
        NetConfig {
            driver,
            idle_timeout: Some(Duration::from_millis(200)),
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    let mut client = Client::connect_tcp(&addr).unwrap();
    let _txn = client.txn_begin(0).unwrap();
    // No shutdown, no EOF: the socket just goes quiet, still open.

    let mut fresh = Client::connect_tcp(&addr).unwrap();
    let opened = Instant::now();
    loop {
        // The fresh connection keeps talking, so only the silent one
        // can hit the idle timeout.
        match fresh.txn_begin(0) {
            Ok(t) => {
                fresh.txn_abort(0, t).unwrap();
                break;
            }
            Err(envy_server::ClientError::Serve(ServeError::TxnBusy)) => {
                assert!(
                    opened.elapsed() < Duration::from_secs(5),
                    "silent connection's transaction never aborted ({driver:?})"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("txn_begin: {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn silent_connection_reaped_under_epoll() {
    silent_connection_reaped_by_idle_timeout(NetDriver::Epoll);
}

#[test]
fn silent_connection_reaped_under_threads() {
    silent_connection_reaped_by_idle_timeout(NetDriver::Threads);
}
