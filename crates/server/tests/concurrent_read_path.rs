//! The concurrent in-shard read path: inline and reader-thread
//! execution, the 1-reader digest anchor against the monolithic store,
//! and the `Busy` backpressure retry contract.

use envy_core::EnvyStore;
use envy_server::{
    run_inproc, run_monolithic, LoadSpec, ReadPath, Reply, Request, ServeConfig, ShardedStore,
};
use std::time::Duration;

/// FNV-1a over a byte slice: the stable, dependency-free digest used by
/// the behavior-neutrality goldens.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn contents_digest(store: &mut EnvyStore) -> u64 {
    let mut buf = vec![0u8; store.size() as usize];
    store.read(0, &mut buf).unwrap();
    fnv1a(&buf)
}

#[test]
fn inline_reads_complete_off_the_writer() {
    let store =
        ShardedStore::launch(ServeConfig::small(2).with_read_path(ReadPath::Inline)).unwrap();
    let spec = LoadSpec::closed(2, 32).read_mostly(0.95);
    let report = run_inproc(&store.handle(), &spec);
    let outcome = store.shutdown();
    assert_eq!(report.completed_txns, 64);
    assert_eq!(report.errors, 0);
    assert!(outcome.total_reads_offloaded() > 0, "reads must offload");
    // Every access completed exactly once: writer completions plus
    // offloaded reads account for all of them.
    assert_eq!(
        report.completed_ops,
        outcome.total_served() + outcome.total_reads_offloaded()
    );
}

#[test]
fn reader_threads_serve_reads() {
    let store =
        ShardedStore::launch(ServeConfig::small(1).with_read_path(ReadPath::Readers(2))).unwrap();
    let h = store.handle();
    h.call(Request::Write {
        addr: 128,
        bytes: b"offloaded".to_vec(),
    })
    .unwrap();
    // `call` is synchronous, so the write is published before the read
    // is submitted — read-your-writes holds for a sequential client.
    match h.call(Request::Read { addr: 128, len: 9 }).unwrap() {
        Reply::Data(d) => assert_eq!(d, b"offloaded"),
        other => panic!("unexpected {other:?}"),
    }
    let outcome = store.shutdown();
    assert_eq!(outcome.total_reads_offloaded(), 1);
}

/// The digest anchor: a 1-shard front end with one reader thread runs
/// the read-heavy mix; its final contents must be byte-identical to the
/// monolithic single-threaded store replaying the same spec. Writes all
/// funnel through the single writer in submission order, so offloading
/// reads must not perturb a single byte.
#[test]
fn one_reader_shard_matches_monolithic_digest() {
    let config = ServeConfig::small(1).with_read_path(ReadPath::Readers(1));
    let mut baseline = EnvyStore::new(config.store.clone()).unwrap();
    baseline.prefill().unwrap();
    let mut mono = baseline.fork();

    let front = ShardedStore::launch_from(vec![baseline.fork()], &config);
    let spec = LoadSpec::closed(1, 200)
        .with_seed(0xD16E57)
        .read_mostly(0.95);
    let report = run_inproc(&front.handle(), &spec);
    let mut outcome = front.shutdown();

    let mono_report = run_monolithic(&mut mono, &spec);
    assert_eq!(report.completed_txns, mono_report.completed_txns);
    assert_eq!(report.errors, 0);
    assert!(outcome.total_reads_offloaded() > 0, "mix is 95% reads");

    let served = &mut outcome.shards[0].store;
    assert_eq!(
        contents_digest(served),
        contents_digest(&mut mono),
        "offloaded reads must not perturb store contents"
    );
    // Writes took the identical timed path on both sides.
    assert_eq!(
        served.stats().host_writes.get(),
        mono.stats().host_writes.get()
    );
}

/// The inline path is held to the same digest anchor.
#[test]
fn inline_shard_matches_monolithic_digest() {
    let config = ServeConfig::small(1).with_read_path(ReadPath::Inline);
    let mut baseline = EnvyStore::new(config.store.clone()).unwrap();
    baseline.prefill().unwrap();
    let mut mono = baseline.fork();
    let front = ShardedStore::launch_from(vec![baseline.fork()], &config);
    let spec = LoadSpec::closed(1, 200).with_seed(0x1D1E).read_mostly(0.95);
    run_inproc(&front.handle(), &spec);
    let mut outcome = front.shutdown();
    run_monolithic(&mut mono, &spec);
    assert_eq!(
        contents_digest(&mut outcome.shards[0].store),
        contents_digest(&mut mono)
    );
}

/// Backpressure: a tiny queue with a slow worker must reject with
/// `Busy { retry_after }`, and the loadgen's hinted-backoff retry loop
/// must still complete every transaction (no request lost, no error).
#[test]
fn busy_retries_complete_all_transactions() {
    let config = ServeConfig::small(1)
        .with_queue_capacity(2)
        .with_service_delay(Duration::from_micros(200));
    let store = ShardedStore::launch(config).unwrap();
    let spec = LoadSpec::closed(4, 10);
    let report = run_inproc(&store.handle(), &spec);
    let outcome = store.shutdown();
    assert!(
        report.busy_retries > 0,
        "a 2-deep queue under 4 pipelined clients must reject"
    );
    assert_eq!(report.completed_txns, 40, "retries must finish every txn");
    assert_eq!(report.errors, 0);
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.completed_ops, outcome.total_served());
}

/// Reader queues are bounded too: flooding one reader with pipelined
/// reads from many clients triggers the same typed Busy, and retries
/// complete everything.
#[test]
fn reader_queue_busy_is_retried() {
    let config = ServeConfig::small(1)
        .with_queue_capacity(2)
        .with_read_path(ReadPath::Readers(1));
    let store = ShardedStore::launch(config).unwrap();
    let spec = LoadSpec::closed(4, 20).read_mostly(1.0);
    let report = run_inproc(&store.handle(), &spec);
    let outcome = store.shutdown();
    assert_eq!(report.completed_txns, 80);
    assert_eq!(report.errors, 0);
    assert_eq!(report.completed_ops, outcome.total_reads_offloaded());
}
