//! Backpressure and robustness: admission control must be explicit,
//! shutdown must drain, deadlines must surface as typed timeouts.

use envy_server::{Request, ServeConfig, ServeError, ShardedStore, SubmitError};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A single slow shard with a tiny queue: saturating it must return
/// typed `Busy` rejections immediately — never block, never deadlock —
/// and every admitted request must still complete.
#[test]
fn full_queue_returns_busy_and_never_deadlocks() {
    let config = ServeConfig::small(1)
        .with_queue_capacity(2)
        .with_batch_max(1)
        .with_service_delay(Duration::from_millis(4));
    let store = ShardedStore::launch(config).unwrap();
    let handle = store.handle();
    let (tx, rx) = mpsc::channel();

    let started = Instant::now();
    let mut admitted = 0u64;
    let mut busy = 0u64;
    for i in 0..64u64 {
        match handle.submit(
            Request::Write {
                addr: (i % 128) * 16,
                bytes: vec![i as u8; 8],
            },
            None,
            &tx,
        ) {
            Ok(_) => admitted += 1,
            Err(SubmitError::Busy(b)) => {
                busy += 1;
                assert_eq!(b.shard, 0);
                assert!(b.retry_after > Duration::ZERO);
            }
            Err(SubmitError::Rejected(e)) => panic!("unexpected rejection: {e}"),
        }
    }
    // The submit loop itself must not have blocked on the full queue.
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "submission blocked: {:?}",
        started.elapsed()
    );
    assert!(busy > 0, "a 2-deep queue at 4 ms/op must reject");
    assert!(admitted > 0);

    // Every admitted request completes; none are lost or duplicated.
    for _ in 0..admitted {
        rx.recv_timeout(Duration::from_secs(10))
            .expect("admitted request must complete")
            .result
            .expect("write must succeed");
    }
    let outcome = store.shutdown();
    assert_eq!(outcome.total_served(), admitted);
}

/// Requests admitted before a graceful shutdown complete during it.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let config = ServeConfig::small(2)
        .with_queue_capacity(64)
        .with_service_delay(Duration::from_millis(2));
    let store = ShardedStore::launch(config).unwrap();
    let handle = store.handle();
    let (tx, rx) = mpsc::channel();
    let mut admitted = 0u64;
    for i in 0..32u64 {
        let addr = (i % 2) * handle.plan().shard_bytes() + i * 32;
        if handle
            .submit(
                Request::Write {
                    addr,
                    bytes: vec![0xab; 8],
                },
                None,
                &tx,
            )
            .is_ok()
        {
            admitted += 1;
        }
    }
    // Shut down immediately: most of the queue is still pending.
    let outcome = store.shutdown();
    assert_eq!(outcome.total_served(), admitted);
    let mut completed = 0u64;
    while let Ok(resp) = rx.try_recv() {
        resp.result.expect("drained write must succeed");
        completed += 1;
    }
    assert_eq!(completed, admitted, "every admitted request completes");

    // And the handle now rejects new work with a typed error.
    let err = handle
        .submit(
            Request::Write {
                addr: 0,
                bytes: vec![1; 4],
            },
            None,
            &tx,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        SubmitError::Rejected(ServeError::ShuttingDown)
    ));
}

/// Deadline-expired requests complete with the typed timeout error
/// instead of executing.
#[test]
fn expired_deadlines_surface_typed_timeouts() {
    let config = ServeConfig::small(1)
        .with_queue_capacity(64)
        .with_batch_max(64)
        .with_service_delay(Duration::from_millis(10));
    let store = ShardedStore::launch(config).unwrap();
    let handle = store.handle();
    let (tx, rx) = mpsc::channel();
    let deadline = Some(Duration::from_millis(1));
    let mut admitted = 0u64;
    for i in 0..8u64 {
        if handle
            .submit(
                Request::Write {
                    addr: i * 64,
                    bytes: vec![7; 8],
                },
                deadline,
                &tx,
            )
            .is_ok()
        {
            admitted += 1;
        }
    }
    let mut ok = 0u64;
    let mut timed_out = 0u64;
    for _ in 0..admitted {
        let resp = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("completion must arrive");
        match resp.result {
            Ok(_) => ok += 1,
            Err(ServeError::DeadlineExceeded) => timed_out += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // At 10 ms per op and a 1 ms deadline, everything behind the first
    // dispatch must expire.
    assert!(timed_out > 0, "later requests must expire ({ok} ok)");
    let outcome = store.shutdown();
    assert_eq!(outcome.total_served(), admitted);
    assert_eq!(outcome.total_timed_out(), timed_out);
    // Expired writes never touched the store: host writes counted only
    // for the ones that executed.
    let stats = outcome.aggregate_stats();
    assert_eq!(stats.host_writes.get(), ok * 2, "8-byte write = 2 words");
}

/// Saturation with concurrent producers resolves: a blocked producer
/// retrying through `Busy` makes progress and the system quiesces.
#[test]
fn concurrent_producers_make_progress_under_backpressure() {
    let config = ServeConfig::small(1)
        .with_queue_capacity(4)
        .with_batch_max(2)
        .with_service_delay(Duration::from_micros(200));
    let store = ShardedStore::launch(config).unwrap();
    let handle = store.handle();
    let per_thread = 40u64;
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let h = handle.clone();
            scope.spawn(move || {
                let (tx, rx) = mpsc::channel();
                for i in 0..per_thread {
                    loop {
                        match h.submit(
                            Request::Write {
                                addr: (t * per_thread + i) * 8 % 4096,
                                bytes: vec![t as u8; 8],
                            },
                            None,
                            &tx,
                        ) {
                            Ok(_) => break,
                            Err(SubmitError::Busy(b)) => std::thread::sleep(b.retry_after),
                            Err(SubmitError::Rejected(e)) => panic!("rejected: {e}"),
                        }
                    }
                }
                for _ in 0..per_thread {
                    rx.recv_timeout(Duration::from_secs(30))
                        .expect("completion must arrive")
                        .result
                        .expect("write must succeed");
                }
            });
        }
    });
    let outcome = store.shutdown();
    assert_eq!(outcome.total_served(), 4 * per_thread);
}
