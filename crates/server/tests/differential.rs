//! Differential correctness: the sharded front end must behave exactly
//! like one monolithic `EnvyStore` per shard slice.
//!
//! A single submitter pushes a seeded random request mix through a
//! `ShardedStore` (N = 1, 2, 8). Because shard queues are FIFO and a
//! worker executes its queue in admission order on the shard's own
//! simulated clock, replaying each shard's request subsequence against
//! a monolithic store forked from the same baseline must produce
//! byte-identical contents, an identical simulated clock, and identical
//! controller statistics — the determinism anchor of §6's
//! multiple-controller organization.

use envy_core::EnvyStore;
use envy_server::shard::apply;
use envy_server::{Reply, Request, ServeConfig, ShardedStore, SubmitError};
use envy_sim::Rng;
use std::sync::mpsc;

/// Generate the seeded global request mix: per-request shard uniform,
/// local address/length within the slice, ~45 % writes, occasional
/// flushes.
fn workload(seed: u64, shards: u32, shard_bytes: u64, count: usize) -> Vec<Request> {
    let mut rng = Rng::seed_from(seed);
    let mut reqs = Vec::with_capacity(count);
    for i in 0..count {
        let shard = rng.below(shards as u64);
        let base = shard * shard_bytes;
        if i % 64 == 63 {
            reqs.push(Request::Flush {
                shard: shard as u32,
            });
            continue;
        }
        let len = 1 + rng.below(24);
        let addr = base + rng.below(shard_bytes - len);
        if rng.chance(0.45) {
            let fill = rng.below(256) as u8;
            reqs.push(Request::Write {
                addr,
                bytes: vec![fill; len as usize],
            });
        } else {
            reqs.push(Request::Read {
                addr,
                len: len as u32,
            });
        }
    }
    reqs
}

/// Run one N-shard differential round; returns the number of reads
/// whose pipelined completions were checked against the model.
fn run_round(shards: u32, seed: u64) -> u64 {
    let config = ServeConfig::small(shards);

    // Baseline → N served forks + N replay forks, all byte-identical.
    let mut baseline = EnvyStore::new(config.store.clone()).unwrap();
    baseline.prefill().unwrap();
    let served_stores: Vec<EnvyStore> = (0..shards).map(|_| baseline.fork()).collect();
    let mut replay_stores: Vec<EnvyStore> = (0..shards).map(|_| baseline.fork()).collect();

    let store = ShardedStore::launch_from(served_stores, &config);
    let plan = *store.plan();
    let shard_bytes = plan.shard_bytes();
    let reqs = workload(seed, shards, shard_bytes, 2_000);

    // A byte model of the global space, updated in submission order —
    // valid per shard because shard queues are FIFO and the submitter
    // is single-threaded. Seeded from a scratch fork so the replay
    // stores' statistics stay untouched (untimed reads count too).
    let total = plan.total_bytes() as usize;
    let mut model = vec![0u8; total];
    {
        let mut scratch = baseline.fork();
        let mut slice = vec![0u8; shard_bytes as usize];
        scratch.read(0, &mut slice).unwrap();
        for i in 0..shards as usize {
            let base = i * shard_bytes as usize;
            model[base..base + shard_bytes as usize].copy_from_slice(&slice);
        }
    }

    let handle = store.handle();
    let (tx, rx) = mpsc::channel();
    let mut expected = std::collections::HashMap::new();
    let mut checked_reads = 0u64;
    for req in &reqs {
        // Keep the model in submission order; reads snapshot it below.
        if let Request::Write { addr, bytes } = req {
            let a = *addr as usize;
            model[a..a + bytes.len()].copy_from_slice(bytes);
        }
        let id = loop {
            match handle.submit(req.clone(), None, &tx) {
                Ok(id) => break id,
                Err(SubmitError::Busy(b)) => std::thread::sleep(b.retry_after),
                Err(SubmitError::Rejected(e)) => panic!("rejected: {e}"),
            }
        };
        if let Request::Read { addr, len } = req {
            let a = *addr as usize;
            expected.insert(id, model[a..a + *len as usize].to_vec());
        }
    }

    // Drain all completions; every read must match its snapshot.
    for _ in 0..reqs.len() {
        let resp = rx.recv().expect("completion must arrive");
        if let Some(want) = expected.remove(&resp.id) {
            match resp.result.expect("read must succeed") {
                Reply::Data(got) => {
                    assert_eq!(got, want, "shard {} read diverged", resp.shard);
                    checked_reads += 1;
                }
                other => panic!("read completed as {other:?}"),
            }
        } else {
            resp.result.expect("write/flush must succeed");
        }
    }
    assert!(expected.is_empty());
    let outcome = store.shutdown();
    assert_eq!(outcome.total_served(), reqs.len() as u64);

    // Replay each shard's subsequence against its monolithic twin.
    for (i, replay) in replay_stores.iter_mut().enumerate() {
        let base = i as u64 * shard_bytes;
        for req in &reqs {
            let local = match req {
                Request::Read { addr, len } => {
                    if *addr / shard_bytes != i as u64 {
                        continue;
                    }
                    Request::Read {
                        addr: addr - base,
                        len: *len,
                    }
                }
                Request::Write { addr, bytes } => {
                    if *addr / shard_bytes != i as u64 {
                        continue;
                    }
                    Request::Write {
                        addr: addr - base,
                        bytes: bytes.clone(),
                    }
                }
                Request::TxnWrite { addr, bytes, txn } => {
                    if *addr / shard_bytes != i as u64 {
                        continue;
                    }
                    Request::TxnWrite {
                        addr: addr - base,
                        bytes: bytes.clone(),
                        txn: *txn,
                    }
                }
                Request::Flush { shard }
                | Request::Ping { shard }
                | Request::TxnBegin { shard }
                | Request::TxnCommit { shard, .. }
                | Request::TxnAbort { shard, .. }
                | Request::KvGet { shard, .. }
                | Request::KvPut { shard, .. }
                | Request::KvDelete { shard, .. }
                | Request::KvScan { shard, .. } => {
                    if *shard != i as u32 {
                        continue;
                    }
                    req.clone()
                }
            };
            apply(replay, &local).expect("replay op must succeed");
        }
        let served = &outcome.shards[i].store;
        // Same simulated clock, same statistics (down to latency
        // histograms), same bytes.
        assert_eq!(
            served.now(),
            replay.now(),
            "shard {i} simulated clock diverged (N={shards})"
        );
        assert_eq!(
            served.stats(),
            replay.stats(),
            "shard {i} stats diverged (N={shards})"
        );
    }

    // Byte-identical read-back: served shards vs monolithic replays vs
    // the submission-order model.
    let mut outcome = outcome;
    for i in 0..shards as usize {
        let base = i * shard_bytes as usize;
        let mut got = vec![0u8; shard_bytes as usize];
        let mut want = vec![0u8; shard_bytes as usize];
        outcome.shards[i].store.read(0, &mut got).unwrap();
        replay_stores[i].read(0, &mut want).unwrap();
        assert_eq!(got, want, "shard {i} contents diverged (N={shards})");
        assert_eq!(
            got,
            model[base..base + shard_bytes as usize],
            "shard {i} contents diverged from the model (N={shards})"
        );
    }
    checked_reads
}

#[test]
fn one_shard_matches_monolithic() {
    assert!(run_round(1, 11) > 100);
}

#[test]
fn two_shards_match_monolithic_slices() {
    assert!(run_round(2, 22) > 100);
}

#[test]
fn eight_shards_match_monolithic_slices() {
    assert!(run_round(8, 88) > 100);
}
