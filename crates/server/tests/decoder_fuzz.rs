//! Fuzz-style seeded tests for the incremental frame decoder: any
//! split of a byte stream — 1-byte drip or random chunks — must yield
//! exactly the frames the blocking reader yields, truncation must
//! never fabricate a frame, and malformed input must surface typed
//! errors, never panics.

use envy_server::proto::{self, FrameDecoder, FrameTooLarge, MAX_FRAME};
use envy_sim::rng::Rng;
use std::io;

/// Everything the blocking reader extracts from a stream: the complete
/// frames and how it ended (`None` = clean EOF at a boundary).
fn blocking_decode(stream: &[u8]) -> (Vec<Vec<u8>>, Option<io::ErrorKind>) {
    let mut cur = io::Cursor::new(stream);
    let mut frames = Vec::new();
    loop {
        match proto::read_frame(&mut cur) {
            Ok(Some(p)) => frames.push(p),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e.kind())),
        }
    }
}

/// Feed the stream to the incremental decoder in the given chunk
/// sizes; returns the frames plus whether it ended mid-frame.
fn incremental_decode(
    stream: &[u8],
    mut chunk_of: impl FnMut() -> usize,
) -> Result<(Vec<Vec<u8>>, bool), FrameTooLarge> {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut off = 0;
    while off < stream.len() {
        let n = chunk_of().clamp(1, stream.len() - off);
        dec.push(&stream[off..off + n]);
        off += n;
        while let Some(frame) = dec.next_frame()? {
            frames.push(frame.to_vec());
        }
    }
    // An empty stream never entered the loop; poll once for symmetry.
    while let Some(frame) = dec.next_frame()? {
        frames.push(frame.to_vec());
    }
    Ok((frames, dec.mid_frame()))
}

/// A seeded stream of valid frames (sizes spanning empty to multi-chunk),
/// optionally truncated mid-frame.
fn seeded_stream(rng: &mut Rng) -> Vec<u8> {
    let mut stream = Vec::new();
    let frames = 1 + rng.below(24);
    for _ in 0..frames {
        // Bias small, but include payloads bigger than one read chunk.
        let len = match rng.below(10) {
            0 => 0,
            1..=6 => rng.below(600) as usize,
            7 | 8 => rng.below(5_000) as usize,
            _ => 40_000 + rng.below(60_000) as usize,
        };
        let mut payload = vec![0u8; len];
        for b in payload.iter_mut() {
            *b = rng.below(256) as u8;
        }
        proto::write_frame(&mut stream, &payload).unwrap();
    }
    if rng.chance(0.5) {
        // Truncate somewhere strictly inside the final frame's bytes.
        let cut = 1 + rng.below(stream.len() as u64 - 1) as usize;
        stream.truncate(cut);
    }
    stream
}

#[test]
fn random_splits_match_blocking_reader_across_seeds() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from(0xF_0221 + seed);
        let stream = seeded_stream(&mut rng);
        let (want_frames, want_end) = blocking_decode(&stream);

        let mut chunk_rng = rng.fork();
        let (got_frames, mid) = incremental_decode(&stream, || 1 + chunk_rng.below(4096) as usize)
            .expect("valid streams never overflow MAX_FRAME");

        assert_eq!(got_frames, want_frames, "seed {seed}: frames diverged");
        match want_end {
            // Clean boundary EOF: the decoder must be empty too.
            None => assert!(!mid, "seed {seed}: decoder stuck mid-frame"),
            // Torn stream: the blocking reader reports UnexpectedEof;
            // the decoder simply ends mid-frame with no extra frames.
            Some(kind) => {
                assert_eq!(kind, io::ErrorKind::UnexpectedEof, "seed {seed}");
                assert!(mid, "seed {seed}: truncated stream must end mid-frame");
            }
        }
    }
}

#[test]
fn one_byte_drip_matches_blocking_reader() {
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from(0x1B17E + seed);
        let stream = seeded_stream(&mut rng);
        let (want_frames, want_end) = blocking_decode(&stream);
        let (got_frames, mid) =
            incremental_decode(&stream, || 1).expect("valid streams never overflow MAX_FRAME");
        assert_eq!(got_frames, want_frames, "seed {seed}: frames diverged");
        assert_eq!(mid, want_end.is_some(), "seed {seed}: end state diverged");
    }
}

#[test]
fn oversized_announcement_is_a_typed_error_not_a_panic() {
    let announced = (MAX_FRAME + 1) as u32;
    let mut stream = announced.to_le_bytes().to_vec();
    stream.extend_from_slice(&[0xab; 64]);

    // Blocking reader: InvalidData.
    let (frames, end) = blocking_decode(&stream);
    assert!(frames.is_empty());
    assert_eq!(end, Some(io::ErrorKind::InvalidData));

    // Incremental decoder: typed FrameTooLarge carrying the announced
    // length, byte-split-independent, and stable on re-poll.
    for chunk in [1usize, 3, 64] {
        let mut dec = FrameDecoder::new();
        let mut off = 0;
        let mut err = None;
        while off < stream.len() {
            let n = chunk.min(stream.len() - off);
            dec.push(&stream[off..off + n]);
            off += n;
            match dec.next_frame() {
                Ok(Some(_)) => panic!("oversized frame must never decode"),
                Ok(None) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            err,
            Some(FrameTooLarge {
                announced: announced as usize
            }),
            "chunk size {chunk}"
        );
        // The error is sticky — the stream cannot resynchronize.
        assert!(dec.next_frame().is_err());
    }
}

#[test]
fn valid_frames_before_an_oversized_one_still_decode() {
    let mut stream = Vec::new();
    proto::write_frame(&mut stream, b"ok-1").unwrap();
    proto::write_frame(&mut stream, &[9u8; 1000]).unwrap();
    stream.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.extend_from_slice(b"junk");

    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut err = None;
    for b in &stream {
        dec.push(std::slice::from_ref(b));
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => frames.push(f.to_vec()),
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        if err.is_some() {
            break;
        }
    }
    assert_eq!(frames.len(), 2);
    assert_eq!(frames[0], b"ok-1");
    assert_eq!(frames[1], vec![9u8; 1000]);
    assert_eq!(
        err,
        Some(FrameTooLarge {
            announced: u32::MAX as usize
        })
    );
}
