//! Open- and closed-loop multi-client load generation.
//!
//! Each client thread drives a skewed TPC-A-style transaction mix
//! (reusing [`envy_workload`]'s analytic driver) against either the
//! in-process [`ShardHandle`] or a socket [`Client`]. Transactions pick
//! a shard uniformly and run the full three-index search +
//! read-modify-write access list of one TPC-A transaction against that
//! shard's slice; account skew follows the `hot_weight` /
//! `hot_fraction` rule (a `hot_weight` fraction of transactions land in
//! the first `hot_fraction` of accounts).
//!
//! * **Closed loop** — each client keeps one transaction in flight:
//!   accesses pipeline within the transaction, the client awaits all
//!   completions, records the latency, and starts the next. Throughput
//!   is completion-limited.
//! * **Open loop** — transaction *starts* are paced to an offered rate,
//!   and latency is measured from the **scheduled** start, so queueing
//!   delay from a saturated server counts against it (coordinated-
//!   omission correction). A client still bounds itself to one
//!   transaction's accesses outstanding.
//!
//! [`Busy`](crate::shard::Busy) rejections are retried after the hinted
//! backoff and counted in [`LoadReport::busy_retries`] — backpressure is
//! visible in the report, never silently absorbed.

use crate::net::Client;
use crate::proto::WireOutcome;
use crate::shard::{
    apply, Reply, Request, Response, ServeError, ShardHandle, ShardPlan, SubmitError,
};
use envy_core::EnvyStore;
use envy_sim::rng::Rng;
use envy_sim::stats::Histogram;
use envy_sim::time::Ns;
use envy_workload::tpca::{AnalyticTpca, TpcaScale, TraceAccess, Transaction};
use envy_workload::ycsb::{YcsbConfig, YcsbOp, YcsbStream};
use std::collections::HashMap;
use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How transaction starts are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One transaction in flight per client; next starts on completion.
    Closed,
    /// Transaction starts paced to an aggregate offered rate
    /// (transactions per second across all clients).
    Open {
        /// Offered aggregate rate, transactions per second.
        rate_tps: u64,
    },
}

/// A load-generation run description.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client threads (or connections).
    pub clients: u32,
    /// Transactions per client; 0 means "until `duration` elapses".
    pub txns_per_client: u64,
    /// Wall-clock stop condition (checked between transactions).
    pub duration: Option<Duration>,
    /// Open or closed loop.
    pub mode: LoadMode,
    /// Base seed; each client derives an independent stream.
    pub seed: u64,
    /// Fraction of the account range that is "hot".
    pub hot_fraction: f64,
    /// Probability a transaction draws its account from the hot range.
    pub hot_weight: f64,
    /// Per-request deadline passed to the server, if any.
    pub deadline: Option<Duration>,
    /// `Some(p)` switches every client to the read-heavy record mix:
    /// skew-drawn 8-byte record accesses where each access is a read
    /// with probability `p` and a write otherwise (e.g. `0.95` for the
    /// 95/5 serving mix). `None` keeps the TPC-A transaction shape.
    pub read_fraction: Option<f64>,
    /// `Some(a)` runs every transaction **atomically**: the access list
    /// is bracketed by `TxnBegin` / `TxnCommit` on its shard, writes go
    /// through `TxnWrite`, each transaction appends a history record,
    /// and a seeded `a` fraction of transactions deliberately `TxnAbort`
    /// instead of committing (exercising rollback under load). `None`
    /// keeps the non-atomic per-access shape.
    pub abort_fraction: Option<f64>,
    /// `Some(config)` switches every client to a YCSB key-value mix
    /// over the `envy-kv` wire operations instead of the TPC-A address
    /// mixes. Keys route to shards by `key % shards`; each "transaction"
    /// is one YCSB operation. Combines with
    /// [`atomic`](LoadSpec::atomic): every operation is then bracketed
    /// by `TxnBegin`/`TxnCommit`, updates run as read-modify-write
    /// inside the transaction, and a seeded fraction roll back.
    pub ycsb: Option<YcsbConfig>,
}

impl LoadSpec {
    /// A closed-loop spec with the default 10 %-hot / 90 %-weight skew.
    pub fn closed(clients: u32, txns_per_client: u64) -> LoadSpec {
        LoadSpec {
            clients: clients.max(1),
            txns_per_client,
            duration: None,
            mode: LoadMode::Closed,
            seed: 0x5eed,
            hot_fraction: 0.1,
            hot_weight: 0.9,
            deadline: None,
            read_fraction: None,
            abort_fraction: None,
            ycsb: None,
        }
    }

    /// Switch to open-loop pacing at an aggregate rate (builder-style).
    #[must_use]
    pub fn open(mut self, rate_tps: u64) -> LoadSpec {
        self.mode = LoadMode::Open {
            rate_tps: rate_tps.max(1),
        };
        self
    }

    /// Set the wall-clock stop condition (builder-style).
    #[must_use]
    pub fn with_duration(mut self, d: Duration) -> LoadSpec {
        self.duration = Some(d);
        self
    }

    /// Set the base seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> LoadSpec {
        self.seed = seed;
        self
    }

    /// Set the per-request deadline (builder-style).
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> LoadSpec {
        self.deadline = Some(d);
        self
    }

    /// Switch to the read-heavy record mix with the given read
    /// probability (builder-style); `0.95` is the 95/5 serving mix.
    #[must_use]
    pub fn read_mostly(mut self, read_fraction: f64) -> LoadSpec {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction is a probability"
        );
        self.read_fraction = Some(read_fraction);
        self
    }

    /// Run every transaction atomically (builder-style): bracketed by
    /// `TxnBegin`/`TxnCommit`, with a seeded `abort_fraction` of
    /// transactions rolling back via `TxnAbort` instead.
    #[must_use]
    pub fn atomic(mut self, abort_fraction: f64) -> LoadSpec {
        assert!(
            (0.0..=1.0).contains(&abort_fraction),
            "abort fraction is a probability"
        );
        self.abort_fraction = Some(abort_fraction);
        self
    }

    /// Switch every client to a YCSB key-value mix (builder-style).
    /// Takes precedence over [`read_mostly`](LoadSpec::read_mostly).
    #[must_use]
    pub fn with_ycsb(mut self, config: YcsbConfig) -> LoadSpec {
        self.ycsb = Some(config);
        self
    }
}

/// The deterministic YCSB load phase: one standalone `KvPut` per
/// initial record, keys `0..records` in order, routed by
/// `key % shards`. Both sides of the determinism anchor run exactly
/// this sequence — the monolithic reference through
/// [`apply`](crate::shard::apply), the served run over its connection —
/// so the stores enter the measured phase byte-identical.
pub fn ycsb_load_requests(config: &YcsbConfig, shards: u32) -> Vec<Request> {
    let shards = shards.max(1) as u64;
    (0..config.records)
        .map(|key| Request::KvPut {
            shard: (key % shards) as u32,
            key,
            txn: 0,
            value: config.value_for(key, 0),
        })
        .collect()
}

/// What a load run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Transactions fully completed (committed, in atomic mode).
    pub completed_txns: u64,
    /// Transactions rolled back via `TxnAbort` (deliberate seeded
    /// aborts, plus any forced by in-transaction timeouts or errors).
    pub aborted_txns: u64,
    /// `TxnBegin` attempts refused because every transaction slot on
    /// the shard was occupied, retried after a jittered backoff.
    pub txn_conflicts: u64,
    /// Transactional writes refused with `TXN_CONFLICT` (the page was
    /// in another open transaction's write set). Each refusal forces
    /// the whole transaction to abort and retry.
    pub txn_conflict_refusals: u64,
    /// Whole transactions aborted and re-run after a conflict refusal —
    /// reported separately from the refusals themselves (one retry can
    /// follow several refused writes in the same attempt).
    pub txn_conflict_retries: u64,
    /// Individual accesses completed successfully.
    pub completed_ops: u64,
    /// `Busy` rejections retried.
    pub busy_retries: u64,
    /// Accesses that expired past their deadline.
    pub timeouts: u64,
    /// Accesses that failed with any other typed error.
    pub errors: u64,
    /// Wall-clock duration of the run (max across clients).
    pub wall: Duration,
    /// Wall-clock transaction latency (closed: from first submit; open:
    /// from scheduled start).
    pub txn_latency: Histogram,
}

impl LoadReport {
    /// Fold another client's report into this one (latencies merge,
    /// counters add, wall takes the max).
    pub fn merge(&mut self, other: &LoadReport) {
        self.completed_txns += other.completed_txns;
        self.aborted_txns += other.aborted_txns;
        self.txn_conflicts += other.txn_conflicts;
        self.txn_conflict_refusals += other.txn_conflict_refusals;
        self.txn_conflict_retries += other.txn_conflict_retries;
        self.completed_ops += other.completed_ops;
        self.busy_retries += other.busy_retries;
        self.timeouts += other.timeouts;
        self.errors += other.errors;
        self.wall = self.wall.max(other.wall);
        self.txn_latency.merge(&other.txn_latency);
    }

    /// Completed transactions per wall-clock second.
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed_txns as f64 / secs
        }
    }
}

/// The transaction shape a stream generates: full TPC-A when the
/// minimum database layout fits the shard slice, otherwise a synthetic
/// miniature with the same read-modify-write access pattern.
enum Mix {
    /// Three index searches + three record RMWs per transaction.
    Tpca(Box<AnalyticTpca>, TpcaScale),
    /// Three (read, write) record pairs at skew-drawn slots — the TPC-A
    /// account/teller/branch shape without the index B-Trees, for slices
    /// too small to hold the minimum database.
    Synthetic {
        /// 8-byte record slots available in the slice.
        slots: u64,
    },
    /// Skew-drawn 8-byte record accesses with a fixed read probability
    /// per access ([`LoadSpec::read_fraction`]) — the read-heavy
    /// serving mix the concurrent read path is built for.
    ReadMostly {
        /// 8-byte record slots available in the slice.
        slots: u64,
        /// Probability that an access is a read.
        read_fraction: f64,
    },
    /// One YCSB key-value operation per "transaction" over the KV wire
    /// ops ([`LoadSpec::ycsb`]). Keys route to shards by `key % shards`,
    /// so each shard's KV index holds the keys congruent to its id and
    /// a workload-E scan walks one shard's slice of the key space.
    Ycsb(Box<YcsbStream>),
}

/// Per-client deterministic transaction stream over one shard plan.
struct TxnStream {
    rng: Rng,
    mix: Mix,
    plan: ShardPlan,
    hot_fraction: f64,
    hot_weight: f64,
    /// `Some(a)`: bracket every transaction with begin/commit and
    /// deliberately abort an `a` fraction.
    abort_fraction: Option<f64>,
    /// Sequence number into this client's history ring (atomic mode).
    history_seq: u64,
}

const SYNTH_RECORD: u64 = 8;
/// One TPC-A history record: (account, teller, branch, delta) packed.
const HISTORY_RECORD: u64 = 16;
/// Placeholder transaction id in generated `TxnWrite`/`TxnCommit`/
/// `TxnAbort` requests; the driver patches in the id the shard's
/// `TxnStarted` reply assigned before submitting them.
pub const TXN_PATCH: u64 = u64::MAX;

impl TxnStream {
    fn new(spec: &LoadSpec, plan: ShardPlan, client: u32) -> TxnStream {
        let seed = spec
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(client as u64 + 1));
        let scale = TpcaScale::fit_bytes(plan.shard_bytes());
        let tpca = AnalyticTpca::new(scale);
        let fits = tpca.layout().total_bytes <= plan.shard_bytes();
        let mix = if let Some(ycsb) = &spec.ycsb {
            Mix::Ycsb(Box::new(YcsbStream::new(ycsb, client, spec.clients.max(1))))
        } else if let Some(read_fraction) = spec.read_fraction {
            Mix::ReadMostly {
                slots: (plan.shard_bytes() / SYNTH_RECORD).max(1),
                read_fraction,
            }
        } else if fits {
            Mix::Tpca(Box::new(tpca), scale)
        } else {
            Mix::Synthetic {
                slots: (plan.shard_bytes() / SYNTH_RECORD).max(1),
            }
        };
        TxnStream {
            rng: Rng::seed_from(seed),
            mix,
            plan,
            hot_fraction: spec.hot_fraction,
            hot_weight: spec.hot_weight,
            abort_fraction: spec.abort_fraction,
            history_seq: 0,
        }
    }

    /// Draw a key in `0..keys` with the hot-range skew.
    fn skewed_key(&mut self, keys: u64) -> u64 {
        if self.hot_weight > 0.0 && self.rng.chance(self.hot_weight) {
            let hot = ((keys as f64 * self.hot_fraction) as u64).max(1);
            self.rng.below(hot)
        } else {
            self.rng.below(keys)
        }
    }

    /// Draw the next transaction's global-address request list.
    fn next_requests(&mut self, out: &mut Vec<Request>) {
        out.clear();
        if let Mix::Ycsb(stream) = &mut self.mix {
            let shards = self.plan.shards() as u64;
            let op = stream.next_op(&mut self.rng);
            let atomic = self.abort_fraction.is_some();
            let shard = match op {
                YcsbOp::Read { key } => {
                    let shard = (key % shards) as u32;
                    out.push(Request::KvGet { shard, key });
                    shard
                }
                YcsbOp::Update { key } => {
                    let shard = (key % shards) as u32;
                    let value = stream.config().value_for(key, stream.version());
                    if atomic {
                        // Read-modify-write inside the transaction: the
                        // read observes the committed value, the write
                        // lands in the transaction's write set so the
                        // seeded abort below takes it back.
                        out.push(Request::KvGet { shard, key });
                        out.push(Request::KvPut {
                            shard,
                            key,
                            txn: TXN_PATCH,
                            value,
                        });
                    } else {
                        out.push(Request::KvPut {
                            shard,
                            key,
                            txn: 0,
                            value,
                        });
                    }
                    shard
                }
                YcsbOp::Insert { key } => {
                    let shard = (key % shards) as u32;
                    let value = stream.config().value_for(key, stream.version());
                    out.push(Request::KvPut {
                        shard,
                        key,
                        txn: if atomic { TXN_PATCH } else { 0 },
                        value,
                    });
                    shard
                }
                YcsbOp::Scan { start, limit } => {
                    let shard = (start % shards) as u32;
                    out.push(Request::KvScan {
                        shard,
                        start,
                        limit,
                    });
                    shard
                }
            };
            if let Some(abort) = self.abort_fraction {
                // Atomic mode brackets every operation — reads and
                // scans included, so the driver's begin/commit protocol
                // holds uniformly across the mix.
                out.insert(0, Request::TxnBegin { shard });
                out.push(if self.rng.chance(abort) {
                    Request::TxnAbort {
                        shard,
                        txn: TXN_PATCH,
                    }
                } else {
                    Request::TxnCommit {
                        shard,
                        txn: TXN_PATCH,
                    }
                });
            }
            return;
        }
        let shard = self.rng.below(self.plan.shards() as u64) as u32;
        let base = self.plan.base_of(shard);
        match &self.mix {
            Mix::Tpca(_, scale) => {
                let account = self.skewed_key(scale.accounts());
                let teller = account / 10_000;
                let branch = teller / 10;
                let delta = (self.rng.below(2_000) as i64) - 1_000;
                let txn = Transaction {
                    account,
                    teller,
                    branch,
                    delta,
                };
                let fill = account as u8;
                let Mix::Tpca(tpca, _) = &self.mix else {
                    unreachable!()
                };
                tpca.for_each_access(&txn, |a: TraceAccess| {
                    out.push(if a.write {
                        Request::Write {
                            addr: base + a.addr,
                            bytes: vec![fill; a.len],
                        }
                    } else {
                        Request::Read {
                            addr: base + a.addr,
                            len: a.len as u32,
                        }
                    });
                });
            }
            Mix::ReadMostly {
                slots,
                read_fraction,
            } => {
                let (slots, rf) = (*slots, *read_fraction);
                // Six accesses per transaction, matching the TPC-A
                // access count so throughput stays comparable per txn.
                for _ in 0..6 {
                    let key = self.skewed_key(slots);
                    let addr = base + key * SYNTH_RECORD;
                    out.push(if self.rng.chance(rf) {
                        Request::Read {
                            addr,
                            len: SYNTH_RECORD as u32,
                        }
                    } else {
                        Request::Write {
                            addr,
                            bytes: vec![key as u8; SYNTH_RECORD as usize],
                        }
                    });
                }
            }
            Mix::Ycsb(_) => unreachable!("ycsb streams return above"),
            Mix::Synthetic { slots } => {
                let slots = *slots;
                let account = self.skewed_key(slots);
                // Tellers and branches concentrate 10× and 100× like the
                // TPC-A hierarchy, folded back into the slot range.
                for key in [account, (account / 10) % slots, (account / 100) % slots] {
                    let addr = base + key * SYNTH_RECORD;
                    out.push(Request::Read {
                        addr,
                        len: SYNTH_RECORD as u32,
                    });
                    out.push(Request::Write {
                        addr,
                        bytes: vec![key as u8; SYNTH_RECORD as usize],
                    });
                }
            }
        }
        if let Some(abort) = self.abort_fraction {
            // Atomic mode: the same access list, run as one transaction.
            // Writes go through TxnWrite so a crash (or the seeded
            // abort below) takes all of them back together.
            for req in out.iter_mut() {
                if let Request::Write { addr, bytes } = req {
                    *req = Request::TxnWrite {
                        addr: *addr,
                        bytes: std::mem::take(bytes),
                        txn: TXN_PATCH,
                    };
                }
            }
            // The TPC-A history append: one record per transaction,
            // ring-addressed into the slack past the database layout
            // (address math only — the layout itself is untouched, so
            // non-atomic runs are byte-for-byte unaffected).
            if let Mix::Tpca(tpca, _) = &self.mix {
                let used = tpca.layout().total_bytes;
                let slots = (self.plan.shard_bytes() - used) / HISTORY_RECORD;
                if slots > 0 {
                    let slot = self.history_seq % slots;
                    self.history_seq += 1;
                    out.push(Request::TxnWrite {
                        addr: base + used + slot * HISTORY_RECORD,
                        bytes: vec![(self.history_seq % 251) as u8; HISTORY_RECORD as usize],
                        txn: TXN_PATCH,
                    });
                }
            }
            out.insert(0, Request::TxnBegin { shard });
            out.push(if self.rng.chance(abort) {
                Request::TxnAbort {
                    shard,
                    txn: TXN_PATCH,
                }
            } else {
                Request::TxnCommit {
                    shard,
                    txn: TXN_PATCH,
                }
            });
        }
    }
}

/// Substitute the shard-assigned transaction id for [`TXN_PATCH`] in a
/// generated request.
fn patch_txn(req: &Request, txn: u64) -> Request {
    match req.clone() {
        Request::TxnWrite { addr, bytes, .. } => Request::TxnWrite { addr, bytes, txn },
        Request::TxnCommit { shard, .. } => Request::TxnCommit { shard, txn },
        Request::TxnAbort { shard, .. } => Request::TxnAbort { shard, txn },
        Request::KvPut {
            shard,
            key,
            value,
            txn: TXN_PATCH,
        } => Request::KvPut {
            shard,
            key,
            txn,
            value,
        },
        Request::KvDelete {
            shard,
            key,
            txn: TXN_PATCH,
        } => Request::KvDelete { shard, key, txn },
        other => other,
    }
}

/// Shared pacing/termination bookkeeping for one client thread.
struct ClientLoop {
    report: LoadReport,
    end: Option<Instant>,
    txns_target: u64,
    interval: Option<Duration>,
    next_start: Instant,
    started: Instant,
}

impl ClientLoop {
    fn new(spec: &LoadSpec, started: Instant) -> ClientLoop {
        let interval = match spec.mode {
            LoadMode::Closed => None,
            LoadMode::Open { rate_tps } => Some(Duration::from_secs_f64(
                spec.clients as f64 / rate_tps as f64,
            )),
        };
        ClientLoop {
            report: LoadReport::default(),
            end: spec.duration.map(|d| started + d),
            txns_target: spec.txns_per_client,
            interval,
            next_start: started,
            started,
        }
    }

    /// Wait for the next scheduled start (open loop) and decide whether
    /// to run another transaction. Returns the latency origin.
    fn next_txn(&mut self) -> Option<Instant> {
        // Aborted transactions count toward the per-client target —
        // "run N transactions" bounds work, not commit luck.
        let done = self.report.completed_txns + self.report.aborted_txns;
        if self.txns_target > 0 && done >= self.txns_target {
            return None;
        }
        if let Some(end) = self.end {
            if Instant::now() >= end {
                return None;
            }
        }
        match self.interval {
            None => Some(Instant::now()),
            Some(gap) => {
                let scheduled = self.next_start;
                self.next_start += gap;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                Some(scheduled)
            }
        }
    }

    fn finish(mut self) -> LoadReport {
        self.report.wall = self.started.elapsed();
        self.report
    }
}

/// Drive a load run against an in-process [`ShardHandle`].
///
/// Spawns `spec.clients` threads, each with its own deterministic
/// transaction stream, and merges their reports.
pub fn run_inproc(handle: &ShardHandle, spec: &LoadSpec) -> LoadReport {
    let started = Instant::now();
    let mut total = LoadReport::default();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..spec.clients)
            .map(|c| {
                let handle = handle.clone();
                scope.spawn(move || inproc_client(&handle, spec, c, started))
            })
            .collect();
        for w in workers {
            total.merge(&w.join().expect("load client panicked"));
        }
    });
    total.wall = started.elapsed();
    total
}

/// Base delay before retrying a refused transactional request (a
/// `TxnBegin` that found every slot taken, or a transaction aborted on
/// a write-set conflict).
const TXN_RETRY_BASE: Duration = Duration::from_micros(200);

/// Transactions a client retries after conflict-forced aborts before
/// counting the transaction as an error and moving on.
const TXN_RETRY_CAP: u32 = 32;

/// Seeded, jittered backoff for transactional retries. Conflicts are
/// abort decisions: the losers must not retry in lockstep, or they
/// collide again on the very same pages. Each pause draws uniformly
/// from [0.5×, 1.5×) of an exponentially growing base (capped), and a
/// success resets the growth. When the server supplied a `retry_after`
/// hint it floors the base — the hint is honored, never undercut.
struct Backoff {
    rng: Rng,
    streak: u32,
}

impl Backoff {
    fn new(seed: u64) -> Backoff {
        Backoff {
            rng: Rng::seed_from(seed),
            streak: 0,
        }
    }

    /// Sleep one jittered delay and grow the streak.
    fn pause(&mut self, hint: Option<Duration>) {
        let mut base = TXN_RETRY_BASE.max(hint.unwrap_or(Duration::ZERO));
        base = base.saturating_mul(1u32 << self.streak.min(4));
        let nanos = (base.as_nanos() as u64).max(1);
        let jittered = nanos / 2 + self.rng.below(nanos);
        self.streak = self.streak.saturating_add(1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    /// A retried operation succeeded: fall back to the base delay.
    fn reset(&mut self) {
        self.streak = 0;
    }
}

fn inproc_client(
    handle: &ShardHandle,
    spec: &LoadSpec,
    client: u32,
    started: Instant,
) -> LoadReport {
    let mut stream = TxnStream::new(spec, *handle.plan(), client);
    let mut lp = ClientLoop::new(spec, started);
    let (tx, rx) = mpsc::channel::<Response>();
    let mut reqs = Vec::new();
    let mut backoff = Backoff::new(spec.seed ^ 0xB0FF ^ u64::from(client));
    let atomic = spec.abort_fraction.is_some();
    while let Some(t0) = lp.next_txn() {
        stream.next_requests(&mut reqs);
        if atomic {
            if inproc_txn(handle, spec, &reqs, &tx, &rx, &mut lp.report, &mut backoff).is_none() {
                return lp.finish();
            }
            lp.report
                .txn_latency
                .record(Ns::from_nanos(t0.elapsed().as_nanos() as u64));
            continue;
        }
        let mut outstanding = 0usize;
        for req in &reqs {
            loop {
                match handle.submit(req.clone(), spec.deadline, &tx) {
                    Ok(_) => {
                        outstanding += 1;
                        break;
                    }
                    Err(SubmitError::Busy(b)) => {
                        lp.report.busy_retries += 1;
                        std::thread::sleep(b.retry_after);
                    }
                    Err(SubmitError::Rejected(ServeError::ShuttingDown)) => {
                        drain(&rx, outstanding, &mut lp.report);
                        return lp.finish();
                    }
                    Err(SubmitError::Rejected(_)) => {
                        lp.report.errors += 1;
                        break;
                    }
                }
            }
        }
        drain(&rx, outstanding, &mut lp.report);
        lp.report.completed_txns += 1;
        lp.report
            .txn_latency
            .record(Ns::from_nanos(t0.elapsed().as_nanos() as u64));
    }
    lp.finish()
}

/// Submit one request (no pipelining) and await its completion.
/// `None` means the server is shutting down or the completion channel
/// died — the client should stop.
fn call_inproc(
    handle: &ShardHandle,
    req: &Request,
    deadline: Option<Duration>,
    tx: &mpsc::Sender<Response>,
    rx: &mpsc::Receiver<Response>,
    report: &mut LoadReport,
) -> Option<Result<Reply, ServeError>> {
    loop {
        match handle.submit(req.clone(), deadline, tx) {
            Ok(_) => break,
            Err(SubmitError::Busy(b)) => {
                report.busy_retries += 1;
                std::thread::sleep(b.retry_after);
            }
            Err(SubmitError::Rejected(ServeError::ShuttingDown)) => return None,
            Err(SubmitError::Rejected(e)) => return Some(Err(e)),
        }
    }
    rx.recv().ok().map(|resp| resp.result)
}

/// How one attempt of an atomic transaction ended.
enum TxnAttempt {
    /// Committed, deliberately aborted, or failed on a non-conflict
    /// error — either way the transaction is finished.
    Resolved,
    /// A write hit another open transaction's write set: the attempt
    /// was aborted whole and should be retried after a backoff.
    Conflicted,
}

/// Run one atomic transaction against the in-process handle: begin
/// (retrying slot-full refusals with jittered backoff), pipeline the
/// body under the assigned id, then commit — or abort, when the stream
/// said so or any body access failed. A write-set conflict aborts the
/// attempt and retries the whole transaction, up to [`TXN_RETRY_CAP`]
/// times. Begin and the commit/abort run without the per-request
/// deadline: a transaction, once opened, must be resolved.
///
/// `None` means the server is shutting down.
fn inproc_txn(
    handle: &ShardHandle,
    spec: &LoadSpec,
    reqs: &[Request],
    tx: &mpsc::Sender<Response>,
    rx: &mpsc::Receiver<Response>,
    report: &mut LoadReport,
    backoff: &mut Backoff,
) -> Option<()> {
    for _ in 0..TXN_RETRY_CAP {
        match inproc_txn_once(handle, spec, reqs, tx, rx, report, backoff)? {
            TxnAttempt::Resolved => return Some(()),
            TxnAttempt::Conflicted => {
                report.txn_conflict_retries += 1;
                backoff.pause(None);
            }
        }
    }
    report.errors += 1;
    Some(())
}

fn inproc_txn_once(
    handle: &ShardHandle,
    spec: &LoadSpec,
    reqs: &[Request],
    tx: &mpsc::Sender<Response>,
    rx: &mpsc::Receiver<Response>,
    report: &mut LoadReport,
    backoff: &mut Backoff,
) -> Option<TxnAttempt> {
    let (begin, rest) = reqs.split_first().expect("atomic txn has a begin");
    let (tail, body) = rest.split_last().expect("atomic txn has a commit/abort");
    let txn = loop {
        match call_inproc(handle, begin, None, tx, rx, report)? {
            Ok(Reply::TxnStarted { txn }) => {
                report.completed_ops += 1;
                backoff.reset();
                break txn;
            }
            Ok(other) => unreachable!("begin answered {other:?}"),
            Err(ServeError::TxnBusy) => {
                report.txn_conflicts += 1;
                backoff.pause(None);
            }
            Err(_) => {
                report.errors += 1;
                return Some(TxnAttempt::Resolved);
            }
        }
    };
    let mut outstanding = 0usize;
    let mut clean = true;
    let mut conflicted = false;
    for req in body {
        let req = patch_txn(req, txn);
        loop {
            match handle.submit(req.clone(), spec.deadline, tx) {
                Ok(_) => {
                    outstanding += 1;
                    break;
                }
                Err(SubmitError::Busy(b)) => {
                    report.busy_retries += 1;
                    std::thread::sleep(b.retry_after);
                }
                Err(SubmitError::Rejected(ServeError::ShuttingDown)) => {
                    drain(rx, outstanding, report);
                    return None;
                }
                Err(SubmitError::Rejected(_)) => {
                    report.errors += 1;
                    clean = false;
                    break;
                }
            }
        }
    }
    for _ in 0..outstanding {
        match rx.recv() {
            Ok(resp) => match resp.result {
                Ok(_) => report.completed_ops += 1,
                Err(ServeError::DeadlineExceeded) => {
                    report.timeouts += 1;
                    clean = false;
                }
                Err(ServeError::TxnConflict) => {
                    report.txn_conflict_refusals += 1;
                    clean = false;
                    conflicted = true;
                }
                Err(_) => {
                    report.errors += 1;
                    clean = false;
                }
            },
            Err(_) => return None,
        }
    }
    let tail = if clean {
        patch_txn(tail, txn)
    } else {
        // A transaction with a failed access must not commit partially
        // acknowledged state; roll the whole thing back.
        let (Request::TxnCommit { shard, .. } | Request::TxnAbort { shard, .. }) = tail else {
            unreachable!("atomic txn tail is commit/abort")
        };
        Request::TxnAbort { shard: *shard, txn }
    };
    match call_inproc(handle, &tail, None, tx, rx, report)? {
        Ok(Reply::Committed { .. }) => {
            report.completed_txns += 1;
            report.completed_ops += 1;
        }
        Ok(Reply::Aborted { .. }) => {
            // A conflict-forced abort is bookkeeping for the retry, not
            // a resolved transaction; only deliberate (or error-forced)
            // aborts count.
            if !conflicted {
                report.aborted_txns += 1;
            }
            report.completed_ops += 1;
        }
        Ok(other) => unreachable!("commit/abort answered {other:?}"),
        Err(_) => report.errors += 1,
    }
    Some(if conflicted {
        TxnAttempt::Conflicted
    } else {
        TxnAttempt::Resolved
    })
}

fn drain(rx: &mpsc::Receiver<Response>, outstanding: usize, report: &mut LoadReport) {
    for _ in 0..outstanding {
        match rx.recv() {
            Ok(resp) => match resp.result {
                Ok(_) => report.completed_ops += 1,
                Err(ServeError::DeadlineExceeded) => report.timeouts += 1,
                Err(_) => report.errors += 1,
            },
            Err(_) => return,
        }
    }
}

/// Replay the workload a single in-process client would submit, applied
/// synchronously to a monolithic store — the single-controller
/// reference of the determinism anchor (a one-shard [`ShardedStore`]
/// run with the same spec must land on exactly this store's simulated
/// clock and controller statistics).
///
/// The transaction stream is regenerated from the spec's seed, not
/// recorded, so only a single-submitter order is reproducible: the spec
/// must use one client, a transaction count (not a duration), and no
/// deadline.
///
/// # Panics
///
/// If the spec uses more than one client, no transaction count, or a
/// deadline — none of those orders are reproducible synchronously.
///
/// [`ShardedStore`]: crate::shard::ShardedStore
pub fn run_monolithic(store: &mut EnvyStore, spec: &LoadSpec) -> LoadReport {
    assert_eq!(
        spec.clients, 1,
        "the monolithic reference is single-submitter"
    );
    assert!(
        spec.txns_per_client > 0,
        "the monolithic reference needs a transaction count, not a duration"
    );
    assert!(
        spec.deadline.is_none(),
        "deadline expiry depends on wall-clock timing and is not replayable"
    );
    let plan = ShardPlan::new(1, store.size());
    let mut stream = TxnStream::new(spec, plan, 0);
    let started = Instant::now();
    let mut report = LoadReport::default();
    let mut reqs = Vec::new();
    let atomic = spec.abort_fraction.is_some();
    for _ in 0..spec.txns_per_client {
        let t0 = Instant::now();
        stream.next_requests(&mut reqs);
        if atomic {
            // Same protocol order as a served client: begin, body under
            // the assigned id, commit/abort — so the one-shard served
            // run and this replay stay op-for-op identical.
            let (begin, rest) = reqs.split_first().expect("atomic txn has a begin");
            let (tail, body) = rest.split_last().expect("atomic txn has a commit/abort");
            let txn = match apply(store, begin) {
                Ok(Reply::TxnStarted { txn }) => txn,
                other => panic!("monolithic begin answered {other:?}"),
            };
            report.completed_ops += 1;
            for req in body {
                match apply(store, &patch_txn(req, txn)) {
                    Ok(_) => report.completed_ops += 1,
                    Err(_) => report.errors += 1,
                }
            }
            match apply(store, &patch_txn(tail, txn)) {
                Ok(Reply::Committed { .. }) => {
                    report.completed_txns += 1;
                    report.completed_ops += 1;
                }
                Ok(Reply::Aborted { .. }) => {
                    report.aborted_txns += 1;
                    report.completed_ops += 1;
                }
                other => panic!("monolithic commit/abort answered {other:?}"),
            }
        } else {
            for req in &reqs {
                match apply(store, req) {
                    Ok(_) => report.completed_ops += 1,
                    Err(_) => report.errors += 1,
                }
            }
            report.completed_txns += 1;
        }
        report
            .txn_latency
            .record(Ns::from_nanos(t0.elapsed().as_nanos() as u64));
    }
    report.wall = started.elapsed();
    report
}

/// Drive a load run over sockets: one [`Client`] connection per client
/// thread, built by `connect`. The caller supplies the server's
/// [`ShardPlan`] (shard count and slice size), which the wire protocol
/// does not carry.
///
/// # Errors
///
/// The first connection error; established clients that later fail stop
/// individually and their partial counts are merged.
pub fn run_socket<F>(connect: F, plan: ShardPlan, spec: &LoadSpec) -> io::Result<LoadReport>
where
    F: Fn() -> io::Result<Client> + Sync,
{
    let started = Instant::now();
    let mut clients = Vec::with_capacity(spec.clients as usize);
    for _ in 0..spec.clients {
        clients.push(connect()?);
    }
    let mut total = LoadReport::default();
    std::thread::scope(|scope| {
        let workers: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(c, client)| {
                scope.spawn(move || socket_client(client, spec, plan, c as u32, started))
            })
            .collect();
        for w in workers {
            total.merge(&w.join().expect("socket load client panicked"));
        }
    });
    total.wall = started.elapsed();
    Ok(total)
}

fn socket_client(
    mut client: Client,
    spec: &LoadSpec,
    plan: ShardPlan,
    idx: u32,
    started: Instant,
) -> LoadReport {
    // Cork the client: pipelined submits batch into one buffer that
    // the next recv() flushes, so an N-op transaction costs one write
    // syscall instead of N.
    let _ = client.set_corked(true);
    let mut stream = TxnStream::new(spec, plan, idx);
    let mut lp = ClientLoop::new(spec, started);
    let mut reqs = Vec::new();
    let mut pending: HashMap<u64, Request> = HashMap::new();
    let mut backoff = Backoff::new(spec.seed ^ 0xB0FF ^ u64::from(idx));
    let atomic = spec.abort_fraction.is_some();
    while let Some(t0) = lp.next_txn() {
        stream.next_requests(&mut reqs);
        if atomic {
            if socket_txn(&mut client, spec, &reqs, &mut lp.report, &mut backoff).is_none() {
                return lp.finish();
            }
            lp.report
                .txn_latency
                .record(Ns::from_nanos(t0.elapsed().as_nanos() as u64));
            continue;
        }
        pending.clear();
        for req in &reqs {
            match client.submit(req.clone(), spec.deadline) {
                Ok(id) => {
                    pending.insert(id, req.clone());
                }
                Err(_) => return lp.finish(),
            }
        }
        // Await the whole transaction; Busy rejections are resubmitted
        // under their original id after the hinted backoff.
        while !pending.is_empty() {
            let resp = match client.recv() {
                Ok(resp) => resp,
                Err(_) => return lp.finish(),
            };
            match resp.outcome {
                WireOutcome::Busy(b) => {
                    if let Some(req) = pending.get(&resp.id).cloned() {
                        lp.report.busy_retries += 1;
                        std::thread::sleep(b.retry_after);
                        if client.submit_with_id(resp.id, req, spec.deadline).is_err() {
                            return lp.finish();
                        }
                    }
                }
                WireOutcome::Reply(_) => {
                    pending.remove(&resp.id);
                    lp.report.completed_ops += 1;
                }
                WireOutcome::Err(ServeError::DeadlineExceeded) => {
                    pending.remove(&resp.id);
                    lp.report.timeouts += 1;
                }
                WireOutcome::Err(ServeError::ShuttingDown) => {
                    pending.remove(&resp.id);
                    return lp.finish();
                }
                WireOutcome::Err(_) => {
                    pending.remove(&resp.id);
                    lp.report.errors += 1;
                }
                WireOutcome::ShutdownAck => return lp.finish(),
            }
        }
        lp.report.completed_txns += 1;
        lp.report
            .txn_latency
            .record(Ns::from_nanos(t0.elapsed().as_nanos() as u64));
    }
    lp.finish()
}

/// Submit one request over the socket and await its completion,
/// resubmitting through `Busy` backpressure under the original id.
/// `None` means the connection or server is gone.
fn call_socket(
    client: &mut Client,
    req: &Request,
    deadline: Option<Duration>,
    report: &mut LoadReport,
) -> Option<Result<Reply, ServeError>> {
    let id = client.submit(req.clone(), deadline).ok()?;
    loop {
        let resp = client.recv().ok()?;
        debug_assert_eq!(resp.id, id, "atomic txns submit one op at a time");
        match resp.outcome {
            WireOutcome::Reply(reply) => return Some(Ok(reply)),
            WireOutcome::Err(e) => return Some(Err(e)),
            WireOutcome::Busy(b) => {
                report.busy_retries += 1;
                std::thread::sleep(b.retry_after);
                client.submit_with_id(id, req.clone(), deadline).ok()?;
            }
            WireOutcome::ShutdownAck => return None,
        }
    }
}

/// [`inproc_txn`]'s socket twin: begin (retrying slot-full refusals
/// with jittered backoff), pipeline the body under the assigned id,
/// commit — or abort on the seeded decision or any body failure.
/// Write-set conflicts abort the attempt and retry the transaction
/// whole, up to [`TXN_RETRY_CAP`] times. `None` means the connection or
/// server is gone.
fn socket_txn(
    client: &mut Client,
    spec: &LoadSpec,
    reqs: &[Request],
    report: &mut LoadReport,
    backoff: &mut Backoff,
) -> Option<()> {
    for _ in 0..TXN_RETRY_CAP {
        match socket_txn_once(client, spec, reqs, report, backoff)? {
            TxnAttempt::Resolved => return Some(()),
            TxnAttempt::Conflicted => {
                report.txn_conflict_retries += 1;
                backoff.pause(None);
            }
        }
    }
    report.errors += 1;
    Some(())
}

fn socket_txn_once(
    client: &mut Client,
    spec: &LoadSpec,
    reqs: &[Request],
    report: &mut LoadReport,
    backoff: &mut Backoff,
) -> Option<TxnAttempt> {
    let (begin, rest) = reqs.split_first().expect("atomic txn has a begin");
    let (tail, body) = rest.split_last().expect("atomic txn has a commit/abort");
    let txn = loop {
        match call_socket(client, begin, None, report)? {
            Ok(Reply::TxnStarted { txn }) => {
                report.completed_ops += 1;
                backoff.reset();
                break txn;
            }
            Ok(other) => unreachable!("begin answered {other:?}"),
            Err(ServeError::TxnBusy) => {
                report.txn_conflicts += 1;
                backoff.pause(None);
            }
            Err(_) => {
                report.errors += 1;
                return Some(TxnAttempt::Resolved);
            }
        }
    };
    // Pipeline the body; Busy rejections resubmit under their id.
    let mut pending: HashMap<u64, Request> = HashMap::new();
    for req in body {
        let req = patch_txn(req, txn);
        match client.submit(req.clone(), spec.deadline) {
            Ok(id) => {
                pending.insert(id, req);
            }
            Err(_) => return None,
        }
    }
    let mut clean = true;
    let mut conflicted = false;
    while !pending.is_empty() {
        let resp = client.recv().ok()?;
        match resp.outcome {
            WireOutcome::Busy(b) => {
                if let Some(req) = pending.get(&resp.id).cloned() {
                    report.busy_retries += 1;
                    std::thread::sleep(b.retry_after);
                    client.submit_with_id(resp.id, req, spec.deadline).ok()?;
                }
            }
            WireOutcome::Reply(_) => {
                pending.remove(&resp.id);
                report.completed_ops += 1;
            }
            WireOutcome::Err(ServeError::DeadlineExceeded) => {
                pending.remove(&resp.id);
                report.timeouts += 1;
                clean = false;
            }
            WireOutcome::Err(ServeError::ShuttingDown) => return None,
            WireOutcome::Err(ServeError::TxnConflict) => {
                pending.remove(&resp.id);
                report.txn_conflict_refusals += 1;
                clean = false;
                conflicted = true;
            }
            WireOutcome::Err(_) => {
                pending.remove(&resp.id);
                report.errors += 1;
                clean = false;
            }
            WireOutcome::ShutdownAck => return None,
        }
    }
    let tail = if clean {
        patch_txn(tail, txn)
    } else {
        let (Request::TxnCommit { shard, .. } | Request::TxnAbort { shard, .. }) = tail else {
            unreachable!("atomic txn tail is commit/abort")
        };
        Request::TxnAbort { shard: *shard, txn }
    };
    match call_socket(client, &tail, None, report)? {
        Ok(Reply::Committed { .. }) => {
            report.completed_txns += 1;
            report.completed_ops += 1;
        }
        Ok(Reply::Aborted { .. }) => {
            if !conflicted {
                report.aborted_txns += 1;
            }
            report.completed_ops += 1;
        }
        Ok(other) => unreachable!("commit/abort answered {other:?}"),
        Err(_) => report.errors += 1,
    }
    Some(if conflicted {
        TxnAttempt::Conflicted
    } else {
        TxnAttempt::Resolved
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ServeConfig, ShardedStore};

    #[test]
    fn txn_stream_is_deterministic_and_in_range() {
        let spec = LoadSpec::closed(2, 4);
        let plan = ShardPlan::new(4, 1 << 20);
        let mut a = TxnStream::new(&spec, plan, 1);
        let mut b = TxnStream::new(&spec, plan, 1);
        let mut other = TxnStream::new(&spec, plan, 2);
        let (mut ra, mut rb, mut rc) = (Vec::new(), Vec::new(), Vec::new());
        let mut differs = false;
        for _ in 0..32 {
            a.next_requests(&mut ra);
            b.next_requests(&mut rb);
            other.next_requests(&mut rc);
            assert_eq!(ra, rb, "same client stream must repeat exactly");
            differs |= ra != rc;
            for req in &ra {
                let (addr, len) = match req {
                    Request::Read { addr, len } => (*addr, *len as u64),
                    Request::Write { addr, bytes } => (*addr, bytes.len() as u64),
                    _ => unreachable!("tpca issues only reads and writes"),
                };
                plan.locate(addr, len).expect("access must route cleanly");
            }
        }
        assert!(differs, "distinct clients must get distinct streams");
    }

    #[test]
    fn closed_loop_inproc_completes_every_txn() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let spec = LoadSpec::closed(2, 8);
        let report = run_inproc(&store.handle(), &spec);
        let outcome = store.shutdown();
        assert_eq!(report.completed_txns, 16);
        assert_eq!(report.errors, 0);
        assert_eq!(report.timeouts, 0);
        assert!(report.completed_ops > 0);
        assert_eq!(report.completed_ops, outcome.total_served());
        assert_eq!(report.txn_latency.count(), 16);
        assert!(report.throughput_tps() > 0.0);
    }

    #[test]
    fn monolithic_reference_matches_single_client_run() {
        let config = ServeConfig::small(1);
        let mut baseline = EnvyStore::new(config.store.clone()).unwrap();
        baseline.prefill().unwrap();
        let mut mono = baseline.fork();
        let front = ShardedStore::launch_from(vec![baseline.fork()], &config);
        let spec = LoadSpec::closed(1, 12).with_seed(7);
        let report = run_inproc(&front.handle(), &spec);
        let outcome = front.shutdown();
        let mono_report = run_monolithic(&mut mono, &spec);
        assert_eq!(report.completed_txns, mono_report.completed_txns);
        assert_eq!(report.completed_ops, mono_report.completed_ops);
        assert_eq!(outcome.shards[0].store.now(), mono.now());
        assert_eq!(outcome.shards[0].store.stats(), mono.stats());
    }

    #[test]
    fn atomic_stream_brackets_every_txn() {
        let spec = LoadSpec::closed(1, 4).atomic(0.5).with_seed(3);
        let plan = ShardPlan::new(2, 1 << 20);
        let mut stream = TxnStream::new(&spec, plan, 0);
        let mut reqs = Vec::new();
        let (mut commits, mut aborts) = (0u32, 0u32);
        for _ in 0..64 {
            stream.next_requests(&mut reqs);
            let Some(Request::TxnBegin { shard }) = reqs.first().cloned() else {
                panic!("atomic txn must start with TxnBegin: {reqs:?}");
            };
            match reqs.last() {
                Some(Request::TxnCommit { shard: s, txn }) => {
                    assert_eq!((*s, *txn), (shard, TXN_PATCH));
                    commits += 1;
                }
                Some(Request::TxnAbort { shard: s, txn }) => {
                    assert_eq!((*s, *txn), (shard, TXN_PATCH));
                    aborts += 1;
                }
                other => panic!("atomic txn must end with commit/abort: {other:?}"),
            }
            // No plain writes remain, and every body access stays on
            // the begin's shard.
            for req in &reqs[1..reqs.len() - 1] {
                match req {
                    Request::Read { addr, len } => {
                        assert_eq!(plan.locate(*addr, *len as u64).unwrap().0, shard);
                    }
                    Request::TxnWrite { addr, bytes, txn } => {
                        assert_eq!(*txn, TXN_PATCH);
                        assert_eq!(plan.locate(*addr, bytes.len() as u64).unwrap().0, shard);
                    }
                    other => panic!("unexpected body request {other:?}"),
                }
            }
        }
        assert!(commits > 0 && aborts > 0, "0.5 must draw both outcomes");
    }

    #[test]
    fn atomic_closed_loop_commits_and_aborts() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let spec = LoadSpec::closed(2, 12).atomic(0.3).with_seed(17);
        let report = run_inproc(&store.handle(), &spec);
        let outcome = store.shutdown();
        assert_eq!(report.completed_txns + report.aborted_txns, 24);
        assert!(report.aborted_txns > 0, "0.3 abort draw over 24 txns");
        assert_eq!(report.errors, 0);
        assert_eq!(report.timeouts, 0);
        // Every access the loadgen counted was served — plus the
        // TxnBusy-answered begin attempts and TxnConflict-refused
        // writes, which the shard serves as typed errors — and no shard
        // is left with an open transaction.
        assert_eq!(
            report.completed_ops + report.txn_conflicts + report.txn_conflict_refusals,
            outcome.total_served()
        );
        for shard in &outcome.shards {
            assert!(shard.store.engine().open_txns().is_empty());
        }
        let commits: u64 = outcome
            .shards
            .iter()
            .map(|s| s.store.stats().txn_commits.get())
            .sum();
        let aborts: u64 = outcome
            .shards
            .iter()
            .map(|s| s.store.stats().txn_aborts.get())
            .sum();
        assert_eq!(commits, report.completed_txns);
        assert_eq!(aborts, report.aborted_txns);
    }

    #[test]
    fn atomic_monolithic_reference_matches_single_client_run() {
        let config = ServeConfig::small(1);
        let mut baseline = EnvyStore::new(config.store.clone()).unwrap();
        baseline.prefill().unwrap();
        let mut mono = baseline.fork();
        let front = ShardedStore::launch_from(vec![baseline.fork()], &config);
        let spec = LoadSpec::closed(1, 12).with_seed(7).atomic(0.25);
        let report = run_inproc(&front.handle(), &spec);
        let outcome = front.shutdown();
        let mono_report = run_monolithic(&mut mono, &spec);
        assert_eq!(report.completed_txns, mono_report.completed_txns);
        assert_eq!(report.aborted_txns, mono_report.aborted_txns);
        assert!(mono_report.aborted_txns > 0, "0.25 abort draw over 12 txns");
        assert_eq!(report.completed_ops, mono_report.completed_ops);
        // The served store and the synchronous replay agree on the
        // simulated clock and every statistic — commit journaling and
        // rollback included.
        assert_eq!(outcome.shards[0].store.now(), mono.now());
        assert_eq!(outcome.shards[0].store.stats(), mono.stats());
    }

    #[test]
    fn ycsb_stream_is_deterministic_and_kv_shaped() {
        use envy_workload::ycsb::YcsbMix;
        let config = YcsbConfig::standard(YcsbMix::A, 500);
        let spec = LoadSpec::closed(2, 4).with_seed(21).with_ycsb(config);
        let plan = ShardPlan::new(4, 1 << 20);
        let mut a = TxnStream::new(&spec, plan, 1);
        let mut b = TxnStream::new(&spec, plan, 1);
        let mut other = TxnStream::new(&spec, plan, 0);
        let (mut ra, mut rb, mut rc) = (Vec::new(), Vec::new(), Vec::new());
        let mut differs = false;
        let (mut gets, mut puts) = (0u32, 0u32);
        for _ in 0..64 {
            a.next_requests(&mut ra);
            b.next_requests(&mut rb);
            other.next_requests(&mut rc);
            assert_eq!(ra, rb, "same client stream must repeat exactly");
            differs |= ra != rc;
            for req in &ra {
                match req {
                    Request::KvGet { shard, key } => {
                        assert_eq!(*shard as u64, key % 4);
                        gets += 1;
                    }
                    Request::KvPut {
                        shard, key, txn, ..
                    } => {
                        assert_eq!(*shard as u64, key % 4);
                        assert_eq!(*txn, 0, "non-atomic puts are standalone");
                        puts += 1;
                    }
                    other => panic!("mix A issues only gets and puts: {other:?}"),
                }
            }
        }
        assert!(differs, "distinct clients must get distinct streams");
        assert!(gets > 0 && puts > 0, "mix A draws both reads and updates");
    }

    #[test]
    fn ycsb_atomic_stream_brackets_every_op() {
        use envy_workload::ycsb::YcsbMix;
        let config = YcsbConfig::standard(YcsbMix::A, 500);
        let spec = LoadSpec::closed(1, 4)
            .with_seed(5)
            .with_ycsb(config)
            .atomic(0.5);
        let plan = ShardPlan::new(2, 1 << 20);
        let mut stream = TxnStream::new(&spec, plan, 0);
        let mut reqs = Vec::new();
        let (mut commits, mut aborts, mut rmws) = (0u32, 0u32, 0u32);
        for _ in 0..64 {
            stream.next_requests(&mut reqs);
            let Some(Request::TxnBegin { shard }) = reqs.first().cloned() else {
                panic!("atomic ycsb op must start with TxnBegin: {reqs:?}");
            };
            match reqs.last() {
                Some(Request::TxnCommit { shard: s, txn }) => {
                    assert_eq!((*s, *txn), (shard, TXN_PATCH));
                    commits += 1;
                }
                Some(Request::TxnAbort { shard: s, txn }) => {
                    assert_eq!((*s, *txn), (shard, TXN_PATCH));
                    aborts += 1;
                }
                other => panic!("atomic ycsb op must end with commit/abort: {other:?}"),
            }
            let body = &reqs[1..reqs.len() - 1];
            for req in body {
                match req {
                    Request::KvGet { shard: s, .. } => assert_eq!(*s, shard),
                    Request::KvPut { shard: s, txn, .. } => {
                        assert_eq!((*s, *txn), (shard, TXN_PATCH));
                    }
                    other => panic!("unexpected ycsb body request {other:?}"),
                }
            }
            // Updates run as read-modify-write inside the transaction.
            if body.len() == 2 {
                assert!(matches!(body[0], Request::KvGet { .. }));
                assert!(matches!(body[1], Request::KvPut { .. }));
                rmws += 1;
            }
        }
        assert!(commits > 0 && aborts > 0, "0.5 must draw both outcomes");
        assert!(rmws > 0, "mix A must draw updates");
    }

    #[test]
    fn ycsb_closed_loop_serves_a_loaded_store() {
        use envy_workload::ycsb::YcsbMix;
        let config = YcsbConfig::standard(YcsbMix::B, 64);
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let handle = store.handle();
        for req in ycsb_load_requests(&config, 2) {
            handle.call(req).unwrap();
        }
        let spec = LoadSpec::closed(2, 16).with_seed(9).with_ycsb(config);
        let report = run_inproc(&handle, &spec);
        store.shutdown();
        assert_eq!(report.completed_txns, 32);
        assert_eq!(report.errors, 0);
        assert_eq!(report.timeouts, 0);
    }

    #[test]
    fn ycsb_monolithic_reference_matches_single_client_run() {
        use envy_workload::ycsb::YcsbMix;
        // Workload D inserts as well as reads, so this anchors gets,
        // puts, and index growth — plus the atomic bracket.
        let kv = YcsbConfig::standard(YcsbMix::D, 64);
        let config = ServeConfig::small(1);
        let mut baseline = EnvyStore::new(config.store.clone()).unwrap();
        baseline.prefill().unwrap();
        let mut mono = baseline.fork();
        let front = ShardedStore::launch_from(vec![baseline.fork()], &config);
        let handle = front.handle();
        let load = ycsb_load_requests(&kv, 1);
        for req in &load {
            handle.call(req.clone()).unwrap();
        }
        for req in &load {
            apply(&mut mono, req).unwrap();
        }
        let spec = LoadSpec::closed(1, 24)
            .with_seed(7)
            .with_ycsb(kv)
            .atomic(0.25);
        let report = run_inproc(&handle, &spec);
        let outcome = front.shutdown();
        let mono_report = run_monolithic(&mut mono, &spec);
        assert_eq!(report.completed_txns, mono_report.completed_txns);
        assert_eq!(report.aborted_txns, mono_report.aborted_txns);
        assert!(mono_report.aborted_txns > 0, "0.25 abort draw over 24 ops");
        assert_eq!(report.completed_ops, mono_report.completed_ops);
        assert_eq!(outcome.shards[0].store.now(), mono.now());
        assert_eq!(outcome.shards[0].store.stats(), mono.stats());
    }

    #[test]
    fn open_loop_paces_scheduled_starts() {
        let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
        // 1 client at 200 tps → 5 ms gap; 4 txns ≥ 15 ms of pacing.
        let spec = LoadSpec::closed(1, 4).open(200);
        let t0 = Instant::now();
        let report = run_inproc(&store.handle(), &spec);
        store.shutdown();
        assert_eq!(report.completed_txns, 4);
        assert!(
            t0.elapsed() >= Duration::from_millis(15),
            "open loop must pace starts, ran in {:?}",
            t0.elapsed()
        );
    }
}
