//! TCP and Unix-socket serving over the [`proto`](crate::proto) frames.
//!
//! Two interchangeable connection drivers sit behind one wire
//! contract, selected by [`NetConfig::driver`]:
//!
//! * [`NetDriver::Epoll`] (default) — a readiness-driven event loop
//!   ([`evloop`](crate::evloop)): one thread multiplexes every
//!   connection with nonblocking sockets, incremental frame decoding
//!   and vectored writes. Scales to tens of thousands of connections.
//! * [`NetDriver::Threads`] — the original thread-per-connection
//!   model: each accepted connection gets a reader thread (decodes
//!   frames, admits requests into the sharded store) and a writer
//!   thread (drains typed completions back onto the socket). Kept as
//!   the A/B reference; `tests/driver_diff.rs` proves both drivers
//!   produce identical wire bytes.
//!
//! Under either driver requests **pipeline** — a client may have any
//! number outstanding and completions may return out of order, matched
//! by id.
//!
//! Graceful shutdown (via [`ServerHandle::request_shutdown`] or the
//! wire `SHUTDOWN` opcode) stops accepting, stops reading, lets every
//! admitted request complete and flush to its client, joins the
//! connection threads, and only then drains the sharded store itself.
//! A connection that dies mid-pipeline only loses its own completions:
//! its writer keeps draining (discarding) so shard workers never block
//! on a dead client, and every other connection is untouched.
//!
//! # Transactions and disconnects
//!
//! A transaction opened over the wire is owned by the connection that
//! opened it. When a connection ends — clean EOF, socket error, or
//! server shutdown — any transaction it started and never resolved is
//! **aborted** on its shard, so a crashed client cannot pin shadow
//! pages (and the shard's single transaction slot) forever. The abort
//! happens after the writer drains, so a commit or abort that was
//! already admitted always wins over the disconnect cleanup.

use crate::proto::{self, ProtoError, WireBody, WireOutcome, WireRequest, WireResponse, MAX_FRAME};
use crate::shard::{
    Reply, Request, Response, ServeError, ServeOutcome, ShardHandle, ShardedStore, SubmitError,
};
use std::collections::HashSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a blocked reader waits before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Accept-loop poll interval.
const ACCEPT_INTERVAL: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------
// Streams and listeners
// ---------------------------------------------------------------------

/// A connected byte stream: TCP or Unix.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    pub(crate) fn as_raw(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound server socket: TCP or Unix.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener and the path it is bound to (unlinked
    /// when serving stops).
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn bind_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Bind a Unix-domain listener, replacing a stale socket file if one
    /// exists.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn bind_unix<P: AsRef<Path>>(path: P) -> io::Result<Listener> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        Ok(Listener::Unix(
            UnixListener::bind(path)?,
            path.to_path_buf(),
        ))
    }

    /// A printable address clients can connect to: `host:port` for TCP,
    /// the socket path for Unix.
    pub fn describe(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".into()),
            Listener::Unix(_, p) => p.display().to_string(),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            Listener::Unix(l, _) => Stream::Unix(l.accept()?.0),
        })
    }

    pub(crate) fn as_raw(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

// ---------------------------------------------------------------------
// Driver selection
// ---------------------------------------------------------------------

/// Which connection-handling driver [`serve_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetDriver {
    /// Readiness-driven event loop; epoll(7) on Linux, poll(2)
    /// elsewhere (a compile-time choice — this variant always picks
    /// the platform's best backend).
    #[default]
    Epoll,
    /// Readiness-driven event loop on the portable poll(2) backend,
    /// even where epoll is available. Useful for A/B-testing the
    /// fallback path.
    Poll,
    /// Thread-per-connection: a reader and a writer thread per
    /// accepted connection.
    Threads,
}

impl NetDriver {
    /// Parse a `--net-driver` flag value (`threads`, `epoll`, `poll`).
    pub fn parse(s: &str) -> Option<NetDriver> {
        match s {
            "epoll" => Some(NetDriver::Epoll),
            "poll" => Some(NetDriver::Poll),
            "threads" => Some(NetDriver::Threads),
            _ => None,
        }
    }

    /// The flag spelling of this driver.
    pub fn name(&self) -> &'static str {
        match self {
            NetDriver::Epoll => "epoll",
            NetDriver::Poll => "poll",
            NetDriver::Threads => "threads",
        }
    }
}

/// Serving configuration beyond the listener itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetConfig {
    /// Connection driver (default [`NetDriver::Epoll`]).
    pub driver: NetDriver,
    /// Close a connection whose read side has been silent this long
    /// (its open transactions are aborted exactly as on disconnect).
    /// `None` (the default) never times out.
    pub idle_timeout: Option<Duration>,
}

impl NetConfig {
    pub(crate) fn backend(&self) -> crate::evloop::Backend {
        match self.driver {
            #[cfg(target_os = "linux")]
            NetDriver::Epoll => crate::evloop::Backend::Epoll,
            #[cfg(not(target_os = "linux"))]
            NetDriver::Epoll => crate::evloop::Backend::Poll,
            NetDriver::Poll => crate::evloop::Backend::Poll,
            NetDriver::Threads => unreachable!("threads driver has no poller backend"),
        }
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// What a completed [`serve`] run reports.
#[derive(Debug)]
pub struct ServeSummary {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests admitted into the sharded store.
    pub requests: u64,
    /// The drained store's per-shard outcomes.
    pub outcome: ServeOutcome,
}

/// A running server; joinable back into a [`ServeSummary`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    join: JoinHandle<ServeSummary>,
}

impl ServerHandle {
    /// The address clients connect to ([`Listener::describe`]).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Ask the server to shut down gracefully (idempotent, non-blocking).
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the server to finish (after a shutdown request, a wire
    /// `SHUTDOWN`, or a fatal listener error).
    ///
    /// # Panics
    ///
    /// Panics if the accept thread panicked.
    pub fn wait(self) -> ServeSummary {
        self.join.join().expect("server accept thread panicked")
    }

    /// [`request_shutdown`](ServerHandle::request_shutdown) then
    /// [`wait`](ServerHandle::wait).
    pub fn shutdown(self) -> ServeSummary {
        self.request_shutdown();
        self.wait()
    }
}

/// Serve a sharded store on a listener with the default
/// [`NetConfig`] (epoll driver, no idle timeout). Returns immediately;
/// the returned handle joins the serving thread.
///
/// # Errors
///
/// Socket errors configuring the listener.
pub fn serve(listener: Listener, store: ShardedStore) -> io::Result<ServerHandle> {
    serve_with(listener, store, NetConfig::default())
}

/// [`serve`] with an explicit driver and idle-timeout configuration.
///
/// # Errors
///
/// Socket errors configuring the listener, or (for the event-loop
/// drivers) setting up the poller/waker.
pub fn serve_with(
    listener: Listener,
    store: ShardedStore,
    cfg: NetConfig,
) -> io::Result<ServerHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.describe();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = match cfg.driver {
        NetDriver::Threads => std::thread::Builder::new()
            .name("envy-serve-accept".into())
            .spawn(move || accept_loop(listener, store, flag, cfg.idle_timeout))
            .expect("spawn accept thread"),
        NetDriver::Epoll | NetDriver::Poll => {
            let evloop = crate::evloop::EventLoop::new(listener, store, cfg, flag)?;
            std::thread::Builder::new()
                .name("envy-serve-evloop".into())
                .spawn(move || evloop.run())
                .expect("spawn event-loop thread")
        }
    };
    Ok(ServerHandle { addr, stop, join })
}

fn accept_loop(
    listener: Listener,
    store: ShardedStore,
    stop: Arc<AtomicBool>,
    idle_timeout: Option<Duration>,
) -> ServeSummary {
    let requests = Arc::new(AtomicU64::new(0));
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut connections = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                connections += 1;
                let handle = store.handle();
                let flag = Arc::clone(&stop);
                let reqs = Arc::clone(&requests);
                conns.push(
                    std::thread::Builder::new()
                        .name(format!("envy-serve-conn-{connections}"))
                        .spawn(move || connection(stream, handle, flag, reqs, idle_timeout))
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_INTERVAL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A fatal listener error stops the server gracefully.
            Err(_) => stop.store(true, Ordering::SeqCst),
        }
        conns.retain(|c| !c.is_finished());
    }
    for c in conns {
        let _ = c.join();
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    drop(listener);
    let outcome = store.shutdown();
    ServeSummary {
        connections,
        requests: requests.load(Ordering::Relaxed),
        outcome,
    }
}

/// One poll step of the incremental frame reader.
enum PollRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// No complete frame yet (timeout); buffered bytes are retained.
    Idle,
    /// Peer closed cleanly at a frame boundary.
    Eof,
}

/// Incremental frame reader: accumulates across read timeouts so a
/// timeout mid-frame never loses sync.
struct FrameReader {
    stream: Stream,
    buf: Vec<u8>,
}

impl FrameReader {
    fn poll(&mut self) -> io::Result<PollRead> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= 4 {
                let len =
                    u32::from_le_bytes(self.buf[..4].try_into().expect("4-byte header")) as usize;
                if len > MAX_FRAME {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "announced frame exceeds MAX_FRAME",
                    ));
                }
                if self.buf.len() >= 4 + len {
                    let payload = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(PollRead::Frame(payload));
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(PollRead::Eof)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "eof inside frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(PollRead::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn wire_of(resp: Response) -> WireResponse {
    WireResponse {
        id: resp.id,
        shard: resp.shard,
        outcome: match resp.result {
            Ok(reply) => WireOutcome::Reply(reply),
            Err(e) => WireOutcome::Err(e),
        },
    }
}

fn send_direct(write: &Mutex<Stream>, resp: &WireResponse) {
    let frame = proto::encode_response(resp);
    let mut w = write.lock().expect("write half poisoned");
    let _ = proto::write_frame(&mut *w, &frame);
}

fn connection(
    stream: Stream,
    handle: ShardHandle,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    idle_timeout: Option<Duration>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let write = Arc::new(Mutex::new(write_half));
    let (rtx, rrx) = mpsc::channel::<Response>();
    // Transactions this connection opened and has not yet resolved,
    // keyed by (owning shard, txn id) — ids are globally unique across
    // shards (disjoint residues, see `ShardedStore::launch_from`), but
    // the shard is kept in the key anyway so an id alone can never
    // resolve the wrong entry. The writer thread maintains the set from
    // the completion stream (it sees every TxnStarted / Committed /
    // Aborted in shard order), and the tail of `connection` aborts
    // whatever is left after a disconnect.
    let open_txns: Arc<Mutex<HashSet<(u32, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    // Writer: drain completions onto the socket. Write errors (dead
    // client) are swallowed — the drain must continue so shard workers
    // are never coupled to a client's fate.
    let writer = {
        let write = Arc::clone(&write);
        let open_txns = Arc::clone(&open_txns);
        std::thread::Builder::new()
            .name("envy-serve-writer".into())
            .spawn(move || {
                for resp in rrx {
                    match resp.result {
                        Ok(Reply::TxnStarted { txn }) => {
                            open_txns
                                .lock()
                                .expect("txn table poisoned")
                                .insert((resp.shard, txn));
                        }
                        Ok(Reply::Committed { txn }) | Ok(Reply::Aborted { txn }) => {
                            open_txns
                                .lock()
                                .expect("txn table poisoned")
                                .remove(&(resp.shard, txn));
                        }
                        _ => {}
                    }
                    send_direct(&write, &wire_of(resp));
                }
            })
            .expect("spawn connection writer")
    };
    let mut reader = FrameReader {
        stream,
        buf: Vec::new(),
    };
    let mut last_activity = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        match reader.poll() {
            Ok(PollRead::Frame(payload)) => {
                last_activity = Instant::now();
                match proto::decode_request(&payload) {
                    Ok(wreq) => {
                        if !handle_request(&handle, &write, &rtx, &requests, &stop, wreq) {
                            break;
                        }
                    }
                    Err(_) => {
                        // Framing is unrecoverable after a bad payload
                        // only if lengths lied; lengths were
                        // consistent, so answer id 0 and keep the
                        // connection.
                        send_direct(
                            &write,
                            &WireResponse {
                                id: 0,
                                shard: 0,
                                outcome: WireOutcome::Err(ServeError::Store(
                                    "malformed request".into(),
                                )),
                            },
                        );
                    }
                }
            }
            Ok(PollRead::Idle) => {
                // Idle timeout: stop reading; the tail below aborts
                // this connection's open transactions just as on a
                // disconnect. Catches half-closed peers that never
                // send EOF on our read side but also never speak.
                if let Some(t) = idle_timeout {
                    if last_activity.elapsed() > t {
                        break;
                    }
                }
            }
            Ok(PollRead::Eof) | Err(_) => break,
        }
    }
    // Stop admitting; in-flight jobs still hold sender clones, so the
    // writer drains every admitted completion before exiting.
    drop(rtx);
    let _ = writer.join();
    // Abort-on-disconnect: anything still in the table was begun by
    // this connection and never committed or aborted. Best-effort — a
    // racing resolution surfaces as NoSuchTxn and is ignored.
    let orphans: Vec<(u32, u64)> = open_txns
        .lock()
        .expect("txn table poisoned")
        .drain()
        .collect();
    for (shard, txn) in orphans {
        let _ = handle.call(Request::TxnAbort { shard, txn });
    }
}

/// Handle one decoded request; returns `false` when the connection
/// should stop reading (server shutdown requested).
fn handle_request(
    handle: &ShardHandle,
    write: &Mutex<Stream>,
    rtx: &Sender<Response>,
    requests: &AtomicU64,
    stop: &AtomicBool,
    wreq: WireRequest,
) -> bool {
    let id = wreq.id;
    let deadline = wreq.deadline();
    match wreq.body {
        WireBody::Shutdown => {
            send_direct(
                write,
                &WireResponse {
                    id,
                    shard: 0,
                    outcome: WireOutcome::ShutdownAck,
                },
            );
            stop.store(true, Ordering::SeqCst);
            false
        }
        WireBody::Req(req) => {
            match handle.submit_with_id(id, req, deadline, rtx) {
                Ok(()) => {
                    requests.fetch_add(1, Ordering::Relaxed);
                }
                Err(SubmitError::Busy(b)) => send_direct(
                    write,
                    &WireResponse {
                        id,
                        shard: b.shard,
                        outcome: WireOutcome::Busy(b),
                    },
                ),
                Err(SubmitError::Rejected(e)) => send_direct(
                    write,
                    &WireResponse {
                        id,
                        shard: 0,
                        outcome: WireOutcome::Err(e),
                    },
                ),
            }
            true
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(io::Error),
    /// The server sent a malformed frame.
    Proto(ProtoError),
    /// The request completed with a typed serving error.
    Serve(ServeError),
    /// The server closed the connection.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Serve(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking protocol client. Requests may be pipelined with
/// [`submit`](Client::submit) / [`recv`](Client::recv); the convenience
/// calls assume no other completions are outstanding.
///
/// For deep pipelines, [`set_corked`](Client::set_corked) batches
/// submitted frames into one buffer flushed by the next
/// [`recv`](Client::recv) (or an explicit
/// [`flush_submits`](Client::flush_submits)), turning N tiny writes
/// into one syscall.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
    next_id: u64,
    outbuf: Vec<u8>,
    corked: bool,
    decoder: proto::FrameDecoder,
}

impl Client {
    /// Connect over TCP.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::Tcp(TcpStream::connect(addr)?),
            next_id: 0,
            outbuf: Vec::new(),
            corked: false,
            decoder: proto::FrameDecoder::new(),
        })
    }

    /// Connect over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect_unix<P: AsRef<Path>>(path: P) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::Unix(UnixStream::connect(path)?),
            next_id: 0,
            outbuf: Vec::new(),
            corked: false,
            decoder: proto::FrameDecoder::new(),
        })
    }

    /// Batch submitted frames in memory instead of writing each one
    /// eagerly. Uncorking flushes whatever is buffered.
    ///
    /// # Errors
    ///
    /// Socket errors flushing on uncork.
    pub fn set_corked(&mut self, corked: bool) -> io::Result<()> {
        self.corked = corked;
        if !corked {
            self.flush_submits()?;
        }
        Ok(())
    }

    /// Write out any corked frames now.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn flush_submits(&mut self) -> io::Result<()> {
        if !self.outbuf.is_empty() {
            self.stream.write_all(&self.outbuf)?;
            self.outbuf.clear();
        }
        Ok(())
    }

    /// Send a request without waiting; returns the id its completion
    /// will carry. Any number may be outstanding; completions can
    /// arrive out of order.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn submit(&mut self, req: Request, deadline: Option<Duration>) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.submit_with_id(id, req, deadline)?;
        Ok(id)
    }

    /// [`submit`](Client::submit) with a caller-chosen id (e.g. to retry
    /// a [`Busy`](WireOutcome::Busy) rejection under its original id).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn submit_with_id(
        &mut self,
        id: u64,
        req: Request,
        deadline: Option<Duration>,
    ) -> io::Result<()> {
        let deadline_us = deadline
            .map(|d| d.as_micros().clamp(1, u32::MAX as u128) as u32)
            .unwrap_or(0);
        let frame = proto::encode_request(&WireRequest {
            id,
            deadline_us,
            body: WireBody::Req(req),
        });
        if self.corked {
            self.outbuf
                .extend_from_slice(&(frame.len() as u32).to_le_bytes());
            self.outbuf.extend_from_slice(&frame);
            Ok(())
        } else {
            proto::write_frame(&mut self.stream, &frame)
        }
    }

    /// Block for the next completion.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] on EOF, otherwise socket or
    /// protocol errors.
    pub fn recv(&mut self) -> Result<WireResponse, ClientError> {
        self.flush_submits()?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    return proto::decode_response(payload).map_err(ClientError::Proto)
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        e.to_string(),
                    )))
                }
            }
            // One read may deliver many pipelined responses; they drain
            // from the decoder without further syscalls.
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.decoder.mid_frame() {
                        Err(ClientError::Io(io::Error::from(
                            io::ErrorKind::UnexpectedEof,
                        )))
                    } else {
                        Err(ClientError::Disconnected)
                    }
                }
                Ok(n) => self.decoder.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Submit and wait: retries through `Busy` backpressure (sleeping
    /// each `retry_after`). Assumes no other completions are
    /// outstanding.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on socket failure or a typed serving error.
    pub fn call(&mut self, req: Request) -> Result<Reply, ClientError> {
        loop {
            let id = self.submit(req.clone(), None)?;
            let resp = self.recv()?;
            debug_assert_eq!(resp.id, id, "call() must not be pipelined");
            match resp.outcome {
                WireOutcome::Reply(reply) => return Ok(reply),
                WireOutcome::Err(e) => return Err(ClientError::Serve(e)),
                WireOutcome::Busy(b) => std::thread::sleep(b.retry_after),
                WireOutcome::ShutdownAck => return Err(ClientError::Disconnected),
            }
        }
    }

    /// Read `len` bytes at a global address.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn read(&mut self, addr: u64, len: u32) -> Result<Vec<u8>, ClientError> {
        match self.call(Request::Read { addr, len })? {
            Reply::Data(bytes) => Ok(bytes),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Write bytes at a global address; returns the simulated latency.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<envy_sim::time::Ns, ClientError> {
        match self.call(Request::Write {
            addr,
            bytes: bytes.to_vec(),
        })? {
            Reply::Done { latency } => Ok(latency),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Liveness probe against one shard.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn ping(&mut self, shard: u32) -> Result<(), ClientError> {
        match self.call(Request::Ping { shard })? {
            Reply::Pong => Ok(()),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Open a transaction on one shard; returns the transaction id to
    /// pass to [`txn_write`](Client::txn_write) and
    /// [`txn_commit`](Client::txn_commit). One transaction may be open
    /// per shard at a time ([`ServeError::TxnBusy`] otherwise); if this
    /// connection drops without resolving it, the server aborts it.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn txn_begin(&mut self, shard: u32) -> Result<u64, ClientError> {
        match self.call(Request::TxnBegin { shard })? {
            Reply::TxnStarted { txn } => Ok(txn),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Write bytes at a global address under an open transaction; the
    /// write is invisible to a crash until the commit. The address must
    /// land on the shard that issued `txn`.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call); [`ServeError::NoSuchTxn`] if `txn` is
    /// not the shard's open transaction.
    pub fn txn_write(
        &mut self,
        addr: u64,
        bytes: &[u8],
        txn: u64,
    ) -> Result<envy_sim::time::Ns, ClientError> {
        match self.call(Request::TxnWrite {
            addr,
            bytes: bytes.to_vec(),
            txn,
        })? {
            Reply::Done { latency } => Ok(latency),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Durably commit an open transaction: after this returns, every
    /// write made under `txn` survives any crash atomically.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call); [`ServeError::NoSuchTxn`] if `txn` is
    /// not the shard's open transaction.
    pub fn txn_commit(&mut self, shard: u32, txn: u64) -> Result<(), ClientError> {
        match self.call(Request::TxnCommit { shard, txn })? {
            Reply::Committed { .. } => Ok(()),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Roll back an open transaction: every write made under `txn` is
    /// undone, byte-exactly, before this returns.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call); [`ServeError::NoSuchTxn`] if `txn` is
    /// not the shard's open transaction.
    pub fn txn_abort(&mut self, shard: u32, txn: u64) -> Result<(), ClientError> {
        match self.call(Request::TxnAbort { shard, txn })? {
            Reply::Aborted { .. } => Ok(()),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Look up a key in one shard's KV region; `None` on a miss.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn kv_get(&mut self, shard: u32, key: u64) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(Request::KvGet { shard, key })? {
            Reply::KvValue(v) => Ok(v),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Insert or replace a key in one shard's KV region. `txn = 0` runs
    /// the put standalone; a nonzero id from
    /// [`txn_begin`](Client::txn_begin) on the same shard makes it part
    /// of that transaction.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call); [`ServeError::Store`] wrapping the
    /// value-size cap, [`ServeError::NoSuchTxn`] for a dead id.
    pub fn kv_put(
        &mut self,
        shard: u32,
        key: u64,
        value: &[u8],
        txn: u64,
    ) -> Result<(), ClientError> {
        match self.call(Request::KvPut {
            shard,
            key,
            txn,
            value: value.to_vec(),
        })? {
            Reply::KvPutDone => Ok(()),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Delete a key from one shard's KV region; returns whether it
    /// existed. `txn` as in [`kv_put`](Client::kv_put).
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn kv_delete(&mut self, shard: u32, key: u64, txn: u64) -> Result<bool, ClientError> {
        match self.call(Request::KvDelete { shard, key, txn })? {
            Reply::KvDeleted { existed } => Ok(existed),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Ordered range read from one shard's KV region: up to `limit`
    /// `(key, value)` records with `key >= start`, ascending. The server
    /// clamps `limit` to [`crate::KV_SCAN_LIMIT`].
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn kv_scan(
        &mut self,
        shard: u32,
        start: u64,
        limit: u32,
    ) -> Result<Vec<(u64, Vec<u8>)>, ClientError> {
        match self.call(Request::KvScan {
            shard,
            start,
            limit,
        })? {
            Reply::KvRange(items) => Ok(items),
            _ => Err(ClientError::Proto(unexpected_reply())),
        }
    }

    /// Shut down this client's **write** side only (half-close): the
    /// server sees EOF and runs its disconnect cleanup, while this
    /// client can still [`recv`](Client::recv) responses already in
    /// flight.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.flush_submits()?;
        match &self.stream {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Ask the server to shut down gracefully and wait for the ack.
    ///
    /// # Errors
    ///
    /// As [`call`](Client::call).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = proto::encode_request(&WireRequest {
            id,
            deadline_us: 0,
            body: WireBody::Shutdown,
        });
        self.flush_submits()?;
        proto::write_frame(&mut self.stream, &frame)?;
        loop {
            // Outstanding pipelined completions may land first.
            match self.recv()?.outcome {
                WireOutcome::ShutdownAck => return Ok(()),
                _ => continue,
            }
        }
    }
}

fn unexpected_reply() -> ProtoError {
    // Reuse the protocol error type for a reply of the wrong kind.
    ProtoError::mismatched_reply()
}
