//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts payload bytes only and is capped at [`MAX_FRAME`]; a
//! larger announcement is a protocol error and the peer closes the
//! connection.
//!
//! **Request payload** (client → server):
//!
//! ```text
//! op: u8 | id: u64 LE | deadline_us: u32 LE | body…
//! ```
//!
//! | op | body |
//! |----|------|
//! | `READ` (1)       | `addr: u64`, `len: u32` |
//! | `WRITE` (2)      | `addr: u64`, payload = rest of frame |
//! | `FLUSH` (3)      | `shard: u32` |
//! | `PING` (4)       | `shard: u32` |
//! | `SHUTDOWN` (5)   | — |
//! | `TXN_BEGIN` (6)  | `shard: u32` |
//! | `TXN_WRITE` (7)  | `addr: u64`, `txn: u64`, payload = rest of frame |
//! | `TXN_COMMIT` (8) | `shard: u32`, `txn: u64` |
//! | `TXN_ABORT` (9)  | `shard: u32`, `txn: u64` |
//! | `KV_GET` (10)    | `shard: u32`, `key: u64` |
//! | `KV_PUT` (11)    | `shard: u32`, `key: u64`, `txn: u64` (0 = standalone), value = rest of frame |
//! | `KV_DELETE` (12) | `shard: u32`, `key: u64`, `txn: u64` (0 = standalone) |
//! | `KV_SCAN` (13)   | `shard: u32`, `start: u64`, `limit: u32` |
//!
//! `deadline_us` is a relative deadline in microseconds (0 = none),
//! measured from server receipt. `id` is chosen by the client and echoed
//! verbatim in the response; responses may arrive out of submission
//! order (pipelining), so ids are how a client matches completions.
//!
//! **Response payload** (server → client):
//!
//! ```text
//! status: u8 | id: u64 LE | shard: u32 LE | body…
//! ```
//!
//! | status | meaning | body |
//! |--------|---------|------|
//! | `DATA` (0)      | read data | the bytes |
//! | `OK` (1)        | operation done | `kind: u8` (0 write, 1 flush, 2 ping, 3 txn begun, 4 committed, 5 aborted), then `latency_ns: u64` for writes / `txn: u64` for kinds 3–5 |
//! | `BUSY` (2)      | queue full, **not admitted** | `retry_after_ns: u64` |
//! | `DEADLINE` (3)  | expired before dispatch | — |
//! | `CROSSES` (4)   | spans two shards | `addr: u64`, `len: u64` |
//! | `OOB` (5)       | outside the array | `addr: u64`, `size: u64` |
//! | `ERR` (6)       | store failure | UTF-8 message |
//! | `SHUTDOWN` (7)  | rejected: shutting down | — |
//! | `ACK` (8)       | shutdown acknowledged | — |
//! | `TXN_BUSY` (9)  | every transaction slot on the shard is occupied | — |
//! | `NO_TXN` (10)   | no such open transaction on the shard | `txn: u64` (the id presented) |
//! | `TXN_CONFLICT` (11) | page is in another open transaction's write set | — |
//! | `KV` (12)       | key-value operation result | `kind: u8` (0 get miss, 1 get hit, 2 put done, 3 deleted, 4 scan), then the value bytes for kind 1, `existed: u8` for kind 3, or `count: u32` followed by `count` × (`key: u64`, `len: u32`, value bytes) for kind 4 |
//!
//! `TXN_BUSY` and `TXN_CONFLICT` deliberately carry **no** transaction
//! id: ids are capability-like (knowing one is enough to issue
//! `TXN_WRITE`/`TXN_COMMIT` against it), so refusals never echo a
//! *foreign* id. `NO_TXN` only echoes the id the client itself
//! presented.

use crate::shard::{Busy, Reply, Request, ServeError};
use envy_sim::time::Ns;
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Maximum frame payload size (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Request opcodes.
pub mod op {
    /// Read a byte range.
    pub const READ: u8 = 1;
    /// Write a byte range.
    pub const WRITE: u8 = 2;
    /// Flush one shard's write buffer.
    pub const FLUSH: u8 = 3;
    /// Liveness probe.
    pub const PING: u8 = 4;
    /// Ask the server to shut down gracefully.
    pub const SHUTDOWN: u8 = 5;
    /// Open a transaction on one shard.
    pub const TXN_BEGIN: u8 = 6;
    /// Write a byte range under an open transaction.
    pub const TXN_WRITE: u8 = 7;
    /// Durably commit an open transaction.
    pub const TXN_COMMIT: u8 = 8;
    /// Roll back an open transaction.
    pub const TXN_ABORT: u8 = 9;
    /// Look up a key in one shard's KV region.
    pub const KV_GET: u8 = 10;
    /// Insert or replace a key (optionally under an open transaction).
    pub const KV_PUT: u8 = 11;
    /// Delete a key (optionally under an open transaction).
    pub const KV_DELETE: u8 = 12;
    /// Ordered range read from a start key.
    pub const KV_SCAN: u8 = 13;
}

/// Response status codes.
pub mod status {
    /// Read data follows.
    pub const DATA: u8 = 0;
    /// Write / flush / ping completed.
    pub const OK: u8 = 1;
    /// Queue full — the request was **not** admitted.
    pub const BUSY: u8 = 2;
    /// Deadline expired before dispatch.
    pub const DEADLINE: u8 = 3;
    /// Range crosses a shard boundary.
    pub const CROSSES: u8 = 4;
    /// Range outside the global array.
    pub const OOB: u8 = 5;
    /// Store failure (message follows).
    pub const ERR: u8 = 6;
    /// Rejected because the server is shutting down.
    pub const SHUTDOWN: u8 = 7;
    /// Shutdown request acknowledged.
    pub const ACK: u8 = 8;
    /// Every transaction slot on the shard is occupied.
    pub const TXN_BUSY: u8 = 9;
    /// No open transaction with the presented id on that shard.
    pub const NO_TXN: u8 = 10;
    /// The page is in another open transaction's write set.
    pub const TXN_CONFLICT: u8 = 11;
    /// Key-value operation result (kind byte follows).
    pub const KV: u8 = 12;
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// Relative deadline in microseconds from server receipt; 0 = none.
    pub deadline_us: u32,
    /// What to do.
    pub body: WireBody,
}

impl WireRequest {
    /// The deadline as a duration, if any.
    pub fn deadline(&self) -> Option<Duration> {
        (self.deadline_us > 0).then(|| Duration::from_micros(self.deadline_us as u64))
    }
}

/// The request body: a store request or a control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireBody {
    /// A store request, routed by global address.
    Req(Request),
    /// Graceful server shutdown.
    Shutdown,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// The id the request carried.
    pub id: u64,
    /// Shard that served (or rejected) the request.
    pub shard: u32,
    /// What happened.
    pub outcome: WireOutcome,
}

/// The response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOutcome {
    /// Completed.
    Reply(Reply),
    /// Completed with a typed serving error.
    Err(ServeError),
    /// Not admitted: queue full, retry after the hint.
    Busy(Busy),
    /// Shutdown acknowledged.
    ShutdownAck,
}

/// A malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(&'static str);

impl ProtoError {
    /// A structurally valid reply of the wrong kind for its request.
    pub(crate) fn mismatched_reply() -> ProtoError {
        ProtoError("reply kind does not match the request")
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Encode a request frame payload.
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    let opcode = match &req.body {
        WireBody::Req(Request::Read { .. }) => op::READ,
        WireBody::Req(Request::Write { .. }) => op::WRITE,
        WireBody::Req(Request::Flush { .. }) => op::FLUSH,
        WireBody::Req(Request::Ping { .. }) => op::PING,
        WireBody::Req(Request::TxnBegin { .. }) => op::TXN_BEGIN,
        WireBody::Req(Request::TxnWrite { .. }) => op::TXN_WRITE,
        WireBody::Req(Request::TxnCommit { .. }) => op::TXN_COMMIT,
        WireBody::Req(Request::TxnAbort { .. }) => op::TXN_ABORT,
        WireBody::Req(Request::KvGet { .. }) => op::KV_GET,
        WireBody::Req(Request::KvPut { .. }) => op::KV_PUT,
        WireBody::Req(Request::KvDelete { .. }) => op::KV_DELETE,
        WireBody::Req(Request::KvScan { .. }) => op::KV_SCAN,
        WireBody::Shutdown => op::SHUTDOWN,
    };
    buf.push(opcode);
    put_u64(&mut buf, req.id);
    put_u32(&mut buf, req.deadline_us);
    match &req.body {
        WireBody::Req(Request::Read { addr, len }) => {
            put_u64(&mut buf, *addr);
            put_u32(&mut buf, *len);
        }
        WireBody::Req(Request::Write { addr, bytes }) => {
            put_u64(&mut buf, *addr);
            buf.extend_from_slice(bytes);
        }
        WireBody::Req(Request::Flush { shard })
        | WireBody::Req(Request::Ping { shard })
        | WireBody::Req(Request::TxnBegin { shard }) => {
            put_u32(&mut buf, *shard);
        }
        WireBody::Req(Request::TxnWrite { addr, bytes, txn }) => {
            put_u64(&mut buf, *addr);
            put_u64(&mut buf, *txn);
            buf.extend_from_slice(bytes);
        }
        WireBody::Req(Request::TxnCommit { shard, txn })
        | WireBody::Req(Request::TxnAbort { shard, txn }) => {
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *txn);
        }
        WireBody::Req(Request::KvGet { shard, key }) => {
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *key);
        }
        WireBody::Req(Request::KvPut {
            shard,
            key,
            txn,
            value,
        }) => {
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *key);
            put_u64(&mut buf, *txn);
            buf.extend_from_slice(value);
        }
        WireBody::Req(Request::KvDelete { shard, key, txn }) => {
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *key);
            put_u64(&mut buf, *txn);
        }
        WireBody::Req(Request::KvScan {
            shard,
            start,
            limit,
        }) => {
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *start);
            put_u32(&mut buf, *limit);
        }
        WireBody::Shutdown => {}
    }
    buf
}

/// Encode a response frame payload.
pub fn encode_response(resp: &WireResponse) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    encode_response_into(&mut buf, resp);
    buf
}

/// Append a response frame payload to `buf` (no length prefix). The
/// allocation-reusing twin of [`encode_response`]: the event-loop
/// driver encodes every response into a pooled buffer.
pub fn encode_response_into(buf: &mut Vec<u8>, resp: &WireResponse) {
    let st = match &resp.outcome {
        WireOutcome::Reply(Reply::Data(_)) => status::DATA,
        WireOutcome::Reply(
            Reply::KvValue(_) | Reply::KvPutDone | Reply::KvDeleted { .. } | Reply::KvRange(_),
        ) => status::KV,
        WireOutcome::Reply(_) => status::OK,
        WireOutcome::Err(ServeError::DeadlineExceeded) => status::DEADLINE,
        WireOutcome::Err(ServeError::CrossesShard { .. }) => status::CROSSES,
        WireOutcome::Err(ServeError::OutOfBounds { .. }) => status::OOB,
        WireOutcome::Err(ServeError::ShuttingDown) => status::SHUTDOWN,
        WireOutcome::Err(ServeError::TxnBusy) => status::TXN_BUSY,
        WireOutcome::Err(ServeError::NoSuchTxn { .. }) => status::NO_TXN,
        WireOutcome::Err(ServeError::TxnConflict) => status::TXN_CONFLICT,
        WireOutcome::Err(ServeError::Store(_)) => status::ERR,
        WireOutcome::Busy(_) => status::BUSY,
        WireOutcome::ShutdownAck => status::ACK,
    };
    buf.push(st);
    put_u64(buf, resp.id);
    put_u32(buf, resp.shard);
    match &resp.outcome {
        WireOutcome::Reply(Reply::Data(bytes)) => buf.extend_from_slice(bytes),
        WireOutcome::Reply(Reply::Done { latency }) => {
            buf.push(0);
            put_u64(buf, latency.as_nanos());
        }
        WireOutcome::Reply(Reply::Flushed) => buf.push(1),
        WireOutcome::Reply(Reply::Pong) => buf.push(2),
        WireOutcome::Reply(Reply::TxnStarted { txn }) => {
            buf.push(3);
            put_u64(buf, *txn);
        }
        WireOutcome::Reply(Reply::Committed { txn }) => {
            buf.push(4);
            put_u64(buf, *txn);
        }
        WireOutcome::Reply(Reply::Aborted { txn }) => {
            buf.push(5);
            put_u64(buf, *txn);
        }
        WireOutcome::Reply(Reply::KvValue(None)) => buf.push(0),
        WireOutcome::Reply(Reply::KvValue(Some(value))) => {
            buf.push(1);
            buf.extend_from_slice(value);
        }
        WireOutcome::Reply(Reply::KvPutDone) => buf.push(2),
        WireOutcome::Reply(Reply::KvDeleted { existed }) => {
            buf.push(3);
            buf.push(u8::from(*existed));
        }
        WireOutcome::Reply(Reply::KvRange(items)) => {
            buf.push(4);
            put_u32(buf, items.len() as u32);
            for (key, value) in items {
                put_u64(buf, *key);
                put_u32(buf, value.len() as u32);
                buf.extend_from_slice(value);
            }
        }
        WireOutcome::Err(ServeError::CrossesShard { addr, len }) => {
            put_u64(buf, *addr);
            put_u64(buf, *len);
        }
        WireOutcome::Err(ServeError::OutOfBounds { addr, size }) => {
            put_u64(buf, *addr);
            put_u64(buf, *size);
        }
        WireOutcome::Err(ServeError::NoSuchTxn { txn }) => put_u64(buf, *txn),
        WireOutcome::Err(ServeError::Store(msg)) => buf.extend_from_slice(msg.as_bytes()),
        WireOutcome::Err(ServeError::DeadlineExceeded)
        | WireOutcome::Err(ServeError::ShuttingDown)
        | WireOutcome::Err(ServeError::TxnBusy)
        | WireOutcome::Err(ServeError::TxnConflict)
        | WireOutcome::ShutdownAck => {}
        WireOutcome::Busy(b) => put_u64(buf, b.retry_after.as_nanos() as u64),
    }
}

/// Encode a whole response **frame** (length prefix + payload) into
/// `buf`, clearing it first. Returns `false` — with `buf` cleared —
/// if the payload would exceed [`MAX_FRAME`] (the blocking writer
/// swallows the same condition as an ignored `write_frame` error).
pub fn encode_response_frame_into(buf: &mut Vec<u8>, resp: &WireResponse) -> bool {
    buf.clear();
    buf.extend_from_slice(&[0u8; 4]);
    encode_response_into(buf, resp);
    let len = buf.len() - 4;
    if len > MAX_FRAME {
        buf.clear();
        return false;
    }
    buf[..4].copy_from_slice(&(len as u32).to_le_bytes());
    true
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&b, rest) = self.buf.split_first().ok_or(ProtoError("truncated u8"))?;
        self.buf = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let (head, rest) = self
            .buf
            .split_first_chunk::<4>()
            .ok_or(ProtoError("truncated u32"))?;
        self.buf = rest;
        Ok(u32::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let (head, rest) = self
            .buf
            .split_first_chunk::<8>()
            .ok_or(ProtoError("truncated u64"))?;
        self.buf = rest;
        Ok(u64::from_le_bytes(*head))
    }

    fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.buf)
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError("trailing bytes"))
        }
    }
}

/// Decode a request frame payload.
///
/// # Errors
///
/// [`ProtoError`] on a truncated body, trailing bytes, or an unknown
/// opcode.
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, ProtoError> {
    let mut c = Cursor { buf: payload };
    let opcode = c.u8()?;
    let id = c.u64()?;
    let deadline_us = c.u32()?;
    let body = match opcode {
        op::READ => {
            let addr = c.u64()?;
            let len = c.u32()?;
            c.done()?;
            WireBody::Req(Request::Read { addr, len })
        }
        op::WRITE => {
            let addr = c.u64()?;
            let bytes = c.rest().to_vec();
            WireBody::Req(Request::Write { addr, bytes })
        }
        op::FLUSH => {
            let shard = c.u32()?;
            c.done()?;
            WireBody::Req(Request::Flush { shard })
        }
        op::PING => {
            let shard = c.u32()?;
            c.done()?;
            WireBody::Req(Request::Ping { shard })
        }
        op::SHUTDOWN => {
            c.done()?;
            WireBody::Shutdown
        }
        op::TXN_BEGIN => {
            let shard = c.u32()?;
            c.done()?;
            WireBody::Req(Request::TxnBegin { shard })
        }
        op::TXN_WRITE => {
            let addr = c.u64()?;
            let txn = c.u64()?;
            let bytes = c.rest().to_vec();
            WireBody::Req(Request::TxnWrite { addr, bytes, txn })
        }
        op::TXN_COMMIT => {
            let shard = c.u32()?;
            let txn = c.u64()?;
            c.done()?;
            WireBody::Req(Request::TxnCommit { shard, txn })
        }
        op::TXN_ABORT => {
            let shard = c.u32()?;
            let txn = c.u64()?;
            c.done()?;
            WireBody::Req(Request::TxnAbort { shard, txn })
        }
        op::KV_GET => {
            let shard = c.u32()?;
            let key = c.u64()?;
            c.done()?;
            WireBody::Req(Request::KvGet { shard, key })
        }
        op::KV_PUT => {
            let shard = c.u32()?;
            let key = c.u64()?;
            let txn = c.u64()?;
            let value = c.rest().to_vec();
            WireBody::Req(Request::KvPut {
                shard,
                key,
                txn,
                value,
            })
        }
        op::KV_DELETE => {
            let shard = c.u32()?;
            let key = c.u64()?;
            let txn = c.u64()?;
            c.done()?;
            WireBody::Req(Request::KvDelete { shard, key, txn })
        }
        op::KV_SCAN => {
            let shard = c.u32()?;
            let start = c.u64()?;
            let limit = c.u32()?;
            c.done()?;
            WireBody::Req(Request::KvScan {
                shard,
                start,
                limit,
            })
        }
        _ => return Err(ProtoError("unknown opcode")),
    };
    Ok(WireRequest {
        id,
        deadline_us,
        body,
    })
}

/// Decode a response frame payload.
///
/// # Errors
///
/// [`ProtoError`] on a truncated body, trailing bytes, an unknown
/// status, or non-UTF-8 in an `ERR` message.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, ProtoError> {
    let mut c = Cursor { buf: payload };
    let st = c.u8()?;
    let id = c.u64()?;
    let shard = c.u32()?;
    let outcome = match st {
        status::DATA => WireOutcome::Reply(Reply::Data(c.rest().to_vec())),
        status::OK => match c.u8()? {
            0 => {
                let latency = Ns::from_nanos(c.u64()?);
                c.done()?;
                WireOutcome::Reply(Reply::Done { latency })
            }
            1 => {
                c.done()?;
                WireOutcome::Reply(Reply::Flushed)
            }
            2 => {
                c.done()?;
                WireOutcome::Reply(Reply::Pong)
            }
            3 => {
                let txn = c.u64()?;
                c.done()?;
                WireOutcome::Reply(Reply::TxnStarted { txn })
            }
            4 => {
                let txn = c.u64()?;
                c.done()?;
                WireOutcome::Reply(Reply::Committed { txn })
            }
            5 => {
                let txn = c.u64()?;
                c.done()?;
                WireOutcome::Reply(Reply::Aborted { txn })
            }
            _ => return Err(ProtoError("unknown ok kind")),
        },
        status::BUSY => {
            let retry = c.u64()?;
            c.done()?;
            WireOutcome::Busy(Busy {
                shard,
                retry_after: Duration::from_nanos(retry),
            })
        }
        status::DEADLINE => {
            c.done()?;
            WireOutcome::Err(ServeError::DeadlineExceeded)
        }
        status::CROSSES => {
            let addr = c.u64()?;
            let len = c.u64()?;
            c.done()?;
            WireOutcome::Err(ServeError::CrossesShard { addr, len })
        }
        status::OOB => {
            let addr = c.u64()?;
            let size = c.u64()?;
            c.done()?;
            WireOutcome::Err(ServeError::OutOfBounds { addr, size })
        }
        status::ERR => {
            let msg = String::from_utf8(c.rest().to_vec())
                .map_err(|_| ProtoError("non-utf8 error message"))?;
            WireOutcome::Err(ServeError::Store(msg))
        }
        status::SHUTDOWN => {
            c.done()?;
            WireOutcome::Err(ServeError::ShuttingDown)
        }
        status::ACK => {
            c.done()?;
            WireOutcome::ShutdownAck
        }
        status::TXN_BUSY => {
            c.done()?;
            WireOutcome::Err(ServeError::TxnBusy)
        }
        status::NO_TXN => {
            let txn = c.u64()?;
            c.done()?;
            WireOutcome::Err(ServeError::NoSuchTxn { txn })
        }
        status::TXN_CONFLICT => {
            c.done()?;
            WireOutcome::Err(ServeError::TxnConflict)
        }
        status::KV => match c.u8()? {
            0 => {
                c.done()?;
                WireOutcome::Reply(Reply::KvValue(None))
            }
            1 => WireOutcome::Reply(Reply::KvValue(Some(c.rest().to_vec()))),
            2 => {
                c.done()?;
                WireOutcome::Reply(Reply::KvPutDone)
            }
            3 => {
                let existed = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtoError("bad kv delete flag")),
                };
                c.done()?;
                WireOutcome::Reply(Reply::KvDeleted { existed })
            }
            4 => {
                let count = c.u32()? as usize;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let key = c.u64()?;
                    let len = c.u32()? as usize;
                    if c.buf.len() < len {
                        return Err(ProtoError("truncated kv scan item"));
                    }
                    let (value, rest) = c.buf.split_at(len);
                    items.push((key, value.to_vec()));
                    c.buf = rest;
                }
                c.done()?;
                WireOutcome::Reply(Reply::KvRange(items))
            }
            _ => return Err(ProtoError("unknown kv kind")),
        },
        _ => return Err(ProtoError("unknown status")),
    };
    Ok(WireResponse { id, shard, outcome })
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one frame (length prefix + payload) and flush.
///
/// # Errors
///
/// I/O errors; `InvalidInput` if the payload exceeds [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O errors; `InvalidData` if the peer announces a frame larger than
/// [`MAX_FRAME`]; `UnexpectedEof` on mid-frame EOF.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    // Distinguish clean EOF (no bytes) from a torn header.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "announced frame exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Incremental decoding
// ---------------------------------------------------------------------

/// A frame announced a payload larger than [`MAX_FRAME`] — the typed
/// error of the incremental decoder (the peer is desynchronized or
/// hostile; the connection must close).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The announced payload length.
    pub announced: usize,
}

impl fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "announced frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
            self.announced
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Incremental frame decoder for nonblocking readers: bytes arrive in
/// arbitrary chunks ([`push`](FrameDecoder::push)), complete frames
/// come out ([`next_frame`](FrameDecoder::next_frame)). One internal
/// buffer is reused for the connection's lifetime — no per-frame
/// allocation; consumed bytes are compacted away lazily.
///
/// Decodes exactly the same byte stream as the blocking
/// [`read_frame`]: a split at any byte boundary yields identical
/// frames, and an over-large announcement is the same hard error.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

/// Compact once this many consumed bytes accumulate at the front.
const DECODER_COMPACT: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes read from the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame payload, or `None` if more bytes are
    /// needed. The returned slice borrows the internal buffer and is
    /// consumed by the call — process it before the next `push`.
    ///
    /// # Errors
    ///
    /// [`FrameTooLarge`] if the header announces more than
    /// [`MAX_FRAME`] bytes; the stream cannot be resynchronized.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameTooLarge> {
        if self.start >= DECODER_COMPACT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4-byte header");
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME {
            return Err(FrameTooLarge { announced: len });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let payload_start = self.start + 4;
        self.start = payload_start + len;
        Ok(Some(&self.buf[payload_start..payload_start + len]))
    }

    /// Whether undecoded bytes are buffered (an EOF now would be a
    /// mid-frame EOF, like [`read_frame`]'s `UnexpectedEof`).
    pub fn mid_frame(&self) -> bool {
        self.start < self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: WireRequest) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: WireResponse) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(WireRequest {
            id: 7,
            deadline_us: 0,
            body: WireBody::Req(Request::Read {
                addr: 0xdead_beef,
                len: 64,
            }),
        });
        roundtrip_req(WireRequest {
            id: u64::MAX,
            deadline_us: 1_500,
            body: WireBody::Req(Request::Write {
                addr: 8,
                bytes: b"payload".to_vec(),
            }),
        });
        roundtrip_req(WireRequest {
            id: 1,
            deadline_us: 0,
            body: WireBody::Req(Request::Flush { shard: 3 }),
        });
        roundtrip_req(WireRequest {
            id: 2,
            deadline_us: 9,
            body: WireBody::Req(Request::Ping { shard: 0 }),
        });
        roundtrip_req(WireRequest {
            id: 3,
            deadline_us: 0,
            body: WireBody::Shutdown,
        });
        roundtrip_req(WireRequest {
            id: 4,
            deadline_us: 0,
            body: WireBody::Req(Request::TxnBegin { shard: 1 }),
        });
        roundtrip_req(WireRequest {
            id: 5,
            deadline_us: 700,
            body: WireBody::Req(Request::TxnWrite {
                addr: 4_096,
                bytes: b"txn payload".to_vec(),
                txn: 11,
            }),
        });
        roundtrip_req(WireRequest {
            id: 6,
            deadline_us: 0,
            body: WireBody::Req(Request::TxnCommit { shard: 2, txn: 11 }),
        });
        roundtrip_req(WireRequest {
            id: 7,
            deadline_us: 0,
            body: WireBody::Req(Request::TxnAbort { shard: 0, txn: 12 }),
        });
        roundtrip_req(WireRequest {
            id: 8,
            deadline_us: 0,
            body: WireBody::Req(Request::KvGet { shard: 1, key: 99 }),
        });
        roundtrip_req(WireRequest {
            id: 9,
            deadline_us: 250,
            body: WireBody::Req(Request::KvPut {
                shard: 0,
                key: u64::MAX,
                txn: 0,
                value: b"kv value".to_vec(),
            }),
        });
        roundtrip_req(WireRequest {
            id: 10,
            deadline_us: 0,
            body: WireBody::Req(Request::KvPut {
                shard: 2,
                key: 7,
                txn: 13,
                value: Vec::new(),
            }),
        });
        roundtrip_req(WireRequest {
            id: 11,
            deadline_us: 0,
            body: WireBody::Req(Request::KvDelete {
                shard: 3,
                key: 42,
                txn: 0,
            }),
        });
        roundtrip_req(WireRequest {
            id: 12,
            deadline_us: 0,
            body: WireBody::Req(Request::KvScan {
                shard: 0,
                start: 100,
                limit: 16,
            }),
        });
    }

    #[test]
    fn response_roundtrips() {
        for outcome in [
            WireOutcome::Reply(Reply::Data(vec![1, 2, 3])),
            WireOutcome::Reply(Reply::Data(Vec::new())),
            WireOutcome::Reply(Reply::Done {
                latency: Ns::from_nanos(640),
            }),
            WireOutcome::Reply(Reply::Flushed),
            WireOutcome::Reply(Reply::Pong),
            WireOutcome::Busy(Busy {
                shard: 2,
                retry_after: Duration::from_micros(37),
            }),
            WireOutcome::Err(ServeError::DeadlineExceeded),
            WireOutcome::Err(ServeError::CrossesShard { addr: 10, len: 20 }),
            WireOutcome::Err(ServeError::OutOfBounds { addr: 99, size: 50 }),
            WireOutcome::Err(ServeError::Store("boom".into())),
            WireOutcome::Err(ServeError::ShuttingDown),
            WireOutcome::ShutdownAck,
            WireOutcome::Reply(Reply::TxnStarted { txn: 9 }),
            WireOutcome::Reply(Reply::Committed { txn: 9 }),
            WireOutcome::Reply(Reply::Aborted { txn: 10 }),
            WireOutcome::Err(ServeError::TxnBusy),
            WireOutcome::Err(ServeError::NoSuchTxn { txn: 77 }),
            WireOutcome::Err(ServeError::TxnConflict),
            WireOutcome::Reply(Reply::KvValue(None)),
            WireOutcome::Reply(Reply::KvValue(Some(b"hit".to_vec()))),
            WireOutcome::Reply(Reply::KvValue(Some(Vec::new()))),
            WireOutcome::Reply(Reply::KvPutDone),
            WireOutcome::Reply(Reply::KvDeleted { existed: true }),
            WireOutcome::Reply(Reply::KvDeleted { existed: false }),
            WireOutcome::Reply(Reply::KvRange(Vec::new())),
            WireOutcome::Reply(Reply::KvRange(vec![
                (1, b"one".to_vec()),
                (2, Vec::new()),
                (3, vec![0xab; 300]),
            ])),
        ] {
            roundtrip_resp(WireResponse {
                id: 42,
                shard: 2,
                outcome,
            });
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Read with a truncated body.
        let mut good = encode_request(&WireRequest {
            id: 1,
            deadline_us: 0,
            body: WireBody::Req(Request::Read { addr: 0, len: 4 }),
        });
        good.pop();
        assert!(decode_request(&good).is_err());
        // Trailing garbage on a fixed-size body.
        let mut resp = encode_response(&WireResponse {
            id: 1,
            shard: 0,
            outcome: WireOutcome::Err(ServeError::DeadlineExceeded),
        });
        resp.push(0);
        assert!(decode_response(&resp).is_err());
        // KV frames with truncated bodies.
        let mut kv_get = encode_request(&WireRequest {
            id: 2,
            deadline_us: 0,
            body: WireBody::Req(Request::KvGet { shard: 0, key: 9 }),
        });
        kv_get.pop();
        assert!(decode_request(&kv_get).is_err());
        let mut kv_scan = encode_response(&WireResponse {
            id: 3,
            shard: 0,
            outcome: WireOutcome::Reply(Reply::KvRange(vec![(5, b"v".to_vec())])),
        });
        kv_scan.pop();
        assert!(decode_response(&kv_scan).is_err());
    }

    #[test]
    fn framing_roundtrips_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());

        let big = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &big).is_err());
        let mut bogus: &[u8] = &(MAX_FRAME as u32 + 1).to_le_bytes()[..];
        assert!(read_frame(&mut bogus).is_err());
        // Torn header.
        let mut torn: &[u8] = &[1, 0][..];
        assert_eq!(
            read_frame(&mut torn).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn incremental_decoder_matches_blocking_reader() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[7u8; 300]).unwrap();

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        assert!(!dec.mid_frame());
        let mut r = &stream[..];
        let mut want = Vec::new();
        while let Some(p) = read_frame(&mut r).unwrap() {
            want.push(p);
        }
        assert_eq!(got, want);

        // Oversized announcement is the same hard error.
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(
            dec.next_frame().unwrap_err(),
            FrameTooLarge {
                announced: MAX_FRAME + 1
            }
        );
    }

    #[test]
    fn frame_encode_into_reuses_buffer() {
        let resp = WireResponse {
            id: 3,
            shard: 1,
            outcome: WireOutcome::Reply(Reply::Pong),
        };
        let mut buf = Vec::new();
        assert!(encode_response_frame_into(&mut buf, &resp));
        let mut blocking = Vec::new();
        write_frame(&mut blocking, &encode_response(&resp)).unwrap();
        assert_eq!(buf, blocking);
        // Reuse leaves no stale bytes behind.
        assert!(encode_response_frame_into(&mut buf, &resp));
        assert_eq!(buf, blocking);
    }
}
