//! `envy-served` — the sharded eNVy serving daemon.
//!
//! Binds a TCP or Unix socket, launches a [`ShardedStore`], and serves
//! the binary protocol until a wire `SHUTDOWN`, an optional
//! `--duration-secs` expiry, or a fatal listener error. Exits 0 after a
//! graceful drain and prints a per-run summary.

use envy_server::{serve_with, Listener, NetConfig, NetDriver, ServeConfig, ShardedStore};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
envy-served: serve a sharded eNVy store over a socket

USAGE:
    envy-served [OPTIONS]

OPTIONS:
    --tcp ADDR          listen on a TCP address (default 127.0.0.1:7033)
    --unix PATH         listen on a Unix-domain socket instead
    --shards N          number of shards / worker threads (default 4)
    --txn-slots N       concurrent transactions per shard (default 1)
    --scale small|scaled   per-shard store configuration (default small)
    --queue N           per-shard bounded queue capacity
    --batch N           max requests drained per dispatch
    --trace N           enable controller tracing with an N-event ring
    --duration-secs S   shut down automatically after S seconds
    --net-driver D      connection driver: epoll|poll|threads (default epoll)
    --idle-timeout-ms T reap connections silent for more than T ms
    --help              print this help
";

struct Args {
    tcp: String,
    unix: Option<String>,
    shards: u32,
    txn_slots: Option<u32>,
    scale: String,
    queue: Option<usize>,
    batch: Option<usize>,
    trace: Option<usize>,
    duration_secs: Option<u64>,
    net_driver: NetDriver,
    idle_timeout_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: "127.0.0.1:7033".into(),
        unix: None,
        shards: 4,
        txn_slots: None,
        scale: "small".into(),
        queue: None,
        batch: None,
        trace: None,
        duration_secs: None,
        net_driver: NetDriver::default(),
        idle_timeout_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--tcp" => args.tcp = value("--tcp")?,
            "--unix" => args.unix = Some(value("--unix")?),
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--txn-slots" => {
                args.txn_slots = Some(
                    value("--txn-slots")?
                        .parse()
                        .map_err(|e| format!("--txn-slots: {e}"))?,
                );
            }
            "--scale" => args.scale = value("--scale")?,
            "--queue" => {
                args.queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|e| format!("--queue: {e}"))?,
                );
            }
            "--batch" => {
                args.batch = Some(
                    value("--batch")?
                        .parse()
                        .map_err(|e| format!("--batch: {e}"))?,
                );
            }
            "--trace" => {
                args.trace = Some(
                    value("--trace")?
                        .parse()
                        .map_err(|e| format!("--trace: {e}"))?,
                );
            }
            "--duration-secs" => {
                args.duration_secs = Some(
                    value("--duration-secs")?
                        .parse()
                        .map_err(|e| format!("--duration-secs: {e}"))?,
                );
            }
            "--net-driver" => {
                let v = value("--net-driver")?;
                args.net_driver = NetDriver::parse(&v).ok_or_else(|| {
                    format!("--net-driver: unknown driver {v} (use epoll|poll|threads)")
                })?;
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = Some(
                    value("--idle-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--idle-timeout-ms: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if args.txn_slots == Some(0) {
        return Err("--txn-slots must be at least 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("envy-served: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = match args.scale.as_str() {
        "small" => ServeConfig::small(args.shards),
        "scaled" => ServeConfig::scaled(args.shards),
        other => {
            eprintln!("envy-served: unknown --scale {other} (use small|scaled)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(slots) = args.txn_slots {
        config = config.with_txn_slots(slots);
    }
    if let Some(q) = args.queue {
        config.queue_capacity = q.max(1);
    }
    if let Some(b) = args.batch {
        config.batch_max = b.max(1);
    }
    config.trace_capacity = args.trace;

    let store = match ShardedStore::launch(config) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("envy-served: launch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = *store.plan();

    let listener = match &args.unix {
        Some(path) => Listener::bind_unix(path),
        None => Listener::bind_tcp(&args.tcp),
    };
    let listener = match listener {
        Ok(l) => l,
        Err(e) => {
            eprintln!("envy-served: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let net = NetConfig {
        driver: args.net_driver,
        idle_timeout: args.idle_timeout_ms.map(Duration::from_millis),
    };
    let handle = match serve_with(listener, store, net) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("envy-served: serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "envy-served listening on {} ({} shards x {} bytes, {} driver)",
        handle.addr(),
        plan.shards(),
        plan.shard_bytes(),
        args.net_driver.name(),
    );

    let summary = match args.duration_secs {
        Some(secs) => {
            // Safety net for unattended runs: request shutdown once the
            // budget elapses, whether or not a SHUTDOWN frame arrived.
            std::thread::sleep(Duration::from_secs(secs));
            handle.shutdown()
        }
        None => handle.wait(),
    };

    let stats = summary.outcome.aggregate_stats();
    println!(
        "envy-served: {} connections, {} requests admitted, {} served \
         ({} timed out), sim makespan {}",
        summary.connections,
        summary.requests,
        summary.outcome.total_served(),
        summary.outcome.total_timed_out(),
        summary.outcome.max_sim_time(),
    );
    println!(
        "envy-served: fleet {} reads, {} writes, cleaning cost {:.3}",
        stats.host_reads.get(),
        stats.host_writes.get(),
        stats.cleaning_cost()
    );
    ExitCode::SUCCESS
}
