//! Readiness-driven serving: one event-loop thread multiplexes every
//! connection over epoll(7) (Linux) or poll(2) (portable fallback).
//!
//! The thread-per-connection driver in [`net`](crate::net) spends two
//! OS threads (and two stacks) per connection; this module replaces
//! that with per-connection **state machines** driven by readiness
//! events, so 10 000 mostly-idle connections cost a few hundred bytes
//! each instead of megabytes:
//!
//! ```text
//!            readable                admitted             completion
//! [reading] ──────────> FrameDecoder ────────> shard queue ─────────┐
//!     ^                                                             │
//!     │              writev (vectored, partial-write continuation)  v
//!     └────────────────────────────────────────────────── [write queue]
//! ```
//!
//! * **No per-request buffer allocation** — frames are parsed out of
//!   one compacting buffer per connection
//!   ([`FrameDecoder`](crate::proto::FrameDecoder)) and responses are
//!   encoded into pooled buffers recycled through the connection's
//!   write queue.
//! * **Vectored writes** — pipelined responses flush with a single
//!   `writev` (up to [`MAX_IOVECS`] frames), continuing after partial
//!   writes under `EPOLLOUT` interest.
//! * **Completion wakeup** — shard workers ring a [`Waker`] (eventfd
//!   on Linux, self-pipe elsewhere) after posting completions, so the
//!   loop never blocks on a channel recv.
//!
//! The wire contract is identical to the threads driver — same bytes,
//! same `Busy` backpressure (the client owns the retry), same
//! abort-on-disconnect ordering (cleanup aborts are submitted only
//! after every admitted request has completed, so an admitted commit
//! always wins) — which `tests/driver_diff.rs` proves byte-for-byte.

use crate::net::{Listener, NetConfig, ServeSummary, Stream};
use crate::proto::{self, WireBody, WireOutcome, WireRequest, WireResponse};
use crate::shard::{Reply, Request, Response, ServeError, ShardHandle, ShardedStore, SubmitError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read};
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle tick: how long `epoll_wait`/`poll` parks before re-checking
/// the stop flag and the idle sweep.
const EVLOOP_TICK: Duration = Duration::from_millis(25);
/// Drain tick once shutdown has begun.
const DRAIN_TICK: Duration = Duration::from_millis(1);
/// Socket-read chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Per-connection read budget per event, for fairness.
const READ_BUDGET: usize = 256 * 1024;
/// Most frames coalesced into one `writev`.
const MAX_IOVECS: usize = 64;
/// Response buffers recycled per connection.
const POOL_BUFS: usize = 64;
/// Largest buffer capacity worth recycling.
const POOL_BUF_CAP: usize = 16 * 1024;

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const TOK_BASE: u64 = 2;

// ---------------------------------------------------------------------
// Raw syscalls
//
// The workspace has no external crates; std already links libc, so the
// handful of syscalls the loop needs are declared directly.
// ---------------------------------------------------------------------

mod sys {
    use std::os::raw::{c_int, c_ulong, c_void};

    /// `struct iovec` for `writev(2)`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub base: *const c_void,
        pub len: usize,
    }

    /// `struct pollfd` for `poll(2)`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "linux")]
    pub use linux::*;

    #[cfg(target_os = "linux")]
    mod linux {
        use std::os::raw::c_int;

        /// `struct epoll_event`; packed on x86 so the layout matches
        /// the kernel ABI.
        #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
        #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLL_CLOEXEC: c_int = 0x80000;
        pub const EFD_NONBLOCK: c_int = 0x800;
        pub const EFD_CLOEXEC: c_int = 0x80000;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout_ms: c_int,
            ) -> c_int;
            pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub const F_GETFL: c_int = 3;
    #[cfg(not(target_os = "linux"))]
    pub const F_SETFL: c_int = 4;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x4;

    #[cfg(target_os = "linux")]
    pub const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    pub const RLIMIT_NOFILE: c_int = 8;

    /// `struct rlimit` (LP64).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: c_int) -> c_int;
        pub fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn pipe(fds: *mut c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

fn last_err() -> io::Error {
    io::Error::last_os_error()
}

#[cfg(not(target_os = "linux"))]
fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(last_err());
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(last_err());
        }
    }
    Ok(())
}

/// Raise the process's open-file soft limit to at least `target`
/// descriptors (the 10k-connection load axis needs ~2 fds per
/// connection when client and server share a process). Returns the
/// resulting soft limit; the hard limit is raised too when the process
/// may (root), otherwise the soft limit is clamped to the hard limit.
///
/// # Errors
///
/// The underlying `getrlimit`/`setrlimit` failure if the limit could
/// not be read or raised at all.
pub fn raise_nofile(target: u64) -> io::Result<u64> {
    let mut lim = sys::RLimit { cur: 0, max: 0 };
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(last_err());
    }
    if lim.cur >= target {
        return Ok(lim.cur);
    }
    let want = sys::RLimit {
        cur: target,
        max: lim.max.max(target),
    };
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) } == 0 {
        return Ok(want.cur);
    }
    // No privilege to raise the hard limit: settle for it.
    let clamped = sys::RLimit {
        cur: target.min(lim.max),
        max: lim.max,
    };
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &clamped) } == 0 {
        return Ok(clamped.cur);
    }
    Err(last_err())
}

// ---------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------

/// Cross-thread wakeup for a parked event loop: an eventfd on Linux, a
/// nonblocking self-pipe elsewhere. Shard workers and reader threads
/// [`wake`](Waker::wake) after posting completions (see
/// [`ShardHandle::submit_with_notify`]); the loop drains the fd and
/// then the completion channel. Writes coalesce, so waking is cheap
/// and idempotent.
#[derive(Debug)]
pub struct Waker {
    rfd: RawFd,
    wfd: RawFd,
}

impl Waker {
    /// A fresh waker (two fds for the pipe fallback, one for eventfd).
    ///
    /// # Errors
    ///
    /// The underlying `eventfd`/`pipe` failure.
    pub fn new() -> io::Result<Waker> {
        #[cfg(target_os = "linux")]
        {
            let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
            if fd < 0 {
                return Err(last_err());
            }
            Ok(Waker { rfd: fd, wfd: fd })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let mut fds = [0i32; 2];
            if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
                return Err(last_err());
            }
            for fd in fds {
                set_nonblocking_fd(fd)?;
            }
            Ok(Waker {
                rfd: fds[0],
                wfd: fds[1],
            })
        }
    }

    /// Ring the waker. Never blocks: a full pipe (or saturated eventfd
    /// counter) means a wake is already pending, which is all that is
    /// needed.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe {
            sys::write(
                self.wfd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Consume all pending wakes.
    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.rfd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }

    fn fd(&self) -> RawFd {
        self.rfd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.rfd);
            if self.wfd != self.rfd {
                sys::close(self.wfd);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------

/// Which readiness backend the loop runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Backend {
    /// epoll(7); Linux only.
    #[cfg(target_os = "linux")]
    Epoll,
    /// poll(2); compiles everywhere, O(n) per tick.
    Poll,
}

/// One readiness event, normalized across backends. Error/hangup
/// conditions surface as `readable` so the read path observes the
/// EOF/error; `hup` additionally flags a peer that is fully gone.
#[derive(Debug, Clone, Copy)]
struct Ev {
    token: u64,
    readable: bool,
    writable: bool,
    hup: bool,
}

enum Poller {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        events: Vec<sys::EpollEvent>,
    },
    Poll {
        fds: Vec<sys::PollFd>,
        tokens: Vec<u64>,
    },
}

impl Poller {
    fn new(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => {
                let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(last_err());
                }
                Ok(Poller::Epoll {
                    epfd,
                    events: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
                })
            }
            Backend::Poll => Ok(Poller::Poll {
                fds: Vec::new(),
                tokens: Vec::new(),
            }),
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: mask,
            data: token,
        };
        if unsafe { sys::epoll_ctl(epfd, op, fd, &mut ev) } != 0 {
            return Err(last_err());
        }
        Ok(())
    }

    fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => Self::epoll_ctl(
                *epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                epoll_mask(read, write),
                token,
            ),
            Poller::Poll { fds, tokens } => {
                fds.push(sys::PollFd {
                    fd,
                    events: poll_mask(read, write),
                    revents: 0,
                });
                tokens.push(token);
                Ok(())
            }
        }
    }

    fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => Self::epoll_ctl(
                *epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                epoll_mask(read, write),
                token,
            ),
            Poller::Poll { fds, .. } => {
                if let Some(f) = fds.iter_mut().find(|f| f.fd == fd) {
                    f.events = poll_mask(read, write);
                }
                Ok(())
            }
        }
    }

    fn deregister(&mut self, fd: RawFd) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => {
                let _ = Self::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
            }
            Poller::Poll { fds, tokens } => {
                if let Some(i) = fds.iter().position(|f| f.fd == fd) {
                    fds.swap_remove(i);
                    tokens.swap_remove(i);
                }
            }
        }
    }

    /// One blocking wait; readiness events are appended to `out`.
    fn wait(&mut self, timeout: Duration, out: &mut Vec<Ev>) -> io::Result<()> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, events } => {
                let n =
                    unsafe { sys::epoll_wait(*epfd, events.as_mut_ptr(), events.len() as i32, ms) };
                if n < 0 {
                    let e = last_err();
                    return if e.kind() == io::ErrorKind::Interrupted {
                        Ok(())
                    } else {
                        Err(e)
                    };
                }
                let n = n as usize;
                for e in &events[..n] {
                    let mask = e.events;
                    out.push(Ev {
                        token: e.data,
                        readable: mask
                            & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP)
                            != 0,
                        writable: mask & sys::EPOLLOUT != 0,
                        hup: mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                // A full buffer may mean more events are pending.
                if n == events.len() {
                    events.resize(n * 2, sys::EpollEvent { events: 0, data: 0 });
                }
                Ok(())
            }
            Poller::Poll { fds, tokens } => {
                for f in fds.iter_mut() {
                    f.revents = 0;
                }
                let n =
                    unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, ms) };
                if n < 0 {
                    let e = last_err();
                    return if e.kind() == io::ErrorKind::Interrupted {
                        Ok(())
                    } else {
                        Err(e)
                    };
                }
                for (f, tok) in fds.iter().zip(tokens.iter()) {
                    let re = f.revents;
                    if re != 0 {
                        out.push(Ev {
                            token: *tok,
                            readable: re
                                & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                                != 0,
                            writable: re & sys::POLLOUT != 0,
                            hup: re & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Poller::Epoll { epfd, .. } = self {
            unsafe {
                sys::close(*epfd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(read: bool, write: bool) -> u32 {
    let mut mask = 0;
    if read {
        mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
    }
    if write {
        mask |= sys::EPOLLOUT;
    }
    mask
}

fn poll_mask(read: bool, write: bool) -> i16 {
    let mut mask = 0;
    if read {
        mask |= sys::POLLIN;
    }
    if write {
        mask |= sys::POLLOUT;
    }
    mask
}

// ---------------------------------------------------------------------
// Write queue
// ---------------------------------------------------------------------

/// Per-connection outgoing frames: a queue of fully-encoded frames
/// flushed with vectored writes, continuing mid-frame after a partial
/// write. Drained buffers are recycled through a small pool, so steady
/// state allocates nothing per response.
struct WriteQueue {
    q: VecDeque<Vec<u8>>,
    head: usize,
    pool: Vec<Vec<u8>>,
}

impl WriteQueue {
    fn new() -> WriteQueue {
        WriteQueue {
            q: VecDeque::new(),
            head: 0,
            pool: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    fn push(&mut self, resp: &WireResponse) {
        let mut buf = self.pool.pop().unwrap_or_default();
        if proto::encode_response_frame_into(&mut buf, resp) {
            self.q.push_back(buf);
        } else {
            // Over-size response: dropped, matching the blocking
            // writer's ignored write_frame error.
            self.recycle(buf);
        }
    }

    fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.pool.len() < POOL_BUFS && buf.capacity() <= POOL_BUF_CAP {
            buf.clear();
            self.pool.push(buf);
        }
    }

    fn clear(&mut self) {
        self.head = 0;
        while let Some(buf) = self.q.pop_front() {
            self.recycle(buf);
        }
    }

    /// Flush as much as the socket accepts; `Ok(true)` when emptied,
    /// `Ok(false)` when the socket would block mid-queue.
    fn flush(&mut self, fd: RawFd) -> io::Result<bool> {
        while !self.q.is_empty() {
            let mut iovs = [sys::IoVec {
                base: std::ptr::null(),
                len: 0,
            }; MAX_IOVECS];
            let mut cnt = 0;
            for (i, buf) in self.q.iter().enumerate().take(MAX_IOVECS) {
                let slice = if i == 0 { &buf[self.head..] } else { &buf[..] };
                iovs[cnt] = sys::IoVec {
                    base: slice.as_ptr().cast(),
                    len: slice.len(),
                };
                cnt += 1;
            }
            let n = unsafe { sys::writev(fd, iovs.as_ptr(), cnt as i32) };
            if n < 0 {
                let e = last_err();
                match e.kind() {
                    io::ErrorKind::WouldBlock => return Ok(false),
                    io::ErrorKind::Interrupted => continue,
                    _ => return Err(e),
                }
            }
            self.advance(n as usize);
        }
        Ok(true)
    }

    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let rem = self.q[0].len() - self.head;
            if n >= rem {
                n -= rem;
                self.head = 0;
                let buf = self.q.pop_front().expect("non-empty queue");
                self.recycle(buf);
            } else {
                self.head += n;
                n = 0;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// Connection state machine.
struct Conn {
    stream: Stream,
    fd: RawFd,
    decoder: proto::FrameDecoder,
    wq: WriteQueue,
    /// Transactions this connection opened and has not yet resolved
    /// (same key discipline as the threads driver's table).
    open_txns: HashSet<(u32, u64)>,
    /// Admitted requests whose completions are still due.
    pending: usize,
    /// Read side is done: EOF, error, wire shutdown, idle timeout, or
    /// server drain. No more frames are parsed.
    read_closed: bool,
    /// Socket is unusable for writes too; outgoing data is discarded.
    dead: bool,
    /// Disconnect cleanup (orphan aborts) has been submitted.
    cleaned: bool,
    reg_read: bool,
    reg_write: bool,
    last_activity: Instant,
}

/// Who a pending completion belongs to.
enum Owner {
    /// A connection's request: deliver under the client's wire id.
    Conn { slot: usize, wire_id: u64 },
    /// A disconnect-cleanup abort: discard the completion.
    Cleanup,
}

/// The readiness-driven server core. Built on the caller's thread (so
/// poller/waker setup errors surface from `serve_with`), then moved
/// into the serving thread and [`run`](EventLoop::run).
pub(crate) struct EventLoop {
    listener: Listener,
    store: Option<ShardedStore>,
    handle: ShardHandle,
    idle_timeout: Option<Duration>,
    stop: Arc<AtomicBool>,
    poller: Poller,
    waker: Arc<Waker>,
    ctx: Sender<Response>,
    crx: Receiver<Response>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    free_pending: Vec<usize>,
    live: usize,
    pending: HashMap<u64, Owner>,
    next_iid: u64,
    cleanup_retry: Vec<(u32, u64, Instant)>,
    dirty: Vec<usize>,
    finalize: Vec<usize>,
    events: Vec<Ev>,
    scratch: Vec<u8>,
    connections: u64,
    requests: u64,
    draining_all: bool,
    accepting: bool,
}

enum Step {
    Req(WireRequest),
    Malformed,
}

impl EventLoop {
    pub(crate) fn new(
        listener: Listener,
        store: ShardedStore,
        cfg: NetConfig,
        stop: Arc<AtomicBool>,
    ) -> io::Result<EventLoop> {
        let backend = cfg.backend();
        let mut poller = Poller::new(backend)?;
        let waker = Arc::new(Waker::new()?);
        poller.register(listener.as_raw(), TOK_LISTENER, true, false)?;
        poller.register(waker.fd(), TOK_WAKER, true, false)?;
        let (ctx, crx) = mpsc::channel();
        let handle = store.handle();
        Ok(EventLoop {
            listener,
            store: Some(store),
            handle,
            idle_timeout: cfg.idle_timeout,
            stop,
            poller,
            waker,
            ctx,
            crx,
            conns: Vec::new(),
            free: Vec::new(),
            free_pending: Vec::new(),
            live: 0,
            pending: HashMap::new(),
            next_iid: 0,
            cleanup_retry: Vec::new(),
            dirty: Vec::new(),
            finalize: Vec::new(),
            events: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
            connections: 0,
            requests: 0,
            draining_all: false,
            accepting: true,
        })
    }

    pub(crate) fn run(mut self) -> ServeSummary {
        loop {
            if self.stop.load(Ordering::SeqCst) && !self.draining_all {
                self.begin_drain();
            }
            if self.draining_all
                && self.live == 0
                && self.pending.is_empty()
                && self.cleanup_retry.is_empty()
            {
                break;
            }
            let tick = if self.draining_all {
                DRAIN_TICK
            } else {
                EVLOOP_TICK
            };
            let mut events = std::mem::take(&mut self.events);
            events.clear();
            if self.poller.wait(tick, &mut events).is_err() {
                // Fatal poller failure: drain and shut down, like a
                // fatal listener error under the threads driver.
                self.stop.store(true, Ordering::SeqCst);
            }
            for &ev in &events {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.waker.drain(),
                    t => self.conn_event((t - TOK_BASE) as usize, ev),
                }
            }
            self.events = events;
            self.drain_completions();
            self.retry_cleanups();
            self.idle_sweep();
            self.run_finalize();
            self.flush_dirty();
            // Slots freed this tick become reusable only next tick, so
            // a stale event can never reach a fresh connection.
            self.free.append(&mut self.free_pending);
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        let outcome = self
            .store
            .take()
            .expect("store present until shutdown")
            .shutdown();
        ServeSummary {
            connections: self.connections,
            requests: self.requests,
            outcome,
        }
    }

    fn begin_drain(&mut self) {
        self.draining_all = true;
        if self.accepting {
            self.poller.deregister(self.listener.as_raw());
            self.accepting = false;
        }
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_read_side(slot);
            }
        }
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let fd = stream.as_raw();
                    let conn = Conn {
                        stream,
                        fd,
                        decoder: proto::FrameDecoder::new(),
                        wq: WriteQueue::new(),
                        open_txns: HashSet::new(),
                        pending: 0,
                        read_closed: false,
                        dead: false,
                        cleaned: false,
                        reg_read: true,
                        reg_write: false,
                        last_activity: Instant::now(),
                    };
                    let slot = match self.free.pop() {
                        Some(s) => {
                            self.conns[s] = Some(conn);
                            s
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    if self
                        .poller
                        .register(fd, TOK_BASE + slot as u64, true, false)
                        .is_err()
                    {
                        self.conns[slot] = None;
                        self.free_pending.push(slot);
                        continue;
                    }
                    self.connections += 1;
                    self.live += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Fatal listener error stops the server gracefully.
                Err(_) => {
                    self.stop.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }
    }

    fn conn_event(&mut self, slot: usize, ev: Ev) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if ev.hup && conn.read_closed {
            // Peer fully gone while we were only holding the write
            // side open: stop trying to flush.
            conn.dead = true;
            conn.wq.clear();
            if conn.pending == 0 && !conn.cleaned {
                self.finalize.push(slot);
            }
            self.mark_dirty(slot);
            return;
        }
        if ev.readable {
            self.read_conn(slot);
        }
        if ev.writable {
            self.mark_dirty(slot);
        }
    }

    fn mark_dirty(&mut self, slot: usize) {
        if !self.dirty.contains(&slot) {
            self.dirty.push(slot);
        }
    }

    fn read_conn(&mut self, slot: usize) {
        let mut budget = READ_BUDGET;
        // EOF is recorded locally and applied only after the parse
        // loop, so every complete frame that arrived before the EOF is
        // still processed — matching the blocking reader, which
        // returns buffered frames before it can observe the EOF.
        let mut saw_eof = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.read_closed {
                return;
            }
            loop {
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        // EOF — also how a half-closed socket (peer
                        // shut down its write side) announces itself;
                        // open transactions get aborted exactly as on
                        // a full disconnect.
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.push(&self.scratch[..n]);
                        conn.last_activity = Instant::now();
                        budget = budget.saturating_sub(n);
                        if budget == 0 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        saw_eof = true;
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        loop {
            let step = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    return;
                };
                if conn.read_closed || conn.dead {
                    break;
                }
                match conn.decoder.next_frame() {
                    Ok(Some(payload)) => match proto::decode_request(payload) {
                        Ok(wreq) => Step::Req(wreq),
                        // Lengths were consistent, so framing is still
                        // in sync: answer id 0, keep the connection.
                        Err(_) => Step::Malformed,
                    },
                    Ok(None) => break,
                    Err(_) => {
                        // Over-large announcement: the stream cannot
                        // be resynchronized; drop the connection like
                        // the blocking reader's InvalidData.
                        conn.read_closed = true;
                        conn.dead = true;
                        break;
                    }
                }
            };
            match step {
                Step::Req(wreq) => self.process_request(slot, wreq),
                Step::Malformed => self.enqueue(
                    slot,
                    WireResponse {
                        id: 0,
                        shard: 0,
                        outcome: WireOutcome::Err(ServeError::Store("malformed request".into())),
                    },
                ),
            }
        }
        if saw_eof {
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.read_closed = true;
            }
        }
        self.after_read(slot);
    }

    /// Post-read bookkeeping: adjust poller interest and queue the
    /// connection for finalize/flush as needed.
    fn after_read(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.read_closed && conn.pending == 0 && !conn.cleaned {
            self.finalize.push(slot);
        }
        self.mark_dirty(slot);
    }

    fn process_request(&mut self, slot: usize, wreq: WireRequest) {
        let wire_id = wreq.id;
        let deadline = wreq.deadline();
        match wreq.body {
            WireBody::Shutdown => {
                self.enqueue(
                    slot,
                    WireResponse {
                        id: wire_id,
                        shard: 0,
                        outcome: WireOutcome::ShutdownAck,
                    },
                );
                self.stop.store(true, Ordering::SeqCst);
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.read_closed = true;
                }
            }
            WireBody::Req(req) => {
                let iid = self.next_iid;
                self.next_iid += 1;
                match self.handle.submit_with_notify(
                    iid,
                    req,
                    deadline,
                    &self.ctx,
                    Some(&self.waker),
                ) {
                    Ok(()) => {
                        self.pending.insert(iid, Owner::Conn { slot, wire_id });
                        self.requests += 1;
                        if let Some(conn) = self.conns[slot].as_mut() {
                            conn.pending += 1;
                        }
                    }
                    Err(SubmitError::Busy(b)) => self.enqueue(
                        slot,
                        WireResponse {
                            id: wire_id,
                            shard: b.shard,
                            outcome: WireOutcome::Busy(b),
                        },
                    ),
                    Err(SubmitError::Rejected(e)) => self.enqueue(
                        slot,
                        WireResponse {
                            id: wire_id,
                            shard: 0,
                            outcome: WireOutcome::Err(e),
                        },
                    ),
                }
            }
        }
    }

    fn enqueue(&mut self, slot: usize, resp: WireResponse) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if !conn.dead {
            conn.wq.push(&resp);
        }
        self.mark_dirty(slot);
    }

    fn drain_completions(&mut self) {
        while let Ok(resp) = self.crx.try_recv() {
            match self.pending.remove(&resp.id) {
                Some(Owner::Conn { slot, wire_id }) => {
                    let Some(conn) = self.conns[slot].as_mut() else {
                        continue;
                    };
                    conn.pending -= 1;
                    match &resp.result {
                        Ok(Reply::TxnStarted { txn }) => {
                            conn.open_txns.insert((resp.shard, *txn));
                        }
                        Ok(Reply::Committed { txn }) | Ok(Reply::Aborted { txn }) => {
                            conn.open_txns.remove(&(resp.shard, *txn));
                        }
                        _ => {}
                    }
                    if !conn.dead {
                        conn.wq.push(&WireResponse {
                            id: wire_id,
                            shard: resp.shard,
                            outcome: match resp.result {
                                Ok(reply) => WireOutcome::Reply(reply),
                                Err(e) => WireOutcome::Err(e),
                            },
                        });
                    }
                    if conn.read_closed && conn.pending == 0 && !conn.cleaned {
                        self.finalize.push(slot);
                    }
                    self.mark_dirty(slot);
                }
                Some(Owner::Cleanup) | None => {}
            }
        }
    }

    /// Submit the disconnect cleanup for a connection whose read side
    /// is closed and whose admitted requests have all completed: abort
    /// every transaction it left open. Runs once per connection; an
    /// already-resolved transaction surfaces as `NoSuchTxn` and is
    /// discarded.
    fn run_finalize(&mut self) {
        while let Some(slot) = self.finalize.pop() {
            let orphans: Vec<(u32, u64)> = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if conn.cleaned || !conn.read_closed || conn.pending > 0 {
                    continue;
                }
                conn.cleaned = true;
                conn.open_txns.drain().collect()
            };
            for (shard, txn) in orphans {
                self.submit_cleanup(shard, txn);
            }
            self.maybe_close(slot);
        }
    }

    fn submit_cleanup(&mut self, shard: u32, txn: u64) {
        let iid = self.next_iid;
        self.next_iid += 1;
        match self.handle.submit_with_notify(
            iid,
            Request::TxnAbort { shard, txn },
            None,
            &self.ctx,
            Some(&self.waker),
        ) {
            Ok(()) => {
                self.pending.insert(iid, Owner::Cleanup);
            }
            Err(SubmitError::Busy(b)) => {
                self.cleanup_retry
                    .push((shard, txn, Instant::now() + b.retry_after));
            }
            // Rejected: the store is already closing; its own drain
            // releases the slot.
            Err(SubmitError::Rejected(_)) => {}
        }
    }

    fn retry_cleanups(&mut self) {
        if self.cleanup_retry.is_empty() {
            return;
        }
        let now = Instant::now();
        let due: Vec<(u32, u64)> = {
            let mut due = Vec::new();
            self.cleanup_retry.retain(|&(shard, txn, at)| {
                if at <= now {
                    due.push((shard, txn));
                    false
                } else {
                    true
                }
            });
            due
        };
        for (shard, txn) in due {
            self.submit_cleanup(shard, txn);
        }
    }

    fn idle_sweep(&mut self) {
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let expire = match &self.conns[slot] {
                Some(c) => !c.read_closed && now.duration_since(c.last_activity) > timeout,
                None => false,
            };
            if expire {
                self.close_read_side(slot);
            }
        }
    }

    /// Stop reading a connection (server drain or idle timeout): parse
    /// no more frames, finish delivering what was admitted, then abort
    /// its leftover transactions and close.
    fn close_read_side(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if !conn.read_closed {
            conn.read_closed = true;
        }
        if conn.pending == 0 && !conn.cleaned {
            self.finalize.push(slot);
        }
        self.mark_dirty(slot);
    }

    fn flush_dirty(&mut self) {
        while let Some(slot) = self.dirty.pop() {
            self.try_flush(slot);
        }
    }

    fn try_flush(&mut self, slot: usize) {
        {
            let poller = &mut self.poller;
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.dead {
                conn.wq.clear();
            } else if let Err(_e) = conn.wq.flush(conn.fd) {
                // Dead client: discard its output, keep draining its
                // admitted completions (never couple workers to a
                // client's fate).
                conn.dead = true;
                conn.wq.clear();
            }
            let want_r = !conn.read_closed;
            let want_w = !conn.wq.is_empty() && !conn.dead;
            if (want_r, want_w) != (conn.reg_read, conn.reg_write) {
                let _ = poller.modify(conn.fd, TOK_BASE + slot as u64, want_r, want_w);
                conn.reg_read = want_r;
                conn.reg_write = want_w;
            }
        }
        self.maybe_close(slot);
    }

    /// Close once the state machine is finished: read side closed,
    /// cleanup submitted, and the write queue flushed (or the socket
    /// dead).
    fn maybe_close(&mut self, slot: usize) {
        let close = match self.conns[slot].as_ref() {
            Some(c) => c.cleaned && (c.wq.is_empty() || c.dead),
            None => false,
        };
        if close {
            let conn = self.conns[slot].take().expect("checked above");
            self.poller.deregister(conn.fd);
            drop(conn);
            self.live -= 1;
            self.free_pending.push(slot);
        }
    }
}
