#![warn(missing_docs)]
//! # envy-server — a sharded concurrent front end over the eNVy store
//!
//! The paper's §6 scalability discussion grows eNVy beyond one datapath
//! by putting **multiple controllers over independent banks**. This
//! crate reproduces that organization as a serving layer: the logical
//! word address space is statically sharded across N independent
//! [`envy_core::EnvyStore`] instances — one per worker thread,
//! shared-nothing — fronted by an admission-controlled request plane.
//!
//! * [`shard`] — the in-process client API: [`ShardedStore`] with
//!   bounded per-shard MPSC request queues, batch-drain dispatch (up to
//!   K requests per dispatch), typed completions, explicit backpressure
//!   ([`Busy`] with a retry hint — never silent blocking), per-request
//!   deadlines, and a graceful shutdown that drains every queue.
//! * [`proto`] — a length-prefixed binary wire protocol for the same
//!   request set.
//! * [`net`] — TCP and Unix-socket serving with two interchangeable
//!   connection drivers (a readiness-driven event loop, default, and
//!   the original thread-per-connection model — see [`NetDriver`]),
//!   plus a blocking/pipelined [`Client`].
//! * [`evloop`] — the event-loop internals: an epoll/poll readiness
//!   shim over raw syscalls, a cross-thread [`Waker`], and the
//!   per-connection state machines.
//! * [`loadgen`] — an open- and closed-loop multi-client load generator
//!   driving a skewed TPC-A-style mix (reusing [`envy_workload`]).
//!
//! The `envy-served` binary wraps [`net::serve`] as a daemon; see
//! `docs/SERVING.md` for the frame layout, the sharding function, the
//! backpressure contract, and the shutdown semantics.
//!
//! ## Quickstart
//!
//! ```
//! use envy_server::{Request, Reply, ServeConfig, ShardedStore};
//!
//! let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
//! let handle = store.handle();
//! handle
//!     .call(Request::Write { addr: 4096, bytes: b"hello".to_vec() })
//!     .unwrap();
//! match handle.call(Request::Read { addr: 4096, len: 5 }).unwrap() {
//!     Reply::Data(bytes) => assert_eq!(bytes, b"hello"),
//!     other => panic!("unexpected reply {other:?}"),
//! }
//! let outcome = store.shutdown();
//! assert_eq!(outcome.total_served(), 2);
//! ```

pub mod evloop;
pub mod loadgen;
pub mod net;
pub mod proto;
pub mod shard;

pub use evloop::{raise_nofile, Waker};
pub use loadgen::{
    run_inproc, run_monolithic, run_socket, ycsb_load_requests, LoadMode, LoadReport, LoadSpec,
};
pub use net::{
    serve, serve_with, Client, ClientError, Listener, NetConfig, NetDriver, ServeSummary,
    ServerHandle,
};
pub use proto::{WireBody, WireRequest};
pub use shard::{
    Busy, ReadPath, Reply, Request, Response, ServeConfig, ServeError, ServeOutcome, ShardHandle,
    ShardOutcome, ShardPlan, ShardedStore, SubmitError, DEPTH_COLUMNS, KV_SCAN_LIMIT,
};
