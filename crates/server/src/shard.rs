//! The sharded in-process serving core.
//!
//! A [`ShardedStore`] statically partitions the logical word address
//! space across N independent [`EnvyStore`] instances — one per worker
//! thread, shared-nothing, modeling §6's multiple-controller
//! organization. Clients talk to it through a cheap, cloneable
//! [`ShardHandle`]:
//!
//! * **Bounded admission**: each shard has a bounded MPSC request queue.
//!   A full queue rejects the request with [`Busy`] carrying a
//!   `retry_after` hint — submission never blocks silently.
//! * **Batched dispatch**: a worker drains up to `batch_max` queued
//!   requests per wakeup and executes them back-to-back, amortizing
//!   wakeup cost exactly like a device-queue doorbell.
//! * **Typed completions**: every admitted request produces exactly one
//!   [`Response`] on the completion channel supplied at submit time,
//!   even across graceful shutdown.
//! * **Deadlines**: a request whose deadline has passed when the worker
//!   picks it up completes with [`ServeError::DeadlineExceeded`] instead
//!   of executing.
//!
//! Within a shard, requests execute in admission order on the shard's
//! own simulated clock (`now = store.now()`, back-to-back), so a shard's
//! simulated-time metrics depend only on the request subsequence it
//! received — the determinism anchor the differential tests pin.

use envy_core::{EnvyConfig, EnvyError, EnvyStats, EnvyStore, ReadView, TraceEvent, TxnMemory};
use envy_sim::stats::TimeSeries;
use envy_sim::time::Ns;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Columns of the per-shard queue-depth [`TimeSeries`] sampled at each
/// dispatch: queue depth at dispatch (including the drained batch), the
/// drained batch size, and cumulative completions.
pub const DEPTH_COLUMNS: &[&str] = &["depth", "batch", "served"];

/// Fallback per-request service estimate before the first measurement.
const EST_INIT_NS: u64 = 2_000;
/// Bounds on the [`Busy::retry_after`] hint.
const RETRY_MIN: Duration = Duration::from_micros(1);
const RETRY_MAX: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------------
// Requests, replies, errors
// ---------------------------------------------------------------------

/// One serving request against the global sharded address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read `len` bytes at global address `addr`.
    Read {
        /// Global byte address.
        addr: u64,
        /// Bytes to read.
        len: u32,
    },
    /// Write bytes at global address `addr`.
    Write {
        /// Global byte address.
        addr: u64,
        /// Payload.
        bytes: Vec<u8>,
    },
    /// Drain the target shard's write buffer to Flash. Routed by `shard`
    /// (a flush is per-controller, not per-address).
    Flush {
        /// Shard to flush.
        shard: u32,
    },
    /// Liveness probe; completes without touching the store.
    Ping {
        /// Shard to bounce the probe off.
        shard: u32,
    },
    /// Open a transaction on one shard. Up to the configured number of
    /// transaction slots may be open concurrently per controller
    /// (default 1, the paper's §6 single hardware transaction), each
    /// isolated by its per-page write set. Replies
    /// [`Reply::TxnStarted`] with the id every subsequent transactional
    /// request must carry.
    TxnBegin {
        /// Shard to open the transaction on.
        shard: u32,
    },
    /// Write bytes at global address `addr` under the open transaction
    /// `txn`. Routed by address like [`Request::Write`]; the target
    /// shard must be the one that started `txn`, or the request fails
    /// with [`ServeError::NoSuchTxn`].
    TxnWrite {
        /// Global byte address.
        addr: u64,
        /// Payload.
        bytes: Vec<u8>,
        /// The transaction id from [`Reply::TxnStarted`].
        txn: u64,
    },
    /// Commit the open transaction: all of its writes become durable
    /// atomically (see `docs/TRANSACTIONS.md`).
    TxnCommit {
        /// Shard that owns the transaction.
        shard: u32,
        /// The transaction id.
        txn: u64,
    },
    /// Abort the open transaction: every page it touched reverts to its
    /// pre-transaction image.
    TxnAbort {
        /// Shard that owns the transaction.
        shard: u32,
        /// The transaction id.
        txn: u64,
    },
    /// Look up a key in the target shard's KV region (see
    /// `docs/KV.md`). Routed by `shard`: the key space is partitioned
    /// by the client (key → shard), not by byte address.
    KvGet {
        /// Shard whose KV region holds the key.
        shard: u32,
        /// The key.
        key: u64,
    },
    /// Insert or replace a key in the target shard's KV region.
    KvPut {
        /// Shard whose KV region holds the key.
        shard: u32,
        /// The key.
        key: u64,
        /// Open transaction to run under (`0` = standalone: the put is
        /// its own atomic unit). A nonzero id must come from
        /// [`Reply::TxnStarted`] on the same shard.
        txn: u64,
        /// The value (at most [`envy_kv::MAX_VALUE`] bytes).
        value: Vec<u8>,
    },
    /// Delete a key from the target shard's KV region.
    KvDelete {
        /// Shard whose KV region holds the key.
        shard: u32,
        /// The key.
        key: u64,
        /// Open transaction to run under (`0` = standalone).
        txn: u64,
    },
    /// Ordered range read: up to `limit` records with key ≥ `start`,
    /// ascending, from the target shard's KV region. `limit` is capped
    /// at [`KV_SCAN_LIMIT`] server-side so a reply always fits a wire
    /// frame.
    KvScan {
        /// Shard whose KV region to scan.
        shard: u32,
        /// First key of the range (inclusive).
        start: u64,
        /// Maximum records to return.
        limit: u32,
    },
}

/// A successful completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Read data.
    Data(Vec<u8>),
    /// Write completed; `latency` is the simulated access latency.
    Done {
        /// Simulated latency of the write.
        latency: Ns,
    },
    /// The shard's write buffer was drained.
    Flushed,
    /// Ping answer.
    Pong,
    /// A transaction opened; carry this id in every
    /// [`Request::TxnWrite`] / commit / abort for it.
    TxnStarted {
        /// The new transaction's id.
        txn: u64,
    },
    /// The transaction committed — all of its writes are durable.
    Committed {
        /// The committed transaction's id.
        txn: u64,
    },
    /// The transaction rolled back — none of its writes survive.
    Aborted {
        /// The aborted transaction's id.
        txn: u64,
    },
    /// Answer to [`Request::KvGet`]: the value, or `None` on a miss.
    KvValue(Option<Vec<u8>>),
    /// Answer to [`Request::KvPut`]: the record is stored (durably so
    /// only once the owning transaction — or the standalone op — has
    /// committed through the journal).
    KvPutDone,
    /// Answer to [`Request::KvDelete`].
    KvDeleted {
        /// Whether the key existed before the delete.
        existed: bool,
    },
    /// Answer to [`Request::KvScan`]: `(key, value)` records in
    /// ascending key order.
    KvRange(Vec<(u64, Vec<u8>)>),
}

/// A typed serving failure (always delivered as a completion or a
/// submit-time rejection — requests never disappear).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's deadline passed before a worker dispatched it.
    DeadlineExceeded,
    /// The byte range spans two shard slices; a request must be served
    /// by exactly one controller.
    CrossesShard {
        /// Offending global address.
        addr: u64,
        /// Access length.
        len: u64,
    },
    /// The address falls outside the global logical array.
    OutOfBounds {
        /// Offending global address.
        addr: u64,
        /// Global logical size in bytes.
        size: u64,
    },
    /// Every transaction slot on the target shard is occupied; commit
    /// or abort one first. Carries no id: transaction ids are
    /// capability-like (knowing one is enough to write under it), so a
    /// refusal never leaks a foreign transaction's id.
    TxnBusy,
    /// The transaction id is not open on the target shard (never
    /// started there, already committed, or already aborted).
    NoSuchTxn {
        /// The offending id.
        txn: u64,
    },
    /// The page is in another open transaction's write set. An abort
    /// decision, not a busy-wait: retry the whole transaction (or the
    /// plain write) after backing off. Carries no id — see
    /// [`ServeError::TxnBusy`] on why refusals never name the holder.
    TxnConflict,
    /// The front end is shutting down and no longer admits requests.
    ShuttingDown,
    /// The shard's controller failed the operation.
    Store(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
            ServeError::CrossesShard { addr, len } => {
                write!(f, "range {addr:#x}+{len} crosses a shard boundary")
            }
            ServeError::OutOfBounds { addr, size } => {
                write!(f, "address {addr:#x} outside sharded array of {size} bytes")
            }
            ServeError::ShuttingDown => write!(f, "front end is shutting down"),
            ServeError::TxnBusy => {
                write!(f, "all transaction slots on this shard are occupied")
            }
            ServeError::NoSuchTxn { txn } => {
                write!(f, "no open transaction {txn} on this shard")
            }
            ServeError::TxnConflict => {
                write!(f, "page is in another open transaction's write set")
            }
            ServeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Explicit backpressure: the target shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// The saturated shard.
    pub shard: u32,
    /// Suggested wait before retrying: the shard's estimated per-request
    /// service time times its queue depth, clamped to sane bounds.
    pub retry_after: Duration,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue full — retry after the hint. The request was **not**
    /// admitted and will produce no completion.
    Busy(Busy),
    /// Rejected outright (bad range, shutdown); no completion follows.
    Rejected(ServeError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy(b) => {
                write!(f, "shard {} busy, retry after {:?}", b.shard, b.retry_after)
            }
            SubmitError::Rejected(e) => write!(f, "rejected: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A typed completion, delivered on the channel supplied at submit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The id returned by [`ShardHandle::submit`].
    pub id: u64,
    /// The shard that served the request.
    pub shard: u32,
    /// Outcome.
    pub result: Result<Reply, ServeError>,
}

// ---------------------------------------------------------------------
// Sharding function
// ---------------------------------------------------------------------

/// The static sharding function: shard `i` owns the contiguous slice
/// `[i * shard_bytes, (i + 1) * shard_bytes)` of the global logical
/// byte-address space. Slices are whole numbers of pages (a shard's
/// logical array), so a word access can only cross a shard boundary by
/// actually spanning two slices — which is rejected, never split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: u32,
    shard_bytes: u64,
}

impl ShardPlan {
    /// A plan of `shards` slices of `shard_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(shards: u32, shard_bytes: u64) -> ShardPlan {
        assert!(shards > 0, "at least one shard");
        assert!(shard_bytes > 0, "shards must be non-empty");
        ShardPlan {
            shards,
            shard_bytes,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Bytes per shard slice.
    pub fn shard_bytes(&self) -> u64 {
        self.shard_bytes
    }

    /// Total logical bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shard_bytes * self.shards as u64
    }

    /// Base global address of a shard's slice.
    pub fn base_of(&self, shard: u32) -> u64 {
        self.shard_bytes * shard as u64
    }

    /// Route a byte range: `(shard, local address)`.
    ///
    /// # Errors
    ///
    /// [`ServeError::OutOfBounds`] if the range exceeds the global
    /// array, [`ServeError::CrossesShard`] if it spans two slices.
    pub fn locate(&self, addr: u64, len: u64) -> Result<(u32, u64), ServeError> {
        let size = self.total_bytes();
        if addr >= size || len > size - addr {
            return Err(ServeError::OutOfBounds { addr, size });
        }
        let shard = addr / self.shard_bytes;
        let last = addr + len.saturating_sub(1);
        if last / self.shard_bytes != shard {
            return Err(ServeError::CrossesShard { addr, len });
        }
        Ok((shard as u32, addr - shard * self.shard_bytes))
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// How read-only requests are executed.
///
/// Writes, flushes and all background machinery (timing replay,
/// cleaning, wear leveling) always run on the shard's single writer
/// thread; this knob only moves reads off it. The concurrent paths use
/// the store's lock-free [`ReadView`] — optimistic seqlock copies
/// validated against the writer's epoch — so they bypass the simulated
/// latency model and the controller's read statistics entirely. See
/// `docs/CONCURRENCY.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Legacy single-threaded path: reads queue behind writes on the
    /// shard worker and replay the timing model. Bit-for-bit identical
    /// to the pre-concurrency front end — the differential anchor.
    #[default]
    Timed,
    /// Reads execute immediately on the *submitting* thread via the
    /// shard's [`ReadView`]; only mutations are queued. Cheapest path:
    /// no queue hop, no wakeup — reads scale with client threads.
    Inline,
    /// `n ≥ 1` dedicated reader threads per shard; reads are fanned out
    /// round-robin to bounded per-reader queues (full queues reject
    /// [`Busy`], like the writer queue).
    Readers(u32),
}

/// Configuration of a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards (worker threads / independent controllers).
    pub shards: u32,
    /// Per-shard store configuration (every shard is identical).
    pub store: EnvyConfig,
    /// Bounded per-shard queue capacity; a full queue returns
    /// [`Busy`].
    pub queue_capacity: usize,
    /// Maximum requests drained per dispatch.
    pub batch_max: usize,
    /// Prefill each shard at the configured utilization before serving.
    pub prefill: bool,
    /// Enable controller tracing (including serve enqueue / dispatch /
    /// complete events) with this ring capacity.
    pub trace_capacity: Option<usize>,
    /// Wall-clock window of the per-shard queue-depth time series.
    pub depth_window: Duration,
    /// Rows retained per shard in the queue-depth series.
    pub depth_rows: usize,
    /// Artificial per-request service delay (wall clock) — a pacing and
    /// test knob modeling a slower device; `None` in production.
    pub service_delay: Option<Duration>,
    /// How read-only requests are executed (see [`ReadPath`]).
    pub read_path: ReadPath,
}

impl ServeConfig {
    /// A small functional configuration (the `small_test` store per
    /// shard) — unit tests, examples, smoke runs.
    pub fn small(shards: u32) -> ServeConfig {
        ServeConfig {
            shards,
            store: EnvyConfig::small_test(),
            queue_capacity: 256,
            batch_max: 32,
            prefill: true,
            trace_capacity: None,
            depth_window: Duration::from_millis(10),
            depth_rows: 1_024,
            service_delay: None,
            read_path: ReadPath::Timed,
        }
    }

    /// A scaled serving configuration: each shard is a scaled-down
    /// timing array (8 banks, 64 segments of 2 048 × 256-byte pages,
    /// state-only payload) with a 64-bit host bus — the per-controller
    /// building block of the §6 multi-controller organization.
    pub fn scaled(shards: u32) -> ServeConfig {
        let mut store = EnvyConfig::scaled(8, 64, 2_048, 256).with_store_data(false);
        store.word_bytes = 8;
        // Keep erase work per reclaimed page equal to the paper's
        // 50 ms / 65 536 (same scaling rule as the bench harness).
        store.timings.erase = Ns::from_nanos(50_000_000u64 * 2_048 / 65_536);
        ServeConfig {
            shards,
            store: store.with_utilization(0.8),
            queue_capacity: 1_024,
            batch_max: 64,
            prefill: true,
            trace_capacity: None,
            depth_window: Duration::from_millis(10),
            depth_rows: 4_096,
            service_delay: None,
            read_path: ReadPath::Timed,
        }
    }

    /// Set the bounded queue capacity (builder-style).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Set the dispatch batch bound (builder-style).
    #[must_use]
    pub fn with_batch_max(mut self, batch: usize) -> ServeConfig {
        self.batch_max = batch;
        self
    }

    /// Set the artificial per-request service delay (builder-style).
    #[must_use]
    pub fn with_service_delay(mut self, delay: Duration) -> ServeConfig {
        self.service_delay = Some(delay);
        self
    }

    /// Set the read execution path (builder-style).
    #[must_use]
    pub fn with_read_path(mut self, path: ReadPath) -> ServeConfig {
        self.read_path = path;
        self
    }

    /// Set the number of concurrent transaction slots per shard
    /// (builder-style). The default of 1 is the paper-faithful
    /// configuration; raising it lets several transactions interleave
    /// on one controller, isolated by per-page write sets.
    #[must_use]
    pub fn with_txn_slots(mut self, slots: u32) -> ServeConfig {
        self.store.txn_slots = slots;
        self
    }
}

// ---------------------------------------------------------------------
// Jobs and worker state
// ---------------------------------------------------------------------

struct Job {
    id: u64,
    req: Request,
    deadline: Option<Instant>,
    reply: Sender<Response>,
    /// Rung after the completion is posted, so a parked event loop
    /// wakes without polling the channel (see
    /// [`ShardHandle::submit_with_notify`]).
    notify: Option<Arc<crate::evloop::Waker>>,
}

struct ShardLink {
    tx: SyncSender<Job>,
    depth: Arc<AtomicUsize>,
    est_ns: Arc<AtomicU64>,
}

/// Counters shared between the submit path, the reader threads and
/// shutdown reporting.
#[derive(Debug, Default)]
struct ReadCounters {
    /// Reads completed off the writer thread.
    offloaded: AtomicU64,
    /// Optimistic-read retries (epoch conflicts) across those reads.
    retries: AtomicU64,
}

/// Per-shard concurrent-read machinery (absent under
/// [`ReadPath::Timed`]).
struct ShardReaders {
    /// Lock-free view of the shard's store, for inline execution.
    view: ReadView,
    /// Bounded per-reader queues (empty under [`ReadPath::Inline`]).
    queues: Vec<SyncSender<Job>>,
    /// Round-robin cursor over `queues`.
    rr: AtomicUsize,
    counters: Arc<ReadCounters>,
}

/// Execute one shard-local read via a lock-free view and deliver its
/// completion. Shared by the inline path and the reader threads.
fn view_read(
    view: &ReadView,
    counters: &ReadCounters,
    shard: u32,
    id: u64,
    addr: u64,
    len: u32,
    reply: &Sender<Response>,
) {
    let mut buf = vec![0u8; len as usize];
    let result = match view.read(addr, &mut buf) {
        Ok(r) => {
            counters.retries.fetch_add(r, Ordering::Relaxed);
            Ok(Reply::Data(buf))
        }
        Err(EnvyError::OutOfBounds { addr, .. }) => Err(ServeError::OutOfBounds {
            addr,
            size: view.size(),
        }),
        Err(e) => Err(ServeError::Store(e.to_string())),
    };
    counters.offloaded.fetch_add(1, Ordering::Relaxed);
    let _ = reply.send(Response { id, shard, result });
}

/// A dedicated reader thread: drains its bounded queue, executing each
/// read against the shard's lock-free view. Exits once the close flag
/// is up and the queue is empty (every admitted read still completes)
/// or all submitters are gone.
fn run_reader(
    shard: u32,
    view: ReadView,
    rx: Receiver<Job>,
    closed: &Closed,
    counters: &ReadCounters,
) {
    loop {
        let job = match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !closed.load(Ordering::SeqCst) {
                    continue;
                }
                match rx.try_recv() {
                    Ok(job) => job,
                    Err(_) => break,
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        if job.deadline.is_some_and(|d| Instant::now() > d) {
            let _ = job.reply.send(Response {
                id: job.id,
                shard,
                result: Err(ServeError::DeadlineExceeded),
            });
            if let Some(w) = &job.notify {
                w.wake();
            }
            continue;
        }
        match job.req {
            Request::Read { addr, len } => {
                view_read(&view, counters, shard, job.id, addr, len, &job.reply);
            }
            // Routing sends only reads here.
            other => {
                let _ = job.reply.send(Response {
                    id: job.id,
                    shard,
                    result: Err(ServeError::Store(format!(
                        "non-read request {other:?} routed to a reader"
                    ))),
                });
            }
        }
        if let Some(w) = &job.notify {
            w.wake();
        }
    }
}

/// Shared close flag: set once by [`ShardedStore::shutdown`]; checked by
/// submitters (reject new work) and workers (exit once drained).
type Closed = Arc<AtomicBool>;

/// What one shard worker hands back at shutdown.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: u32,
    /// The shard's store (final contents, stats, simulated clock).
    pub store: EnvyStore,
    /// Completions posted (including typed failures).
    pub served: u64,
    /// Requests that expired before dispatch.
    pub timed_out: u64,
    /// Dispatch batches drained.
    pub batches: u64,
    /// Largest batch drained in one dispatch.
    pub max_batch: u32,
    /// Queue-depth samples over wall-clock time.
    pub depth_series: TimeSeries,
    /// Reads served off the writer thread (inline or by reader
    /// threads); 0 under [`ReadPath::Timed`]. These bypass the timing
    /// model, so they are *not* in the store's `host_reads`.
    pub reads_offloaded: u64,
    /// Optimistic-read retries (seqlock conflicts) across those reads.
    pub read_retries: u64,
}

/// Everything a [`ShardedStore::shutdown`] returns: per-shard outcomes,
/// in shard order.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-shard worker outcomes.
    pub shards: Vec<ShardOutcome>,
}

impl ServeOutcome {
    /// Aggregate controller statistics across all shards (see
    /// [`EnvyStats::merge`]).
    pub fn aggregate_stats(&self) -> EnvyStats {
        let mut all = EnvyStats::default();
        for s in &self.shards {
            all.merge(s.store.stats());
        }
        all
    }

    /// The slowest shard's simulated clock — the fleet's simulated
    /// makespan for its share of the workload.
    pub fn max_sim_time(&self) -> Ns {
        self.shards
            .iter()
            .map(|s| s.store.now())
            .max()
            .unwrap_or(Ns::ZERO)
    }

    /// Total completions posted across shards.
    pub fn total_served(&self) -> u64 {
        self.shards.iter().map(|s| s.served).sum()
    }

    /// Total deadline expiries across shards.
    pub fn total_timed_out(&self) -> u64 {
        self.shards.iter().map(|s| s.timed_out).sum()
    }

    /// Total reads served off the writer threads across shards.
    pub fn total_reads_offloaded(&self) -> u64 {
        self.shards.iter().map(|s| s.reads_offloaded).sum()
    }

    /// Total optimistic-read retries across shards.
    pub fn total_read_retries(&self) -> u64 {
        self.shards.iter().map(|s| s.read_retries).sum()
    }
}

// ---------------------------------------------------------------------
// The sharded store
// ---------------------------------------------------------------------

/// A cheap, cloneable submission handle to a [`ShardedStore`].
///
/// Handles may outlive the store: once [`ShardedStore::shutdown`]
/// begins, every submission through any clone is rejected with
/// [`ServeError::ShuttingDown`].
#[derive(Clone)]
pub struct ShardHandle {
    plan: ShardPlan,
    links: Arc<Vec<ShardLink>>,
    next_id: Arc<AtomicU64>,
    closed: Closed,
    /// One entry per shard when a concurrent read path is configured.
    readers: Option<Arc<Vec<ShardReaders>>>,
}

impl fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardHandle")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// The sharded serving front end: owns the worker threads; see the
/// [module docs](self) for the contract.
#[derive(Debug)]
pub struct ShardedStore {
    handle: ShardHandle,
    workers: Vec<JoinHandle<ShardOutcome>>,
    reader_threads: Vec<JoinHandle<()>>,
}

impl ShardedStore {
    /// Build and launch: one prefilled store per shard (forked from a
    /// single baseline so every shard starts byte-identical), one worker
    /// thread per shard.
    ///
    /// # Errors
    ///
    /// [`EnvyError`] if the per-shard configuration is invalid or the
    /// prefill fails.
    pub fn launch(config: ServeConfig) -> Result<ShardedStore, EnvyError> {
        let mut baseline = EnvyStore::new(config.store.clone())?;
        if config.prefill {
            baseline.prefill()?;
        }
        let stores = (0..config.shards).map(|_| baseline.fork()).collect();
        Ok(ShardedStore::launch_from(stores, &config))
    }

    /// Launch over caller-built stores (e.g. forks of a churned
    /// steady-state baseline). All stores must have the same logical
    /// size; `config.shards` is ignored in favor of `stores.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `stores` is empty or the stores disagree on size.
    pub fn launch_from(stores: Vec<EnvyStore>, config: &ServeConfig) -> ShardedStore {
        assert!(!stores.is_empty(), "at least one shard store");
        let shard_bytes = stores[0].size();
        assert!(
            stores.iter().all(|s| s.size() == shard_bytes),
            "every shard must own an identical slice"
        );
        let plan = ShardPlan::new(stores.len() as u32, shard_bytes);
        let closed: Closed = Arc::new(AtomicBool::new(false));
        let per_shard_readers = match config.read_path {
            ReadPath::Timed => None,
            ReadPath::Inline => Some(0),
            ReadPath::Readers(n) => {
                assert!(n >= 1, "ReadPath::Readers needs at least one reader");
                Some(n as usize)
            }
        };
        let mut links = Vec::with_capacity(stores.len());
        let mut workers = Vec::with_capacity(stores.len());
        let mut reader_threads = Vec::new();
        let mut shard_readers = Vec::with_capacity(stores.len());
        for (i, mut store) in stores.into_iter().enumerate() {
            if let Some(capacity) = config.trace_capacity {
                store.enable_trace(capacity);
            }
            // Caller-built stores (forks of a shared baseline) carry the
            // baseline's slot table; the serve config is authoritative.
            store.set_txn_slots(config.store.txn_slots);
            // Disjoint id residues per shard: shard i issues ids
            // i+1, i+1+N, ... so a transaction id can never match on
            // the wrong shard (a misrouted TxnWrite is refused with
            // NoSuchTxn instead of silently joining a foreign
            // transaction). A single shard degenerates to 1, 2, 3, ...
            // — identical to a monolithic store, which the digest
            // anchors rely on.
            store.seed_txn_ids(i as u64 + 1, plan.shards() as u64);
            if let Some(n) = per_shard_readers {
                let view = store.read_view();
                let counters = Arc::new(ReadCounters::default());
                let mut queues = Vec::with_capacity(n);
                for r in 0..n {
                    let (qtx, qrx) = mpsc::sync_channel::<Job>(config.queue_capacity);
                    queues.push(qtx);
                    let view = view.clone();
                    let closed = Arc::clone(&closed);
                    let counters = Arc::clone(&counters);
                    reader_threads.push(
                        std::thread::Builder::new()
                            .name(format!("envy-shard-{i}-reader-{r}"))
                            .spawn(move || run_reader(i as u32, view, qrx, &closed, &counters))
                            .expect("spawn shard reader"),
                    );
                }
                shard_readers.push(ShardReaders {
                    view,
                    queues,
                    rr: AtomicUsize::new(0),
                    counters,
                });
            }
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            let est_ns = Arc::new(AtomicU64::new(EST_INIT_NS));
            let w = Worker {
                shard: i as u32,
                store,
                rx,
                closed: Arc::clone(&closed),
                depth: Arc::clone(&depth),
                est_ns: Arc::clone(&est_ns),
                batch_max: config.batch_max.max(1),
                service_delay: config.service_delay,
                depth_window: Ns::from_nanos(config.depth_window.as_nanos().max(1) as u64),
                depth_rows: config.depth_rows.max(1),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("envy-shard-{i}"))
                    .spawn(move || w.run())
                    .expect("spawn shard worker"),
            );
            links.push(ShardLink { tx, depth, est_ns });
        }
        let readers = per_shard_readers.map(|_| Arc::new(shard_readers));
        ShardedStore {
            handle: ShardHandle {
                plan,
                links: Arc::new(links),
                next_id: Arc::new(AtomicU64::new(0)),
                closed,
                readers,
            },
            workers,
            reader_threads,
        }
    }

    /// The sharding function.
    pub fn plan(&self) -> &ShardPlan {
        &self.handle.plan
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ShardHandle {
        self.handle.clone()
    }

    /// Graceful shutdown: stop admitting (every [`ShardHandle`] clone
    /// now rejects with [`ServeError::ShuttingDown`]), let every worker
    /// drain its queue — every already-admitted request still completes
    /// — then join and return the per-shard outcomes.
    pub fn shutdown(self) -> ServeOutcome {
        self.handle.closed.store(true, Ordering::SeqCst);
        let readers = self.handle.readers.clone();
        drop(self.handle);
        let mut shards: Vec<ShardOutcome> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        for r in self.reader_threads {
            r.join().expect("shard reader panicked");
        }
        if let Some(readers) = readers {
            for (s, r) in shards.iter_mut().zip(readers.iter()) {
                s.reads_offloaded = r.counters.offloaded.load(Ordering::Relaxed);
                s.read_retries = r.counters.retries.load(Ordering::Relaxed);
            }
        }
        ServeOutcome { shards }
    }
}

impl ShardHandle {
    /// The sharding function.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Current depth of a shard's queue (an instantaneous upper bound).
    pub fn queue_depth(&self, shard: u32) -> usize {
        self.links[shard as usize].depth.load(Ordering::Relaxed)
    }

    /// Route a request to its shard without submitting it.
    ///
    /// # Errors
    ///
    /// The same range errors as [`ShardPlan::locate`].
    pub fn route(&self, req: &Request) -> Result<u32, ServeError> {
        match *req {
            Request::Read { addr, len } => self.plan.locate(addr, len as u64).map(|(s, _)| s),
            Request::Write { addr, ref bytes }
            | Request::TxnWrite {
                addr, ref bytes, ..
            } => self.plan.locate(addr, bytes.len() as u64).map(|(s, _)| s),
            Request::Flush { shard }
            | Request::Ping { shard }
            | Request::TxnBegin { shard }
            | Request::TxnCommit { shard, .. }
            | Request::TxnAbort { shard, .. }
            | Request::KvGet { shard, .. }
            | Request::KvPut { shard, .. }
            | Request::KvDelete { shard, .. }
            | Request::KvScan { shard, .. } => {
                if shard < self.plan.shards() {
                    Ok(shard)
                } else {
                    Err(ServeError::OutOfBounds {
                        addr: self.plan.total_bytes(),
                        size: self.plan.total_bytes(),
                    })
                }
            }
        }
    }

    /// Submit a request. On admission the request id is returned and
    /// exactly one [`Response`] with that id will arrive on `reply`.
    /// On [`SubmitError`] nothing was admitted and no completion will
    /// follow — the caller owns the retry.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the shard queue is full,
    /// [`SubmitError::Rejected`] for range errors or shutdown.
    pub fn submit(
        &self,
        req: Request,
        deadline: Option<Duration>,
        reply: &Sender<Response>,
    ) -> Result<u64, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit_with_id(id, req, deadline, reply)?;
        Ok(id)
    }

    /// [`submit`](ShardHandle::submit) with a caller-chosen request id —
    /// the wire layer echoes each client's own ids so completions can be
    /// matched without a translation table. Ids need only be unique per
    /// completion channel.
    ///
    /// # Errors
    ///
    /// As [`submit`](ShardHandle::submit).
    pub fn submit_with_id(
        &self,
        id: u64,
        req: Request,
        deadline: Option<Duration>,
        reply: &Sender<Response>,
    ) -> Result<(), SubmitError> {
        self.submit_with_notify(id, req, deadline, reply, None)
    }

    /// [`submit_with_id`](ShardHandle::submit_with_id) with a
    /// completion wakeup: after the completion is posted to `reply`,
    /// the given [`Waker`](crate::evloop::Waker) is rung so an event
    /// loop parked in `epoll_wait`/`poll` observes it without polling
    /// the channel. Inline reads (see [`ReadPath::Inline`]) complete
    /// synchronously on the calling thread before this returns, so no
    /// wake is issued for them.
    ///
    /// # Errors
    ///
    /// As [`submit`](ShardHandle::submit).
    pub fn submit_with_notify(
        &self,
        id: u64,
        req: Request,
        deadline: Option<Duration>,
        reply: &Sender<Response>,
        notify: Option<&Arc<crate::evloop::Waker>>,
    ) -> Result<(), SubmitError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(SubmitError::Rejected(ServeError::ShuttingDown));
        }
        let shard = self.route(&req).map_err(SubmitError::Rejected)?;
        let link = &self.links[shard as usize];
        let local = match req {
            Request::Read { addr, len } => Request::Read {
                addr: addr - self.plan.base_of(shard),
                len,
            },
            Request::Write { addr, bytes } => Request::Write {
                addr: addr - self.plan.base_of(shard),
                bytes,
            },
            Request::TxnWrite { addr, bytes, txn } => Request::TxnWrite {
                addr: addr - self.plan.base_of(shard),
                bytes,
                txn,
            },
            other => other,
        };
        // Concurrent read path: reads never queue behind mutations.
        if let Some(readers) = &self.readers {
            if let Request::Read { addr, len } = local {
                let sr = &readers[shard as usize];
                if sr.queues.is_empty() {
                    // Inline: execute on this (submitting) thread.
                    view_read(&sr.view, &sr.counters, shard, id, addr, len, reply);
                    return Ok(());
                }
                let n = sr.queues.len();
                let start = sr.rr.fetch_add(1, Ordering::Relaxed) % n;
                let mut job = Job {
                    id,
                    req: Request::Read { addr, len },
                    deadline: deadline.map(|d| Instant::now() + d),
                    reply: reply.clone(),
                    notify: notify.cloned(),
                };
                // Round-robin with overflow onto the next reader; only
                // a full sweep of full queues is Busy.
                for k in 0..n {
                    match sr.queues[(start + k) % n].try_send(job) {
                        Ok(()) => return Ok(()),
                        Err(TrySendError::Full(j)) => job = j,
                        Err(TrySendError::Disconnected(_)) => {
                            return Err(SubmitError::Rejected(ServeError::ShuttingDown))
                        }
                    }
                }
                return Err(SubmitError::Busy(Busy {
                    shard,
                    retry_after: self.retry_hint(shard),
                }));
            }
        }
        let job = Job {
            id,
            req: local,
            deadline: deadline.map(|d| Instant::now() + d),
            reply: reply.clone(),
            notify: notify.cloned(),
        };
        // Count before sending so the worker's decrement can never race
        // the gauge below zero; a rejected send takes the count back.
        link.depth.fetch_add(1, Ordering::Relaxed);
        match link.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(e) => {
                link.depth.fetch_sub(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => Err(SubmitError::Busy(Busy {
                        shard,
                        retry_after: self.retry_hint(shard),
                    })),
                    TrySendError::Disconnected(_) => {
                        Err(SubmitError::Rejected(ServeError::ShuttingDown))
                    }
                }
            }
        }
    }

    /// Blocking convenience: submit with no deadline, retrying through
    /// [`Busy`] backpressure (sleeping each `retry_after`), and wait for
    /// the completion.
    ///
    /// # Errors
    ///
    /// The completion's [`ServeError`], or [`ServeError::ShuttingDown`]
    /// if the front end stops before answering.
    pub fn call(&self, req: Request) -> Result<Reply, ServeError> {
        let (tx, rx) = mpsc::channel();
        loop {
            match self.submit(req.clone(), None, &tx) {
                Ok(_) => break,
                // Not admitted; back off for the hinted interval and retry.
                Err(SubmitError::Busy(b)) => std::thread::sleep(b.retry_after),
                Err(SubmitError::Rejected(e)) => return Err(e),
            }
        }
        match rx.recv() {
            Ok(resp) => resp.result,
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// The backpressure hint for a shard: estimated per-request service
    /// time times the current queue depth, clamped to
    /// `[1 µs, 100 ms]`.
    fn retry_hint(&self, shard: u32) -> Duration {
        let link = &self.links[shard as usize];
        let est = link.est_ns.load(Ordering::Relaxed).max(1);
        let depth = link.depth.load(Ordering::Relaxed).max(1) as u64;
        Duration::from_nanos(est.saturating_mul(depth)).clamp(RETRY_MIN, RETRY_MAX)
    }
}

// ---------------------------------------------------------------------
// Request execution (shared with the differential tests)
// ---------------------------------------------------------------------

/// Execute one shard-local request against a store, exactly as a shard
/// worker does: timed accesses issued back-to-back on the shard's own
/// simulated clock. Public so differential tests can replay a shard's
/// request subsequence against a monolithic store and demand identical
/// bytes, clocks, and statistics.
///
/// # Errors
///
/// Typed [`ServeError`]s; the store itself is left consistent.
pub fn apply(store: &mut EnvyStore, req: &Request) -> Result<Reply, ServeError> {
    match req {
        Request::Read { addr, len } => {
            let mut buf = vec![0u8; *len as usize];
            store
                .read_at(store.now(), *addr, &mut buf)
                .map_err(map_store_err(store))?;
            Ok(Reply::Data(buf))
        }
        Request::Write { addr, bytes } => {
            let access = store
                .write_at(store.now(), *addr, bytes)
                .map_err(map_store_err(store))?;
            Ok(Reply::Done {
                latency: access.latency,
            })
        }
        Request::Flush { .. } => {
            store.flush_all().map_err(map_store_err(store))?;
            Ok(Reply::Flushed)
        }
        Request::Ping { .. } => Ok(Reply::Pong),
        Request::TxnBegin { .. } => {
            let txn = store.txn_begin().map_err(map_store_err(store))?;
            Ok(Reply::TxnStarted { txn })
        }
        Request::TxnWrite { addr, bytes, txn } => {
            // The store checks ownership itself: an unknown id (foreign
            // shard or already closed) is NoSuchTxn before any bytes
            // move, and a page in another open transaction's write set
            // is a conflict refusal.
            let access = store
                .txn_write_at(store.now(), *txn, *addr, bytes)
                .map_err(map_store_err(store))?;
            Ok(Reply::Done {
                latency: access.latency,
            })
        }
        Request::TxnCommit { txn, .. } => {
            store.txn_commit(*txn).map_err(map_store_err(store))?;
            Ok(Reply::Committed { txn: *txn })
        }
        Request::TxnAbort { txn, .. } => {
            store.txn_abort(*txn).map_err(map_store_err(store))?;
            Ok(Reply::Aborted { txn: *txn })
        }
        Request::KvGet { key, .. } => {
            let size = store.size();
            let kv = kv_open(store)?;
            let value = kv.get(store, *key).map_err(map_kv_err(size))?;
            Ok(Reply::KvValue(value))
        }
        Request::KvPut {
            key, txn, value, ..
        } => {
            let size = store.size();
            let mut kv = kv_open(store)?;
            if *txn == 0 {
                kv.put(store, *key, value).map_err(map_kv_err(size))?;
            } else {
                // All index and record writes of this put join the
                // transaction's write set: they revert together on
                // abort and conflict like any other transactional page.
                let mut mem = TxnMemory::new(store, *txn);
                kv.put(&mut mem, *key, value).map_err(map_kv_err(size))?;
            }
            Ok(Reply::KvPutDone)
        }
        Request::KvDelete { key, txn, .. } => {
            let size = store.size();
            let mut kv = kv_open(store)?;
            let existed = if *txn == 0 {
                kv.delete(store, *key).map_err(map_kv_err(size))?
            } else {
                let mut mem = TxnMemory::new(store, *txn);
                kv.delete(&mut mem, *key).map_err(map_kv_err(size))?
            };
            Ok(Reply::KvDeleted { existed })
        }
        Request::KvScan { start, limit, .. } => {
            let size = store.size();
            let kv = kv_open(store)?;
            let limit = (*limit).min(KV_SCAN_LIMIT) as usize;
            let items = kv.scan(store, *start, limit).map_err(map_kv_err(size))?;
            Ok(Reply::KvRange(items))
        }
    }
}

/// Server-side cap on [`Request::KvScan`] result counts: 128 records of
/// [`envy_kv::MAX_VALUE`] bytes is ~526 KiB of reply body, safely under
/// the wire protocol's 1 MiB frame limit.
pub const KV_SCAN_LIMIT: u32 = 128;

/// Open the shard's KV region (the whole logical array, region base 0),
/// creating it on first touch. Erased Flash reads back as `0xFF`, so a
/// fresh shard can never alias the magic and the create is reached on
/// exactly the first KV request — deterministically, in both the worker
/// and the monolithic-replay execution paths.
fn kv_open(store: &mut EnvyStore) -> Result<envy_kv::KvStore, ServeError> {
    let size = store.size();
    match envy_kv::KvStore::open(store, 0) {
        Ok(kv) => Ok(kv),
        Err(envy_kv::KvError::BadMagic) => {
            envy_kv::KvStore::create(store, 0, size).map_err(map_kv_err(size))
        }
        Err(e) => Err(map_kv_err(size)(e)),
    }
}

fn map_kv_err(size: u64) -> impl Fn(envy_kv::KvError) -> ServeError {
    move |e| match e {
        // Transaction machinery surfaces through the memory layer when
        // the KV store runs over TxnMemory; route those to the same
        // typed refusals the raw transactional ops use.
        envy_kv::KvError::Memory(EnvyError::OutOfBounds { addr, .. }) => {
            ServeError::OutOfBounds { addr, size }
        }
        envy_kv::KvError::Memory(EnvyError::TxnSlotsFull { .. }) => ServeError::TxnBusy,
        envy_kv::KvError::Memory(EnvyError::NoSuchTxn { txn }) => ServeError::NoSuchTxn { txn },
        envy_kv::KvError::Memory(EnvyError::TxnConflict { .. }) => ServeError::TxnConflict,
        other => ServeError::Store(other.to_string()),
    }
}

fn map_store_err(store: &EnvyStore) -> impl Fn(EnvyError) -> ServeError + '_ {
    let size = store.size();
    move |e| match e {
        EnvyError::OutOfBounds { addr, .. } => ServeError::OutOfBounds { addr, size },
        EnvyError::TxnSlotsFull { .. } => ServeError::TxnBusy,
        EnvyError::NoSuchTxn { txn } => ServeError::NoSuchTxn { txn },
        // The holder's id stops here: it is controller-side diagnostic
        // state, never echoed to a peer that does not own it.
        EnvyError::TxnConflict { .. } => ServeError::TxnConflict,
        other => ServeError::Store(other.to_string()),
    }
}

struct Worker {
    shard: u32,
    store: EnvyStore,
    rx: Receiver<Job>,
    closed: Closed,
    depth: Arc<AtomicUsize>,
    est_ns: Arc<AtomicU64>,
    batch_max: usize,
    service_delay: Option<Duration>,
    depth_window: Ns,
    depth_rows: usize,
}

impl Worker {
    fn run(mut self) -> ShardOutcome {
        let started = Instant::now();
        let mut series = TimeSeries::new(self.depth_window, DEPTH_COLUMNS, self.depth_rows);
        let mut batch: Vec<Job> = Vec::with_capacity(self.batch_max);
        let mut served = 0u64;
        let mut timed_out = 0u64;
        let mut batches = 0u64;
        let mut max_batch = 0u32;
        // Exit either when every sender is gone (the queue yields all
        // remaining jobs before reporting disconnect) or when the close
        // flag is up and the queue has gone empty — both guarantee the
        // drain: every admitted request still completes.
        loop {
            let first = match self.rx.recv_timeout(Duration::from_millis(10)) {
                Ok(job) => job,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !self.closed.load(Ordering::SeqCst) {
                        continue;
                    }
                    match self.rx.try_recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            batch.push(first);
            while batch.len() < self.batch_max {
                match self.rx.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
            let n = batch.len();
            self.depth.fetch_sub(n, Ordering::Relaxed);
            batches += 1;
            max_batch = max_batch.max(n as u32);
            let wall = Ns::from_nanos(started.elapsed().as_nanos() as u64);
            if series.due(wall) {
                series.record(
                    wall,
                    vec![
                        (self.depth.load(Ordering::Relaxed) + n) as f64,
                        n as f64,
                        served as f64,
                    ],
                );
            }
            let t0 = Instant::now();
            self.trace_batch(&batch);
            // One wake per distinct event loop per batch (not per job):
            // wakes coalesce, so ringing after the batch is enough.
            let mut wakers: Vec<Arc<crate::evloop::Waker>> = Vec::new();
            for job in batch.drain(..) {
                let result = if job.deadline.is_some_and(|d| Instant::now() > d) {
                    timed_out += 1;
                    Err(ServeError::DeadlineExceeded)
                } else {
                    if let Some(delay) = self.service_delay {
                        std::thread::sleep(delay);
                    }
                    apply(&mut self.store, &job.req)
                };
                self.trace_complete(job.id);
                served += 1;
                // A dropped completion receiver (dead client) must not
                // take the worker down with it.
                let _ = job.reply.send(Response {
                    id: job.id,
                    shard: self.shard,
                    result,
                });
                if let Some(w) = job.notify {
                    if !wakers.iter().any(|k| Arc::ptr_eq(k, &w)) {
                        wakers.push(w);
                    }
                }
            }
            for w in wakers {
                w.wake();
            }
            let per_op = (t0.elapsed().as_nanos() as u64 / n as u64).max(1);
            // EWMA (3 old + 1 new) / 4, kept in integers.
            let old = self.est_ns.load(Ordering::Relaxed);
            self.est_ns
                .store((old.saturating_mul(3) + per_op) / 4, Ordering::Relaxed);
        }
        ShardOutcome {
            shard: self.shard,
            store: self.store,
            served,
            timed_out,
            batches,
            max_batch,
            depth_series: series,
            // Patched from the shared counters at shutdown when a
            // concurrent read path is configured.
            reads_offloaded: 0,
            read_retries: 0,
        }
    }

    /// Emit admission + dispatch trace events for a drained batch
    /// (no-ops unless tracing was enabled; stamped with the shard's
    /// simulated clock, like every controller event).
    fn trace_batch(&mut self, batch: &[Job]) {
        if !self.store.trace().is_enabled() {
            return;
        }
        let now = self.store.now();
        let shard = self.shard;
        let trace = self.store.engine_mut().trace_mut();
        trace.set_now(now);
        for job in batch {
            trace.push(TraceEvent::ServeEnqueue { shard, seq: job.id });
        }
        trace.push(TraceEvent::ServeDispatch {
            shard,
            batch: batch.len() as u32,
        });
    }

    fn trace_complete(&mut self, id: u64) {
        if !self.store.trace().is_enabled() {
            return;
        }
        let now = self.store.now();
        let shard = self.shard;
        let trace = self.store.engine_mut().trace_mut();
        trace.set_now(now);
        trace.push(TraceEvent::ServeComplete { shard, seq: id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_locates_and_rejects() {
        let plan = ShardPlan::new(4, 1_000);
        assert_eq!(plan.total_bytes(), 4_000);
        assert_eq!(plan.locate(0, 8).unwrap(), (0, 0));
        assert_eq!(plan.locate(2_500, 8).unwrap(), (2, 500));
        assert_eq!(plan.locate(999, 1).unwrap(), (0, 999));
        assert!(matches!(
            plan.locate(996, 8),
            Err(ServeError::CrossesShard { .. })
        ));
        assert!(matches!(
            plan.locate(4_000, 1),
            Err(ServeError::OutOfBounds { .. })
        ));
        assert!(matches!(
            plan.locate(3_999, 2),
            Err(ServeError::OutOfBounds { .. })
        ));
        // Zero-length accesses route without crossing.
        assert_eq!(plan.locate(1_000, 0).unwrap(), (1, 0));
    }

    #[test]
    fn roundtrip_through_two_shards() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let h = store.handle();
        let base = h.plan().shard_bytes();
        h.call(Request::Write {
            addr: 64,
            bytes: b"shard-zero".to_vec(),
        })
        .unwrap();
        h.call(Request::Write {
            addr: base + 64,
            bytes: b"shard-one!".to_vec(),
        })
        .unwrap();
        match h.call(Request::Read { addr: 64, len: 10 }).unwrap() {
            Reply::Data(d) => assert_eq!(d, b"shard-zero"),
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::Read {
                addr: base + 64,
                len: 10,
            })
            .unwrap()
        {
            Reply::Data(d) => assert_eq!(d, b"shard-one!"),
            other => panic!("unexpected {other:?}"),
        }
        let outcome = store.shutdown();
        assert_eq!(outcome.total_served(), 4);
        // Writes landed on different controllers (host_writes counts
        // word-granularity accesses, so just assert presence).
        assert!(outcome.shards[0].store.stats().host_writes.get() > 0);
        assert!(outcome.shards[1].store.stats().host_writes.get() > 0);
    }

    #[test]
    fn kv_roundtrip_through_shards() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let h = store.handle();
        // First KV touch auto-creates each shard's KV region.
        h.call(Request::KvPut {
            shard: 0,
            key: 7,
            txn: 0,
            value: b"zero".to_vec(),
        })
        .unwrap();
        h.call(Request::KvPut {
            shard: 1,
            key: 7,
            txn: 0,
            value: b"one".to_vec(),
        })
        .unwrap();
        // Same key, independent per-shard keyspaces.
        match h.call(Request::KvGet { shard: 0, key: 7 }).unwrap() {
            Reply::KvValue(Some(v)) => assert_eq!(v, b"zero"),
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::KvGet { shard: 1, key: 7 }).unwrap() {
            Reply::KvValue(Some(v)) => assert_eq!(v, b"one"),
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::KvGet { shard: 0, key: 8 }).unwrap() {
            Reply::KvValue(None) => {}
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::KvDelete {
                shard: 0,
                key: 7,
                txn: 0,
            })
            .unwrap()
        {
            Reply::KvDeleted { existed } => assert!(existed),
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::KvScan {
                shard: 1,
                start: 0,
                limit: 10,
            })
            .unwrap()
        {
            Reply::KvRange(items) => assert_eq!(items, vec![(7, b"one".to_vec())]),
            other => panic!("unexpected {other:?}"),
        }
        // Out-of-range shard is a typed refusal, same as the other
        // shard-addressed ops.
        let err = h.call(Request::KvGet { shard: 9, key: 1 }).unwrap_err();
        assert!(matches!(err, ServeError::OutOfBounds { .. }));
        store.shutdown();
    }

    #[test]
    fn kv_txn_commit_and_abort() {
        let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
        let h = store.handle();
        h.call(Request::KvPut {
            shard: 0,
            key: 1,
            txn: 0,
            value: b"base".to_vec(),
        })
        .unwrap();
        // Abort path: the replacement and the insert both vanish.
        let txn = match h.call(Request::TxnBegin { shard: 0 }).unwrap() {
            Reply::TxnStarted { txn } => txn,
            other => panic!("unexpected {other:?}"),
        };
        h.call(Request::KvPut {
            shard: 0,
            key: 1,
            txn,
            value: b"spec".to_vec(),
        })
        .unwrap();
        h.call(Request::KvPut {
            shard: 0,
            key: 2,
            txn,
            value: b"new".to_vec(),
        })
        .unwrap();
        h.call(Request::TxnAbort { shard: 0, txn }).unwrap();
        match h.call(Request::KvGet { shard: 0, key: 1 }).unwrap() {
            Reply::KvValue(Some(v)) => assert_eq!(v, b"base"),
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::KvGet { shard: 0, key: 2 }).unwrap() {
            Reply::KvValue(None) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Commit path: the delete survives.
        let txn = match h.call(Request::TxnBegin { shard: 0 }).unwrap() {
            Reply::TxnStarted { txn } => txn,
            other => panic!("unexpected {other:?}"),
        };
        match h
            .call(Request::KvDelete {
                shard: 0,
                key: 1,
                txn,
            })
            .unwrap()
        {
            Reply::KvDeleted { existed } => assert!(existed),
            other => panic!("unexpected {other:?}"),
        }
        h.call(Request::TxnCommit { shard: 0, txn }).unwrap();
        match h.call(Request::KvGet { shard: 0, key: 1 }).unwrap() {
            Reply::KvValue(None) => {}
            other => panic!("unexpected {other:?}"),
        }
        // A KV write under a dead transaction is the usual typed error.
        let err = h
            .call(Request::KvPut {
                shard: 0,
                key: 3,
                txn,
                value: b"x".to_vec(),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::NoSuchTxn { .. }));
        store.shutdown();
    }

    #[test]
    fn kv_scan_limit_is_clamped() {
        let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
        let h = store.handle();
        for key in 0..200u64 {
            h.call(Request::KvPut {
                shard: 0,
                key,
                txn: 0,
                value: vec![key as u8; 16],
            })
            .unwrap();
        }
        match h
            .call(Request::KvScan {
                shard: 0,
                start: 0,
                limit: u32::MAX,
            })
            .unwrap()
        {
            Reply::KvRange(items) => {
                assert_eq!(items.len(), KV_SCAN_LIMIT as usize);
                assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
            }
            other => panic!("unexpected {other:?}"),
        }
        store.shutdown();
    }

    #[test]
    fn cross_shard_request_is_rejected_typed() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let h = store.handle();
        let base = h.plan().shard_bytes();
        let err = h
            .call(Request::Write {
                addr: base - 4,
                bytes: vec![0u8; 8],
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::CrossesShard { .. }));
        store.shutdown();
    }

    #[test]
    fn pipelined_submissions_complete_out_of_band() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let h = store.handle();
        let (tx, rx) = mpsc::channel();
        let mut ids = Vec::new();
        for i in 0..64u64 {
            let req = Request::Write {
                addr: i * 256,
                bytes: vec![i as u8; 8],
            };
            loop {
                match h.submit(req.clone(), None, &tx) {
                    Ok(id) => {
                        ids.push(id);
                        break;
                    }
                    Err(SubmitError::Busy(b)) => std::thread::sleep(b.retry_after),
                    Err(SubmitError::Rejected(e)) => panic!("rejected: {e}"),
                }
            }
        }
        let mut got: Vec<u64> = (0..64).map(|_| rx.recv().unwrap().id).collect();
        got.sort_unstable();
        ids.sort_unstable();
        assert_eq!(got, ids);
        let outcome = store.shutdown();
        assert_eq!(outcome.total_served(), 64);
        assert!(outcome.aggregate_stats().host_writes.get() >= 64);
    }

    #[test]
    fn serve_trace_events_recorded() {
        let mut cfg = ServeConfig::small(1);
        cfg.trace_capacity = Some(4_096);
        let store = ShardedStore::launch(cfg).unwrap();
        let h = store.handle();
        for i in 0..8u64 {
            h.call(Request::Write {
                addr: i * 256,
                bytes: vec![1u8; 4],
            })
            .unwrap();
        }
        let outcome = store.shutdown();
        let evs: Vec<TraceEvent> = outcome.shards[0]
            .store
            .trace()
            .records()
            .map(|r| r.event)
            .collect();
        assert!(evs
            .iter()
            .any(|e| matches!(e, TraceEvent::ServeEnqueue { .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, TraceEvent::ServeDispatch { .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, TraceEvent::ServeComplete { .. })));
    }

    #[test]
    fn retry_hint_is_clamped() {
        let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
        let h = store.handle();
        let hint = h.retry_hint(0);
        assert!(hint >= RETRY_MIN && hint <= RETRY_MAX);
        store.shutdown();
    }

    fn read_bytes(h: &ShardHandle, addr: u64, len: u32) -> Vec<u8> {
        match h.call(Request::Read { addr, len }).unwrap() {
            Reply::Data(d) => d,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn txn_commit_roundtrip_across_shards() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let h = store.handle();
        let base = h.plan().shard_bytes();
        // Independent transactions on each shard. Ids are globally
        // unique (each shard draws from a disjoint residue class), so
        // concurrent transactions can never alias across shards.
        let t0 = match h.call(Request::TxnBegin { shard: 0 }).unwrap() {
            Reply::TxnStarted { txn } => txn,
            other => panic!("unexpected {other:?}"),
        };
        let t1 = match h.call(Request::TxnBegin { shard: 1 }).unwrap() {
            Reply::TxnStarted { txn } => txn,
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(t0, t1, "transaction ids must be unique across shards");
        // A write that routes to shard 1 but carries shard 0's id must
        // be refused — it must not join shard 1's open transaction.
        match h
            .call(Request::TxnWrite {
                addr: base + 128,
                bytes: vec![0xAB; 4],
                txn: t0,
            })
            .unwrap_err()
        {
            ServeError::NoSuchTxn { txn } => assert_eq!(txn, t0),
            other => panic!("unexpected {other:?}"),
        }
        h.call(Request::TxnWrite {
            addr: 64,
            bytes: b"zero".to_vec(),
            txn: t0,
        })
        .unwrap();
        h.call(Request::TxnWrite {
            addr: base + 64,
            bytes: b"one!".to_vec(),
            txn: t1,
        })
        .unwrap();
        assert!(matches!(
            h.call(Request::TxnCommit { shard: 0, txn: t0 }).unwrap(),
            Reply::Committed { .. }
        ));
        assert!(matches!(
            h.call(Request::TxnAbort { shard: 1, txn: t1 }).unwrap(),
            Reply::Aborted { .. }
        ));
        assert_eq!(read_bytes(&h, 64, 4), b"zero");
        // Shard 1's write rolled back to the prefill contents.
        assert_ne!(read_bytes(&h, base + 64, 4), b"one!");
        store.shutdown();
    }

    #[test]
    fn txn_ownership_errors_are_typed() {
        let store = ShardedStore::launch(ServeConfig::small(1)).unwrap();
        let h = store.handle();
        let txn = match h.call(Request::TxnBegin { shard: 0 }).unwrap() {
            Reply::TxnStarted { txn } => txn,
            other => panic!("unexpected {other:?}"),
        };
        // A second begin on the same shard is refused — and the refusal
        // does not leak the holder's id (ids are capability-like).
        assert!(matches!(
            h.call(Request::TxnBegin { shard: 0 }).unwrap_err(),
            ServeError::TxnBusy
        ));
        // A write under the wrong id never reaches the store.
        match h
            .call(Request::TxnWrite {
                addr: 0,
                bytes: vec![1u8; 4],
                txn: txn + 1,
            })
            .unwrap_err()
        {
            ServeError::NoSuchTxn { txn: t } => assert_eq!(t, txn + 1),
            other => panic!("unexpected {other:?}"),
        }
        // Commit under the wrong id likewise.
        assert!(matches!(
            h.call(Request::TxnCommit {
                shard: 0,
                txn: txn + 1
            })
            .unwrap_err(),
            ServeError::NoSuchTxn { .. }
        ));
        // The real commit still succeeds after the failed attempts.
        h.call(Request::TxnWrite {
            addr: 128,
            bytes: b"kept".to_vec(),
            txn,
        })
        .unwrap();
        h.call(Request::TxnCommit { shard: 0, txn }).unwrap();
        assert_eq!(read_bytes(&h, 128, 4), b"kept");
        // Nothing is open any more.
        assert!(matches!(
            h.call(Request::TxnAbort { shard: 0, txn }).unwrap_err(),
            ServeError::NoSuchTxn { .. }
        ));
        store.shutdown();
    }

    #[test]
    fn concurrent_txn_slots_isolate_write_sets() {
        let store = ShardedStore::launch(ServeConfig::small(1).with_txn_slots(2)).unwrap();
        let h = store.handle();
        let begin =
            |h: &crate::shard::ShardHandle| match h.call(Request::TxnBegin { shard: 0 }).unwrap() {
                Reply::TxnStarted { txn } => txn,
                other => panic!("unexpected {other:?}"),
            };
        let t0 = begin(&h);
        let t1 = begin(&h);
        assert_ne!(t0, t1);
        // Both slots taken: a third begin is refused without an id.
        assert!(matches!(
            h.call(Request::TxnBegin { shard: 0 }).unwrap_err(),
            ServeError::TxnBusy
        ));
        h.call(Request::TxnWrite {
            addr: 0,
            bytes: b"zero".to_vec(),
            txn: t0,
        })
        .unwrap();
        // t1 hitting t0's page is a typed conflict, with no foreign id.
        assert!(matches!(
            h.call(Request::TxnWrite {
                addr: 0,
                bytes: b"one!".to_vec(),
                txn: t1,
            })
            .unwrap_err(),
            ServeError::TxnConflict
        ));
        // A plain write to that page is refused the same way (the old
        // behavior silently joined it to the open transaction).
        assert!(matches!(
            h.call(Request::Write {
                addr: 0,
                bytes: b"plny".to_vec(),
            })
            .unwrap_err(),
            ServeError::TxnConflict
        ));
        // t1 writes its own page; both resolve independently.
        h.call(Request::TxnWrite {
            addr: 512,
            bytes: b"one!".to_vec(),
            txn: t1,
        })
        .unwrap();
        h.call(Request::TxnAbort { shard: 0, txn: t0 }).unwrap();
        h.call(Request::TxnCommit { shard: 0, txn: t1 }).unwrap();
        assert_ne!(read_bytes(&h, 0, 4), b"zero", "t0 rolled back");
        assert_eq!(read_bytes(&h, 512, 4), b"one!", "t1 committed");
        store.shutdown();
    }

    #[test]
    fn txn_requests_route_like_their_kin() {
        let store = ShardedStore::launch(ServeConfig::small(2)).unwrap();
        let h = store.handle();
        // TxnWrite routes by address like Write.
        assert_eq!(
            h.route(&Request::TxnWrite {
                addr: h.plan().shard_bytes() + 8,
                bytes: vec![0u8; 4],
                txn: 1,
            })
            .unwrap(),
            1
        );
        // Shard-addressed ops validate the shard index.
        assert!(matches!(
            h.route(&Request::TxnBegin { shard: 9 }).unwrap_err(),
            ServeError::OutOfBounds { .. }
        ));
        assert!(matches!(
            h.route(&Request::TxnCommit { shard: 9, txn: 1 })
                .unwrap_err(),
            ServeError::OutOfBounds { .. }
        ));
        store.shutdown();
    }
}
