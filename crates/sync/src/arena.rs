//! Byte-addressed arena over `AtomicU64` words.
//!
//! Page payloads (flash array contents, SRAM buffer frames) live here so the
//! single writer can mutate them while readers copy concurrently without a
//! data race. Every access is word-granular and relaxed — on mainstream
//! hardware these compile to plain loads/stores — and cross-word consistency
//! is the epoch's job, not the arena's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WORD: usize = 8;

/// Fixed-size byte arena backed by atomic 64-bit words.
///
/// Writer-side methods (`write_bytes`, `fill`) assume a **single writer**:
/// sub-word edges are handled with load/merge/store, which would lose
/// updates under concurrent writers. Readers may call `read_bytes` at any
/// time; a read that races a write returns a possibly mixed byte string,
/// which the caller must discard via epoch validation.
#[derive(Debug)]
pub struct AtomicArena {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicArena {
    /// New arena of `len` bytes, filled with `fill` in every byte.
    pub fn new(len: usize, fill: u8) -> Self {
        let word = u64::from_le_bytes([fill; WORD]);
        let words = (0..len.div_ceil(WORD))
            .map(|_| AtomicU64::new(word))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { words, len }
    }

    /// Arena length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the arena holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `offset..offset + len` lies inside the arena. Readers use
    /// this to reject ranges computed from stale metadata before touching
    /// the arena (then retry via the epoch), rather than panicking.
    pub fn in_bounds(&self, offset: usize, len: usize) -> bool {
        offset.checked_add(len).is_some_and(|end| end <= self.len)
    }

    /// Copy `buf.len()` bytes starting at `offset` into `buf`.
    ///
    /// Panics if the range is out of bounds; callers on the optimistic read
    /// path must pre-check with [`AtomicArena::in_bounds`].
    pub fn read_bytes(&self, offset: usize, buf: &mut [u8]) {
        assert!(
            self.in_bounds(offset, buf.len()),
            "arena read out of bounds"
        );
        let mut off = offset;
        let mut i = 0;
        let head = off % WORD;
        if head != 0 && i < buf.len() {
            let n = (WORD - head).min(buf.len());
            let w = self.words[off / WORD].load(Ordering::Relaxed).to_le_bytes();
            buf[..n].copy_from_slice(&w[head..head + n]);
            off += n;
            i += n;
        }
        while buf.len() - i >= WORD {
            let w = self.words[off / WORD].load(Ordering::Relaxed).to_le_bytes();
            buf[i..i + WORD].copy_from_slice(&w);
            off += WORD;
            i += WORD;
        }
        if i < buf.len() {
            let n = buf.len() - i;
            let w = self.words[off / WORD].load(Ordering::Relaxed).to_le_bytes();
            buf[i..].copy_from_slice(&w[..n]);
        }
    }

    /// Write `bytes` starting at `offset`. Single-writer only.
    pub fn write_bytes(&self, offset: usize, bytes: &[u8]) {
        assert!(
            self.in_bounds(offset, bytes.len()),
            "arena write out of bounds"
        );
        let mut off = offset;
        let mut i = 0;
        let head = off % WORD;
        if head != 0 && i < bytes.len() {
            let n = (WORD - head).min(bytes.len());
            let slot = &self.words[off / WORD];
            let mut w = slot.load(Ordering::Relaxed).to_le_bytes();
            w[head..head + n].copy_from_slice(&bytes[..n]);
            slot.store(u64::from_le_bytes(w), Ordering::Relaxed);
            off += n;
            i += n;
        }
        while bytes.len() - i >= WORD {
            let mut w = [0u8; WORD];
            w.copy_from_slice(&bytes[i..i + WORD]);
            self.words[off / WORD].store(u64::from_le_bytes(w), Ordering::Relaxed);
            off += WORD;
            i += WORD;
        }
        if i < bytes.len() {
            let n = bytes.len() - i;
            let slot = &self.words[off / WORD];
            let mut w = slot.load(Ordering::Relaxed).to_le_bytes();
            w[..n].copy_from_slice(&bytes[i..]);
            slot.store(u64::from_le_bytes(w), Ordering::Relaxed);
        }
    }

    /// Fill `offset..offset + len` with `value`. Single-writer only.
    pub fn fill(&self, offset: usize, len: usize, value: u8) {
        assert!(self.in_bounds(offset, len), "arena fill out of bounds");
        let word = u64::from_le_bytes([value; WORD]);
        let mut off = offset;
        let mut remaining = len;
        let head = off % WORD;
        if head != 0 && remaining > 0 {
            let n = (WORD - head).min(remaining);
            let slot = &self.words[off / WORD];
            let mut w = slot.load(Ordering::Relaxed).to_le_bytes();
            w[head..head + n].fill(value);
            slot.store(u64::from_le_bytes(w), Ordering::Relaxed);
            off += n;
            remaining -= n;
        }
        while remaining >= WORD {
            self.words[off / WORD].store(word, Ordering::Relaxed);
            off += WORD;
            remaining -= WORD;
        }
        if remaining > 0 {
            let slot = &self.words[off / WORD];
            let mut w = slot.load(Ordering::Relaxed).to_le_bytes();
            w[..remaining].fill(value);
            slot.store(u64::from_le_bytes(w), Ordering::Relaxed);
        }
    }

    /// Independent copy of the current contents.
    pub fn deep_copy(&self) -> Self {
        let words = self
            .words
            .iter()
            .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            words,
            len: self.len,
        }
    }
}

/// Owner handle to an [`AtomicArena`], held by the writer-side structure.
///
/// `Clone` deep-copies the contents (fork semantics); use
/// [`SharedArena::view`] to hand readers a cheap shared handle instead.
#[derive(Debug)]
pub struct SharedArena {
    inner: Arc<AtomicArena>,
}

impl SharedArena {
    /// New arena of `len` bytes filled with `fill`.
    pub fn new(len: usize, fill: u8) -> Self {
        Self {
            inner: Arc::new(AtomicArena::new(len, fill)),
        }
    }

    /// Arena length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the arena holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// See [`AtomicArena::read_bytes`].
    pub fn read_bytes(&self, offset: usize, buf: &mut [u8]) {
        self.inner.read_bytes(offset, buf);
    }

    /// See [`AtomicArena::write_bytes`].
    pub fn write_bytes(&self, offset: usize, bytes: &[u8]) {
        self.inner.write_bytes(offset, bytes);
    }

    /// See [`AtomicArena::fill`].
    pub fn fill(&self, offset: usize, len: usize, value: u8) {
        self.inner.fill(offset, len, value);
    }

    /// Cheap reader handle sharing this arena's storage.
    pub fn view(&self) -> ArenaView {
        ArenaView {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Clone for SharedArena {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::new(self.inner.deep_copy()),
        }
    }
}

/// Reader handle to a [`SharedArena`]. Cheap to clone; read-only.
#[derive(Debug, Clone)]
pub struct ArenaView {
    inner: Arc<AtomicArena>,
}

impl ArenaView {
    /// Arena length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the arena holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// See [`AtomicArena::in_bounds`].
    pub fn in_bounds(&self, offset: usize, len: usize) -> bool {
        self.inner.in_bounds(offset, len)
    }

    /// See [`AtomicArena::read_bytes`].
    pub fn read_bytes(&self, offset: usize, buf: &mut [u8]) {
        self.inner.read_bytes(offset, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unaligned() {
        let a = AtomicArena::new(64, 0xFF);
        let mut buf = [0u8; 64];
        a.read_bytes(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0xFF));

        let payload: Vec<u8> = (0..23).collect();
        a.write_bytes(3, &payload);
        let mut got = vec![0u8; 23];
        a.read_bytes(3, &mut got);
        assert_eq!(got, payload);
        // Neighbours untouched.
        let mut edge = [0u8; 3];
        a.read_bytes(0, &mut edge);
        assert_eq!(edge, [0xFF; 3]);
        let mut tail = [0u8; 8];
        a.read_bytes(26, &mut tail);
        assert_eq!(tail, [0xFF; 8]);
    }

    #[test]
    fn fill_partial_words() {
        let a = AtomicArena::new(32, 0x00);
        a.fill(5, 17, 0xAB);
        let mut buf = [0u8; 32];
        a.read_bytes(0, &mut buf);
        for (i, &b) in buf.iter().enumerate() {
            let want = if (5..22).contains(&i) { 0xAB } else { 0x00 };
            assert_eq!(b, want, "byte {i}");
        }
    }

    #[test]
    fn odd_length_arena() {
        let a = AtomicArena::new(13, 0x11);
        let mut buf = [0u8; 13];
        a.read_bytes(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0x11));
        a.write_bytes(8, &[1, 2, 3, 4, 5]);
        a.read_bytes(0, &mut buf);
        assert_eq!(&buf[8..], &[1, 2, 3, 4, 5]);
        assert!(!a.in_bounds(8, 6));
        assert!(a.in_bounds(8, 5));
        assert!(!a.in_bounds(usize::MAX, 2));
    }

    #[test]
    fn shared_clone_is_deep() {
        let owner = SharedArena::new(16, 0);
        let view = owner.view();
        let fork = owner.clone();
        owner.write_bytes(0, &[9; 16]);
        let mut buf = [0u8; 16];
        view.read_bytes(0, &mut buf);
        assert_eq!(buf, [9; 16]); // view shares the original
        fork.read_bytes(0, &mut buf);
        assert_eq!(buf, [0; 16]); // fork is independent
    }
}
