#![warn(missing_docs)]
//! # envy-sync — single-writer / multi-reader primitives for the eNVy data plane
//!
//! eNVy's front end is battery-backed memory: reads are supposed to complete
//! at memory speed even while the (single) controller mutates the page table,
//! flushes the SRAM write buffer, cleans segments, or levels wear. This crate
//! supplies the two building blocks the reproduction uses to get that
//! concurrency model without locks on the read path:
//!
//! * [`SeqEpoch`] / [`SharedEpoch`] — a seqlock-style version counter. The
//!   writer holds it **odd** for the whole duration of a mutating operation
//!   and publishes **even** values with `Release` ordering; readers snapshot
//!   an even value, copy whatever they need with plain (relaxed) atomic
//!   loads, then validate that the counter is unchanged. A failed validation
//!   means "retry", never "corrupt data".
//! * [`AtomicArena`] / [`SharedArena`] — a byte-addressed arena backed by
//!   `AtomicU64` words, so readers can copy page payloads concurrently with
//!   the writer without data races (and without `unsafe`). Torn *word-level*
//!   reads are impossible; torn *multi-word* reads are caught by the epoch
//!   validation and retried.
//! * [`SharedWords`] / [`SharedSlots`] — shared arrays of `u64` / `u32`
//!   entries (packed page-table words, MMU tags, SRAM buffer index slots)
//!   with single-word atomic access. A single word is always internally
//!   consistent; cross-word consistency again comes from the epoch.
//!
//! ## Memory-ordering contract (the seqlock recipe)
//!
//! * Writer: `write_begin` stores the odd value relaxed then issues a
//!   `Release` fence (so the odd marker is visible before any data stores);
//!   `write_end` stores the even value with `Release` (so all data stores
//!   are visible before the new even value).
//! * Reader: `optimistic_read` loads the counter with `Acquire`; data loads
//!   may be `Relaxed`; `validate` issues an `Acquire` fence **before**
//!   re-loading the counter, so no data load can be reordered after the
//!   validation load.
//!
//! All mutating containers here assume a **single writer at a time**; the
//! sub-word read-modify-write paths in [`AtomicArena`] are not atomic with
//! respect to other writers. The eNVy store upholds this by construction:
//! one shard owns one store, and every mutating entry point runs on that
//! shard's writer thread under one epoch guard.

mod arena;
mod epoch;
mod words;

pub use arena::{ArenaView, AtomicArena, SharedArena};
pub use epoch::{EpochView, EpochWriteGuard, SeqEpoch, SharedEpoch};
pub use words::{SharedSlots, SharedWords, SlotsView, WordsView};
