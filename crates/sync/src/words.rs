//! Shared fixed-size arrays of atomic `u64` / `u32` entries.
//!
//! Packed page-table words, MMU tag words, and SRAM buffer index slots all
//! fit in one machine word, so a single atomic load can never observe a torn
//! entry. The writer publishes entries with `Release`; readers load relaxed
//! and rely on the surrounding epoch validation (see [`crate::SeqEpoch`])
//! for cross-entry consistency.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Owner handle to a shared array of `u64` entries.
///
/// `Clone` deep-copies (fork semantics); [`SharedWords::view`] hands readers
/// a cheap shared handle.
#[derive(Debug)]
pub struct SharedWords {
    inner: Arc<[AtomicU64]>,
}

impl SharedWords {
    /// New array of `len` entries, each initialised to `init`.
    pub fn new(len: usize, init: u64) -> Self {
        Self {
            inner: (0..len).map(|_| AtomicU64::new(init)).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the array has zero entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Writer-side load (relaxed; the writer is the only mutator).
    pub fn get(&self, i: usize) -> u64 {
        self.inner[i].load(Ordering::Relaxed)
    }

    /// Publish a new entry value (`Release`).
    pub fn set(&self, i: usize, value: u64) {
        self.inner[i].store(value, Ordering::Release);
    }

    /// Set every entry to `value`.
    pub fn fill(&self, value: u64) {
        for w in self.inner.iter() {
            w.store(value, Ordering::Release);
        }
    }

    /// Cheap reader handle sharing this array.
    pub fn view(&self) -> WordsView {
        WordsView {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Clone for SharedWords {
    fn clone(&self) -> Self {
        Self {
            inner: self
                .inner
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// Reader handle to [`SharedWords`]. Cheap to clone; read-only.
#[derive(Debug, Clone)]
pub struct WordsView {
    inner: Arc<[AtomicU64]>,
}

impl WordsView {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the array has zero entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Relaxed load; pair with epoch validation for cross-entry consistency.
    pub fn get(&self, i: usize) -> u64 {
        self.inner[i].load(Ordering::Relaxed)
    }
}

/// Owner handle to a shared array of `u32` entries (SRAM buffer index).
///
/// Same contract as [`SharedWords`].
#[derive(Debug)]
pub struct SharedSlots {
    inner: Arc<[AtomicU32]>,
}

impl SharedSlots {
    /// New array of `len` entries, each initialised to `init`.
    pub fn new(len: usize, init: u32) -> Self {
        Self {
            inner: (0..len).map(|_| AtomicU32::new(init)).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the array has zero entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Writer-side load (relaxed; the writer is the only mutator).
    pub fn get(&self, i: usize) -> u32 {
        self.inner[i].load(Ordering::Relaxed)
    }

    /// Publish a new entry value (`Release`).
    pub fn set(&self, i: usize, value: u32) {
        self.inner[i].store(value, Ordering::Release);
    }

    /// Set every entry to `value`.
    pub fn fill(&self, value: u32) {
        for w in self.inner.iter() {
            w.store(value, Ordering::Release);
        }
    }

    /// Cheap reader handle sharing this array.
    pub fn view(&self) -> SlotsView {
        SlotsView {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Clone for SharedSlots {
    fn clone(&self) -> Self {
        Self {
            inner: self
                .inner
                .iter()
                .map(|w| AtomicU32::new(w.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// Reader handle to [`SharedSlots`]. Cheap to clone; read-only.
#[derive(Debug, Clone)]
pub struct SlotsView {
    inner: Arc<[AtomicU32]>,
}

impl SlotsView {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the array has zero entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Relaxed load; pair with epoch validation for cross-entry consistency.
    pub fn get(&self, i: usize) -> u32 {
        self.inner[i].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_share_and_fork() {
        let w = SharedWords::new(4, 7);
        let v = w.view();
        let fork = w.clone();
        w.set(2, 99);
        assert_eq!(v.get(2), 99);
        assert_eq!(fork.get(2), 7);
        w.fill(1);
        assert_eq!(v.get(0), 1);
    }

    #[test]
    fn slots_share_and_fork() {
        let s = SharedSlots::new(3, 0);
        let v = s.view();
        let fork = s.clone();
        s.set(1, 42);
        assert_eq!(v.get(1), 42);
        assert_eq!(fork.get(1), 0);
        assert_eq!(s.len(), 3);
        assert_eq!(v.len(), 3);
    }
}
