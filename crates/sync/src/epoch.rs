//! Seqlock-style epoch counter shared between one writer and many readers.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// A seqlock sequence counter.
///
/// Even values mean "quiescent"; an odd value means a writer is mid-mutation.
/// The writer bumps the counter to odd at the start of a mutating operation
/// and back to even at the end, so readers that observe an even value before
/// *and* after copying data know the copy is a consistent published state.
#[derive(Debug)]
pub struct SeqEpoch {
    seq: AtomicU64,
}

impl SeqEpoch {
    /// New epoch starting at the given (even) value.
    pub fn with_value(value: u64) -> Self {
        debug_assert!(value.is_multiple_of(2), "epoch must start even");
        Self {
            seq: AtomicU64::new(value),
        }
    }

    /// New epoch starting at zero.
    pub fn new() -> Self {
        Self::with_value(0)
    }

    /// Current raw counter value (relaxed; diagnostic use only).
    pub fn value(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Writer side: mark a mutation in progress (counter becomes odd).
    ///
    /// The `Release` fence orders the odd store before any subsequent data
    /// stores, so a reader that missed the odd marker cannot have seen any
    /// of the mutation's effects either.
    pub fn write_begin(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert!(
            s.is_multiple_of(2),
            "nested or concurrent epoch write_begin"
        );
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
    }

    /// Writer side: publish the mutation (counter becomes even again).
    pub fn write_end(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert!(s % 2 == 1, "write_end without write_begin");
        self.seq.store(s.wrapping_add(1), Ordering::Release);
    }

    /// Reader side: snapshot the counter. Returns `None` while a mutation is
    /// in progress (odd counter) — the caller should back off and retry.
    pub fn optimistic_read(&self) -> Option<u64> {
        let s = self.seq.load(Ordering::Acquire);
        s.is_multiple_of(2).then_some(s)
    }

    /// Reader side: confirm that no mutation started since `snapshot` was
    /// taken. Must be called **after** all data loads of the attempt; the
    /// `Acquire` fence keeps those loads from sinking past the check.
    pub fn validate(&self, snapshot: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == snapshot
    }
}

impl Default for SeqEpoch {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard for one writer-side mutation: odd on construction, even on
/// drop. Drop-based so that early `?` returns (e.g. injected crash faults)
/// can never leave the epoch stuck odd. Holds its own handle to the
/// counter (no borrow of the owner), so the guarded structure stays freely
/// borrowable while the guard is live.
#[derive(Debug)]
pub struct EpochWriteGuard {
    epoch: Arc<SeqEpoch>,
}

impl Drop for EpochWriteGuard {
    fn drop(&mut self) {
        self.epoch.write_end();
    }
}

/// Owner handle to an epoch, held by the structure the writer mutates.
///
/// `Clone` **forks** the epoch: the clone gets a fresh, independent counter
/// (rounded up to even). This matches deep-copy semantics of the store it
/// guards — a forked store has its own writer and its own readers.
#[derive(Debug)]
pub struct SharedEpoch {
    inner: Arc<SeqEpoch>,
}

impl SharedEpoch {
    /// New epoch at zero.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(SeqEpoch::new()),
        }
    }

    /// Enter a writer-side mutation; the returned guard publishes on drop.
    pub fn write_guard(&self) -> EpochWriteGuard {
        self.inner.write_begin();
        EpochWriteGuard {
            epoch: Arc::clone(&self.inner),
        }
    }

    /// Cheap reader handle sharing this epoch.
    pub fn view(&self) -> EpochView {
        EpochView {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Current raw counter value (diagnostic).
    pub fn value(&self) -> u64 {
        self.inner.value()
    }
}

impl Clone for SharedEpoch {
    fn clone(&self) -> Self {
        let v = self.inner.value();
        Self {
            inner: Arc::new(SeqEpoch::with_value(v & !1)),
        }
    }
}

impl Default for SharedEpoch {
    fn default() -> Self {
        Self::new()
    }
}

/// Reader handle to a [`SharedEpoch`]. Cheap to clone (shares the counter).
#[derive(Debug, Clone)]
pub struct EpochView {
    inner: Arc<SeqEpoch>,
}

impl EpochView {
    /// See [`SeqEpoch::optimistic_read`].
    pub fn optimistic_read(&self) -> Option<u64> {
        self.inner.optimistic_read()
    }

    /// See [`SeqEpoch::validate`].
    pub fn validate(&self, snapshot: u64) -> bool {
        self.inner.validate(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_publishes_on_drop() {
        let e = SharedEpoch::new();
        let v = e.view();
        assert_eq!(v.optimistic_read(), Some(0));
        {
            let _g = e.write_guard();
            assert_eq!(v.optimistic_read(), None);
        }
        assert_eq!(v.optimistic_read(), Some(2));
        assert!(v.validate(2));
        assert!(!v.validate(0));
    }

    #[test]
    fn clone_forks_even() {
        let e = SharedEpoch::new();
        {
            let _g = e.write_guard();
        }
        let f = e.clone();
        assert_eq!(f.value() % 2, 0);
        // Mutating the fork does not disturb the original's readers.
        let v = e.view();
        let _g = f.write_guard();
        assert_eq!(v.optimistic_read(), Some(2));
    }
}
