//! YCSB-style key-value workload mixes over a sharded KV store.
//!
//! The Yahoo! Cloud Serving Benchmark's core workloads are the standard
//! access patterns for key-value serving systems, and the NVMM
//! literature uses them as the canonical non-TPC-A stress for stores
//! like eNVy. This module generates the five classic mixes:
//!
//! | mix | operations            | key distribution  | models            |
//! |-----|-----------------------|-------------------|-------------------|
//! | A   | 50% read / 50% update | zipfian           | session stores    |
//! | B   | 95% read / 5% update  | zipfian           | photo tagging     |
//! | C   | 100% read             | zipfian           | profile caches    |
//! | D   | 95% read / 5% insert  | latest            | status feeds      |
//! | E   | 95% scan / 5% insert  | zipfian           | threaded convs    |
//!
//! A [`YcsbStream`] is a pure function of its seed-driven RNG: the same
//! `(config, client, clients)` triple and RNG stream reproduces the
//! identical operation sequence, which is what lets the serving bench
//! anchor a socket run against an in-process replay byte-for-byte.
//!
//! Keys are plain `u64`s. The initial load phase owns keys
//! `0..records`; inserts from client `c` of `n` extend the space with
//! keys `records + c + k*n` (disjoint per-client strides, so concurrent
//! clients never collide on a fresh key). The "latest" distribution
//! ranks keys by this stream's view of insertion recency.

use envy_sim::dist::{Latest, UniformRange, Zipf};
use envy_sim::rng::Rng;

/// The five core YCSB workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// 50% read / 50% update, zipfian keys.
    A,
    /// 95% read / 5% update, zipfian keys.
    B,
    /// 100% read, zipfian keys.
    C,
    /// 95% read / 5% insert, latest-skewed keys.
    D,
    /// 95% scan / 5% insert, zipfian scan starts.
    E,
}

impl YcsbMix {
    /// Parse a mix letter (case-insensitive).
    pub fn parse(s: &str) -> Option<YcsbMix> {
        match s.to_ascii_lowercase().as_str() {
            "a" => Some(YcsbMix::A),
            "b" => Some(YcsbMix::B),
            "c" => Some(YcsbMix::C),
            "d" => Some(YcsbMix::D),
            "e" => Some(YcsbMix::E),
            _ => None,
        }
    }

    /// The mix's canonical lowercase letter.
    pub fn name(&self) -> &'static str {
        match self {
            YcsbMix::A => "a",
            YcsbMix::B => "b",
            YcsbMix::C => "c",
            YcsbMix::D => "d",
            YcsbMix::E => "e",
        }
    }
}

/// One generated key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Point lookup.
    Read {
        /// The key.
        key: u64,
    },
    /// Overwrite an existing key's value.
    Update {
        /// The key.
        key: u64,
    },
    /// Add a fresh key.
    Insert {
        /// The new key (unique per stream).
        key: u64,
    },
    /// Ordered range read.
    Scan {
        /// First key of the range.
        start: u64,
        /// Records to read.
        limit: u32,
    },
}

/// Parameters shared by every client of one YCSB run.
#[derive(Debug, Clone, PartialEq)]
pub struct YcsbConfig {
    /// Which mix to generate.
    pub mix: YcsbMix,
    /// Records preloaded before the measured run (keys `0..records`).
    pub records: u64,
    /// Value size in bytes (values are deterministic fills).
    pub value_len: usize,
    /// Zipfian exponent (YCSB's default constant is 0.99).
    pub zipf_s: f64,
    /// Scan lengths draw uniformly from `1..=scan_max` (workload E).
    pub scan_max: u32,
}

impl YcsbConfig {
    /// The standard parameters for a mix: YCSB's 0.99 zipfian constant,
    /// 100-byte values, scans of up to 100 records.
    pub fn standard(mix: YcsbMix, records: u64) -> YcsbConfig {
        assert!(records > 0, "ycsb needs at least one preloaded record");
        YcsbConfig {
            mix,
            records,
            value_len: 100,
            zipf_s: 0.99,
            scan_max: 100,
        }
    }

    /// The deterministic value bytes for a key (shared by the load
    /// phase and by updates, so replays agree byte-for-byte).
    pub fn value_for(&self, key: u64, version: u64) -> Vec<u8> {
        let fill = (key ^ version.wrapping_mul(0x9E37)) as u8;
        vec![fill; self.value_len]
    }
}

/// Headroom multiplier for the popularity CDFs: a stream can insert up
/// to this many times the initial record count before latest-skew draws
/// start clamping to the oldest item.
const GROWTH_HEADROOM: u64 = 2;

/// One client's deterministic YCSB operation stream.
#[derive(Debug, Clone)]
pub struct YcsbStream {
    config: YcsbConfig,
    zipf: Zipf,
    latest: Latest,
    scan_len: UniformRange,
    /// This stream's view of the record count (initial + own inserts).
    population: u64,
    /// Inserts drawn so far by this stream.
    inserted: u64,
    client: u64,
    clients: u64,
    /// Monotone per-key version counter (distinguishes update values
    /// from load values without shared state).
    version: u64,
}

impl YcsbStream {
    /// Create the stream for `client` of `clients`.
    ///
    /// # Panics
    ///
    /// If `clients == 0` or `client >= clients`.
    pub fn new(config: &YcsbConfig, client: u32, clients: u32) -> YcsbStream {
        assert!(clients > 0 && client < clients, "client id out of range");
        let capacity = config.records * GROWTH_HEADROOM;
        YcsbStream {
            zipf: Zipf::new(capacity, config.zipf_s),
            latest: Latest::new(capacity, config.zipf_s),
            scan_len: UniformRange::new(1, config.scan_max as u64 + 1),
            population: config.records,
            inserted: 0,
            client: client as u64,
            clients: clients as u64,
            version: 0,
            config: config.clone(),
        }
    }

    /// The run's shared configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Map a recency *position* (0 = oldest) to its key: the load keys
    /// in order, then this stream's inserts in order.
    fn key_at(&self, position: u64) -> u64 {
        if position < self.config.records {
            position
        } else {
            self.config.records + self.client + (position - self.config.records) * self.clients
        }
    }

    /// A zipfian-popular existing key (position by rank, folded into
    /// the current population).
    fn zipf_key(&self, rng: &mut Rng) -> u64 {
        self.key_at(self.zipf.sample(rng) % self.population)
    }

    /// A recency-skewed existing key.
    fn latest_key(&self, rng: &mut Rng) -> u64 {
        self.key_at(self.latest.sample(rng, self.population))
    }

    /// The next fresh key for an insert.
    fn insert_key(&mut self) -> u64 {
        let key = self.config.records + self.client + self.inserted * self.clients;
        self.inserted += 1;
        self.population += 1;
        key
    }

    /// Draw the next operation.
    pub fn next_op(&mut self, rng: &mut Rng) -> YcsbOp {
        self.version += 1;
        match self.config.mix {
            YcsbMix::A => {
                if rng.chance(0.5) {
                    YcsbOp::Read {
                        key: self.zipf_key(rng),
                    }
                } else {
                    YcsbOp::Update {
                        key: self.zipf_key(rng),
                    }
                }
            }
            YcsbMix::B => {
                if rng.chance(0.95) {
                    YcsbOp::Read {
                        key: self.zipf_key(rng),
                    }
                } else {
                    YcsbOp::Update {
                        key: self.zipf_key(rng),
                    }
                }
            }
            YcsbMix::C => YcsbOp::Read {
                key: self.zipf_key(rng),
            },
            YcsbMix::D => {
                if rng.chance(0.95) {
                    YcsbOp::Read {
                        key: self.latest_key(rng),
                    }
                } else {
                    YcsbOp::Insert {
                        key: self.insert_key(),
                    }
                }
            }
            YcsbMix::E => {
                if rng.chance(0.95) {
                    YcsbOp::Scan {
                        start: self.zipf_key(rng),
                        limit: self.scan_len.sample(rng) as u32,
                    }
                } else {
                    YcsbOp::Insert {
                        key: self.insert_key(),
                    }
                }
            }
        }
    }

    /// The monotone version counter (advances once per op), used to
    /// vary update values deterministically.
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(mix: YcsbMix, n: usize, seed: u64) -> Vec<YcsbOp> {
        let config = YcsbConfig::standard(mix, 1_000);
        let mut stream = YcsbStream::new(&config, 0, 1);
        let mut rng = Rng::seed_from(seed);
        (0..n).map(|_| stream.next_op(&mut rng)).collect()
    }

    #[test]
    fn streams_are_deterministic() {
        for mix in [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::D, YcsbMix::E] {
            assert_eq!(ops(mix, 500, 42), ops(mix, 500, 42), "mix {mix:?}");
        }
    }

    #[test]
    fn mix_ratios_are_roughly_right() {
        let count = |mix, pred: fn(&YcsbOp) -> bool| {
            ops(mix, 10_000, 7).iter().filter(|o| pred(o)).count() as f64 / 10_000.0
        };
        let read = |o: &YcsbOp| matches!(o, YcsbOp::Read { .. });
        let update = |o: &YcsbOp| matches!(o, YcsbOp::Update { .. });
        let insert = |o: &YcsbOp| matches!(o, YcsbOp::Insert { .. });
        let scan = |o: &YcsbOp| matches!(o, YcsbOp::Scan { .. });
        assert!((count(YcsbMix::A, read) - 0.5).abs() < 0.03);
        assert!((count(YcsbMix::A, update) - 0.5).abs() < 0.03);
        assert!((count(YcsbMix::B, read) - 0.95).abs() < 0.01);
        assert!((count(YcsbMix::C, read) - 1.0).abs() < 1e-9);
        assert!((count(YcsbMix::D, insert) - 0.05).abs() < 0.01);
        assert!((count(YcsbMix::E, scan) - 0.95).abs() < 0.01);
        assert!((count(YcsbMix::E, insert) - 0.05).abs() < 0.01);
    }

    #[test]
    fn zipfian_mixes_skew_to_hot_keys() {
        // Rank 0 is the hottest key; the head must dominate.
        let reads: Vec<u64> = ops(YcsbMix::C, 20_000, 11)
            .iter()
            .filter_map(|o| match o {
                YcsbOp::Read { key } => Some(*key),
                _ => None,
            })
            .collect();
        let head = reads.iter().filter(|&&k| k < 10).count() as f64;
        let frac = head / reads.len() as f64;
        assert!(
            (0.25..0.50).contains(&frac),
            "hottest-10 fraction {frac} outside the zipfian band"
        );
    }

    #[test]
    fn latest_mix_prefers_recent_keys() {
        let config = YcsbConfig::standard(YcsbMix::D, 1_000);
        let mut stream = YcsbStream::new(&config, 0, 1);
        let mut rng = Rng::seed_from(13);
        let mut recent = 0u64;
        let mut reads = 0u64;
        for _ in 0..20_000 {
            if let YcsbOp::Read { key } = stream.next_op(&mut rng) {
                reads += 1;
                // "Recent" = the newest 10% of the *initial* keyspace
                // or any inserted key.
                if key >= 900 {
                    recent += 1;
                }
            }
        }
        let frac = recent as f64 / reads as f64;
        assert!(
            frac > 0.5,
            "latest distribution puts only {frac} of reads on recent keys"
        );
    }

    #[test]
    fn insert_keys_are_disjoint_across_clients() {
        let config = YcsbConfig::standard(YcsbMix::D, 100);
        let mut seen = std::collections::HashSet::new();
        for client in 0..4u32 {
            let mut stream = YcsbStream::new(&config, client, 4);
            let mut rng = Rng::seed_from(client as u64 + 1);
            for _ in 0..500 {
                if let YcsbOp::Insert { key } = stream.next_op(&mut rng) {
                    assert!(key >= 100, "inserts extend past the load range");
                    assert!(seen.insert(key), "key {key} drawn by two clients");
                }
            }
        }
    }

    #[test]
    fn reads_stay_within_the_live_keyspace() {
        let config = YcsbConfig::standard(YcsbMix::D, 50);
        let mut stream = YcsbStream::new(&config, 1, 3);
        let mut rng = Rng::seed_from(99);
        let mut live: std::collections::HashSet<u64> = (0..50).collect();
        for _ in 0..5_000 {
            match stream.next_op(&mut rng) {
                YcsbOp::Insert { key } => {
                    live.insert(key);
                }
                YcsbOp::Read { key } => {
                    assert!(live.contains(&key), "read of never-inserted key {key}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn scan_limits_respect_the_cap() {
        for op in ops(YcsbMix::E, 5_000, 3) {
            if let YcsbOp::Scan { limit, .. } = op {
                assert!((1..=100).contains(&limit));
            }
        }
    }

    #[test]
    fn values_are_deterministic_and_sized() {
        let config = YcsbConfig::standard(YcsbMix::A, 10);
        assert_eq!(config.value_for(3, 0), config.value_for(3, 0));
        assert_eq!(config.value_for(3, 0).len(), 100);
        assert_ne!(config.value_for(3, 1), config.value_for(3, 2));
    }
}
