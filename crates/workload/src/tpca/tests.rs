//! TPC-A workload tests, including the analytic-vs-functional
//! cross-validation that justifies the 2 GB analytic timing runs.

use super::*;
use envy_core::{EnvyConfig, VecMemory};

fn tiny() -> TpcaScale {
    // 1 branch = 10 tellers = 100k accounts would still be 10 MB+; use a
    // sub-ratio scale for unit tests by constructing layout directly.
    TpcaScale { branches: 1 }
}

#[test]
fn scale_ratios_match_paper() {
    let s = TpcaScale::paper();
    assert_eq!(s.branches, 155);
    assert_eq!(s.tellers(), 1_550);
    assert_eq!(s.accounts(), 15_500_000);
}

#[test]
fn tree_depths_match_figure_12() {
    // Figure 12: branch 2 levels, teller 3 levels, account 5 levels.
    let layout = TpcaLayout::new(TpcaScale::paper());
    assert_eq!(layout.branch_tree.depth(), 2);
    assert_eq!(layout.teller_tree.depth(), 3);
    assert_eq!(layout.account_tree.depth(), 5);
}

#[test]
fn paper_layout_fits_80pct_of_2gb() {
    let layout = TpcaLayout::new(TpcaScale::paper());
    let gb = 1024u64 * 1024 * 1024;
    assert!(layout.total_bytes < 2 * gb, "total {}", layout.total_bytes);
    // Records alone are ~1.55 GB (§5.2).
    let records = TpcaScale::paper().accounts() * RECORD_BYTES;
    assert!(records > gb * 14 / 10);
}

#[test]
fn fit_bytes_is_maximal() {
    let budget = 200 * 1024 * 1024;
    let scale = TpcaScale::fit_bytes(budget);
    assert!(TpcaLayout::new(scale).total_bytes <= budget);
    let bigger = TpcaScale {
        branches: scale.branches + 1,
    };
    assert!(TpcaLayout::new(bigger).total_bytes > budget);
}

#[test]
fn layout_regions_do_not_overlap() {
    let l = TpcaLayout::new(tiny());
    assert!(l.branch_rec < l.teller_rec);
    assert!(l.teller_rec < l.account_rec);
    assert!(l.account_addr(l.scale.accounts() - 1) + RECORD_BYTES <= l.branch_tree.region);
    assert!(l.branch_tree.end <= l.teller_tree.region);
    assert!(l.teller_tree.end <= l.account_tree.region);
    assert_eq!(l.total_bytes, l.account_tree.end);
}

#[test]
fn transactions_respect_hierarchy() {
    let mut rng = Rng::seed_from(1);
    let scale = TpcaScale::paper();
    for _ in 0..1_000 {
        let t = Transaction::generate(scale, &mut rng);
        assert!(t.account < scale.accounts());
        assert_eq!(t.teller, t.account / 10_000);
        assert_eq!(t.branch, t.teller / 10);
    }
}

#[test]
fn functional_tpca_updates_balances() {
    let mut mem = VecMemory::new(64 * 1024 * 1024);
    let scale = tiny();
    let db = FunctionalTpca::setup(&mut mem, scale).unwrap();
    let txn = Transaction {
        account: 12_345,
        teller: 1,
        branch: 0,
        delta: 500,
    };
    db.run_transaction(&mut mem, &txn).unwrap();
    db.run_transaction(&mut mem, &txn).unwrap();
    assert_eq!(db.balance(&mut mem, 2, 12_345).unwrap(), 1_000);
    assert_eq!(db.balance(&mut mem, 1, 1).unwrap(), 1_000);
    assert_eq!(db.balance(&mut mem, 0, 0).unwrap(), 1_000);
    // Untouched records stay zero.
    assert_eq!(db.balance(&mut mem, 2, 99_999).unwrap(), 0);
}

#[test]
fn functional_tpca_conserves_money() {
    let mut mem = VecMemory::new(64 * 1024 * 1024);
    let scale = tiny();
    let db = FunctionalTpca::setup(&mut mem, scale).unwrap();
    let mut rng = Rng::seed_from(9);
    let mut total = 0i64;
    for _ in 0..500 {
        let txn = Transaction::generate(scale, &mut rng);
        total += txn.delta;
        db.run_transaction(&mut mem, &txn).unwrap();
    }
    // Branch balances aggregate every delta.
    let mut branches = 0i64;
    for b in 0..scale.branches {
        branches += db.balance(&mut mem, 0, b).unwrap();
    }
    assert_eq!(branches, total);
}

#[test]
fn functional_tpca_on_envy_store() {
    // The same database through the eNVy controller, exercising COW,
    // flushing and cleaning under a real data structure.
    let scale = tiny();
    let need = TpcaLayout::new(scale).total_bytes;
    // Pick a geometry comfortably holding the layout at ~70% utilization.
    let page = 256u64;
    let pages_needed = (need * 10 / 7) / page;
    let pps = 2048u32;
    let segments = (pages_needed / pps as u64 + 2).next_multiple_of(4) as u32;
    let config = EnvyConfig::scaled(4, segments, pps, page as u32).with_utilization(0.75);
    let mut store = EnvyStore::new(config).unwrap();
    assert!(store.size() >= need);
    let db = FunctionalTpca::setup(&mut store, scale).unwrap();
    let mut rng = Rng::seed_from(13);
    let mut total = 0i64;
    for _ in 0..300 {
        let txn = Transaction::generate(scale, &mut rng);
        total += txn.delta;
        db.run_transaction(&mut store, &txn).unwrap();
    }
    let mut branches = 0i64;
    for b in 0..scale.branches {
        branches += db.balance(&mut store, 0, b).unwrap();
    }
    assert_eq!(branches, total);
    store.check_invariants().unwrap();
}

#[test]
fn analytic_trace_matches_functional_addresses() {
    // Record the addresses the *functional* driver touches and check the
    // analytic trace visits the same ones (the searches' probe sets and
    // the record read-modify-writes).
    use envy_core::{EnvyError, Memory};

    struct Tracing {
        inner: VecMemory,
        log: Vec<(u64, usize, bool)>,
        active: bool,
    }
    impl Memory for Tracing {
        fn size(&self) -> u64 {
            self.inner.size()
        }
        fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EnvyError> {
            if self.active {
                self.log.push((addr, buf.len(), false));
            }
            self.inner.read(addr, buf)
        }
        fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EnvyError> {
            if self.active {
                self.log.push((addr, bytes.len(), true));
            }
            self.inner.write(addr, bytes)
        }
    }

    let scale = tiny();
    let mut mem = Tracing {
        inner: VecMemory::new(64 * 1024 * 1024),
        log: Vec::new(),
        active: false,
    };
    let db = FunctionalTpca::setup(&mut mem, scale).unwrap();
    let analytic = AnalyticTpca::new(scale);
    let mut rng = Rng::seed_from(55);
    for _ in 0..50 {
        let txn = Transaction::generate(scale, &mut rng);
        mem.log.clear();
        mem.active = true;
        db.run_transaction(&mut mem, &txn).unwrap();
        mem.active = false;
        let functional = mem.log.clone();
        let mut analytic_trace = Vec::new();
        analytic.for_each_access(&txn, |a| analytic_trace.push((a.addr, a.len, a.write)));
        assert_eq!(analytic_trace, functional, "trace mismatch for {txn:?}");
    }
}

#[test]
fn analytic_access_counts_are_paper_scale() {
    // The paper's I/O budget: ~10 node visits per transaction across
    // depths 2 + 3 + 5, a handful of probes per node, three record
    // updates.
    let analytic = AnalyticTpca::new(TpcaScale::paper());
    let txn = Transaction {
        account: 7_654_321,
        teller: 765,
        branch: 76,
        delta: 1,
    };
    let mut reads = 0;
    let mut writes = 0;
    analytic.for_each_access(&txn, |a| {
        if a.write {
            writes += 1;
        } else {
            reads += 1;
        }
    });
    assert_eq!(writes, 3, "three balance updates");
    assert!(
        (40..=90).contains(&reads),
        "search+read traffic should be tens of accesses, got {reads}"
    );
}

#[test]
fn timed_run_reports_sane_metrics() {
    // A scaled-down timed run: low rate, so latencies sit at the
    // unloaded values and throughput tracks the offered rate.
    let scale = TpcaScale { branches: 2 };
    let layout_bytes = TpcaLayout::new(scale).total_bytes;
    let pages = (layout_bytes / 256 + 1) * 10 / 8;
    let pps = 4096u32;
    let segments = ((pages / pps as u64) + 2).next_multiple_of(4) as u32;
    let config = EnvyConfig::scaled(4, segments, pps, 256)
        .with_store_data(false)
        .with_utilization(0.8);
    let mut store = EnvyStore::new(config).unwrap();
    assert!(store.size() >= layout_bytes);
    store.prefill().unwrap();
    let driver = AnalyticTpca::new(scale);
    let result = run_timed(&mut store, &driver, 2_000.0, 200, 2_000, 3).unwrap();
    assert!(result.achieved_tps > 1_800.0, "tps {}", result.achieved_tps);
    assert!(result.read_latency >= Ns::from_nanos(160));
    assert!(result.read_latency < Ns::from_nanos(400));
    assert!(result.write_latency >= Ns::from_nanos(160));
    assert!(result.flushes_per_sec > 0.0);
    store.check_invariants().unwrap();
}
