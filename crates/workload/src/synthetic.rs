//! Synthetic page-write workloads for the cleaning studies (§4).
//!
//! The paper evaluates cleaning policies by driving page writes with a
//! bimodal locality-of-reference distribution ("10/90 means that 90 % of
//! all accesses go to 10 % of the data") against arrays of 32–1024
//! segments at 80 % utilization, and reports the *cleaning cost* —
//! cleaner program operations per flushed page (§4.1).

use envy_core::{EnvyConfig, EnvyError, EnvyStore, PolicyKind};
use envy_sim::dist::Bimodal;
use envy_sim::rng::Rng;

/// Configuration of one cleaning-cost measurement.
///
/// Cleaning cost depends on the number of segments, their utilization and
/// the write locality — not on absolute segment size — so studies run
/// with scaled-down segments (`pages_per_segment`) for speed; the paper's
/// own Figure 10 sweeps exactly this dimension.
#[derive(Debug, Clone)]
pub struct CleaningStudy {
    /// Number of Flash banks.
    pub banks: u32,
    /// Number of segments (including the always-erased spare).
    pub segments: u32,
    /// Pages per segment (scaled; the paper's hardware has 65 536).
    pub pages_per_segment: u32,
    /// Live-data fraction of the array (the paper fixes 80 %).
    pub utilization: f64,
    /// Cleaning policy under test.
    pub policy: PolicyKind,
    /// Bimodal locality as (data %, access %); `(50, 50)` is uniform.
    pub locality: (u32, u32),
    /// Writes to run before measuring (steady-state warm-up).
    pub warmup_writes: u64,
    /// Writes measured.
    pub measured_writes: u64,
    /// Wear-leveling trigger (`u64::MAX` disables it so it cannot perturb
    /// the cost measurement).
    pub wear_threshold: u64,
    /// RNG seed.
    pub seed: u64,
}

impl CleaningStudy {
    /// The paper's Figure 8 setup: a 128-segment array at 80 %
    /// utilization, with warm-up and measurement windows of four array
    /// turnovers each.
    pub fn figure8(policy: PolicyKind, locality: (u32, u32)) -> CleaningStudy {
        CleaningStudy::sized(128, 256, policy, locality)
    }

    /// A study over `segments` segments of `pages_per_segment` pages.
    pub fn sized(
        segments: u32,
        pages_per_segment: u32,
        policy: PolicyKind,
        locality: (u32, u32),
    ) -> CleaningStudy {
        let logical = (segments as u64 * pages_per_segment as u64) * 4 / 5;
        CleaningStudy {
            banks: 8.min(segments),
            segments,
            pages_per_segment,
            utilization: 0.8,
            policy,
            locality,
            warmup_writes: logical * 4,
            measured_writes: logical * 4,
            wear_threshold: u64::MAX,
            seed: 0x5EED,
        }
    }

    /// Run the study and report steady-state cleaning metrics.
    ///
    /// # Errors
    ///
    /// Configuration or cleaning errors from the store.
    pub fn run(&self) -> Result<CleaningOutcome, EnvyError> {
        let config = EnvyConfig::scaled(self.banks, self.segments, self.pages_per_segment, 256)
            .with_store_data(false)
            .with_policy(self.policy)
            .with_utilization(self.utilization)
            .with_wear_threshold(self.wear_threshold)
            .with_buffer_pages(self.pages_per_segment as usize);
        let page_bytes = config.geometry.page_bytes() as u64;
        let mut store = EnvyStore::new(config)?;
        store.prefill()?;
        let logical_pages = store.config().logical_pages;
        let dist = Bimodal::from_spec(logical_pages, self.locality.0, self.locality.1);
        let mut rng = Rng::seed_from(self.seed);

        for _ in 0..self.warmup_writes {
            let lp = dist.sample(&mut rng);
            store.write(lp * page_bytes, &[0])?;
        }
        let flushed_before = store.stats().pages_flushed.get();
        let programs_before = store.stats().clean_programs.get();
        let cleans_before = store.stats().cleans.get();
        for _ in 0..self.measured_writes {
            let lp = dist.sample(&mut rng);
            store.write(lp * page_bytes, &[0])?;
        }
        let flushed = store.stats().pages_flushed.get() - flushed_before;
        let clean_programs = store.stats().clean_programs.get() - programs_before;
        let cleans = store.stats().cleans.get() - cleans_before;
        store
            .check_invariants()
            .map_err(|_| EnvyError::CorruptState)?;
        Ok(CleaningOutcome {
            cleaning_cost: if flushed == 0 {
                0.0
            } else {
                clean_programs as f64 / flushed as f64
            },
            pages_flushed: flushed,
            clean_programs,
            cleans,
            wear_spread: store.engine().flash().max_erase_cycles()
                - store.engine().flash().min_erase_cycles(),
        })
    }
}

/// Steady-state metrics from a [`CleaningStudy`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleaningOutcome {
    /// Cleaner program operations per flushed page (§4.1).
    pub cleaning_cost: f64,
    /// Pages flushed in the measurement window.
    pub pages_flushed: u64,
    /// Cleaner programs in the window.
    pub clean_programs: u64,
    /// Cleaning operations (segments cleaned) in the window.
    pub cleans: u64,
    /// Final erase-cycle spread across segments.
    pub wear_spread: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyKind, locality: (u32, u32)) -> CleaningOutcome {
        let mut s = CleaningStudy::sized(32, 64, policy, locality);
        s.warmup_writes /= 2;
        s.measured_writes /= 2;
        s.run().unwrap()
    }

    #[test]
    fn uniform_costs_are_positive_and_sane() {
        for policy in [PolicyKind::Greedy, PolicyKind::Fifo] {
            let out = quick(policy, (50, 50));
            assert!(out.pages_flushed > 0);
            assert!(
                out.cleaning_cost > 0.2 && out.cleaning_cost < 4.0,
                "{policy:?} uniform cost {}",
                out.cleaning_cost
            );
        }
    }

    #[test]
    fn greedy_degrades_with_locality() {
        let uniform = quick(PolicyKind::Greedy, (50, 50));
        let skewed = quick(PolicyKind::Greedy, (10, 90));
        assert!(
            skewed.cleaning_cost > uniform.cleaning_cost,
            "greedy: skewed {} should exceed uniform {}",
            skewed.cleaning_cost,
            uniform.cleaning_cost
        );
    }

    #[test]
    fn locality_gathering_improves_with_locality() {
        let uniform = quick(PolicyKind::LocalityGathering, (50, 50));
        let skewed = quick(PolicyKind::LocalityGathering, (5, 95));
        assert!(
            skewed.cleaning_cost < uniform.cleaning_cost,
            "LG: skewed {} should be below uniform {}",
            skewed.cleaning_cost,
            uniform.cleaning_cost
        );
    }

    #[test]
    fn hybrid_beats_locality_gathering_at_uniform() {
        let hybrid = quick(
            PolicyKind::Hybrid {
                segments_per_partition: 8,
            },
            (50, 50),
        );
        let lg = quick(PolicyKind::LocalityGathering, (50, 50));
        assert!(
            hybrid.cleaning_cost < lg.cleaning_cost,
            "hybrid {} should beat pure LG {} on uniform traffic",
            hybrid.cleaning_cost,
            lg.cleaning_cost
        );
    }

    #[test]
    fn outcome_flush_accounting_consistent() {
        let out = quick(PolicyKind::Fifo, (50, 50));
        assert!(out.clean_programs > 0);
        assert!(out.cleans > 0);
        let implied = out.clean_programs as f64 / out.pages_flushed as f64;
        assert!((implied - out.cleaning_cost).abs() < 1e-9);
    }
}
