//! The TPC-A storage workload (§5.2).
//!
//! "TPC-A models a banking transaction system made up of several banks
//! \[branches\], bank tellers, and individual accounts such that for every
//! bank, there are 10 tellers, each of which is responsible for 10,000
//! accounts. Balance information for each bank, teller, and account is
//! kept in the form of a 100 byte record. Each transaction involves an
//! atomic operation consisting of changing the balance of an individual
//! account and updating the corresponding bank and teller records … For
//! each transaction, three index trees have to be searched … The
//! simulator implements each index tree as a B-Tree with 32 entries per
//! node."
//!
//! Two drivers share one address layout:
//!
//! * [`FunctionalTpca`] maintains real records and real
//!   [`envy_btree::BTree`] indexes through the [`Memory`] interface —
//!   used for correctness tests and examples.
//! * [`AnalyticTpca`] generates the *identical* word-level address trace
//!   arithmetically (the trees are static, bulk-loaded structures), so
//!   full-scale 2 GB timing runs need not store payload bytes. A test
//!   cross-validates the two traces.

use envy_btree::{BTree, BTreeError, FANOUT, NODE_BYTES};
use envy_core::{EnvyError, EnvyStore, Memory};
use envy_sim::dist::Exponential;
use envy_sim::rng::Rng;
use envy_sim::time::Ns;

/// Bytes per balance record (§5.2).
pub const RECORD_BYTES: u64 = 100;

/// Region header used by [`BTree`] bulk loading.
const TREE_HEADER: u64 = 32;

/// Scale of a TPC-A database, defined by its branch count; tellers and
/// accounts follow the 1 : 10 : 100 000 ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcaScale {
    /// Number of branches ("banks").
    pub branches: u64,
}

impl TpcaScale {
    /// The paper's 2 GB database: 155 branches, 1 550 tellers,
    /// 15.5 million accounts (Figure 12).
    pub fn paper() -> TpcaScale {
        TpcaScale { branches: 155 }
    }

    /// Number of tellers.
    pub fn tellers(&self) -> u64 {
        self.branches * 10
    }

    /// Number of accounts.
    pub fn accounts(&self) -> u64 {
        self.branches * 100_000
    }

    /// The largest scale whose layout (records + indexes) fits in
    /// `bytes`. ("The database can be scaled to fit any storage system
    /// using the ratios described above.")
    pub fn fit_bytes(bytes: u64) -> TpcaScale {
        let mut lo = 1u64;
        let mut hi = 1u64;
        while TpcaLayout::new(TpcaScale { branches: hi * 2 }).total_bytes <= bytes {
            hi *= 2;
        }
        hi *= 2;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if TpcaLayout::new(TpcaScale { branches: mid }).total_bytes <= bytes {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        TpcaScale {
            branches: lo.max(1),
        }
    }
}

/// One level of a bulk-loaded B-Tree, leaves first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeLevel {
    /// Address of the level's first node.
    pub base: u64,
    /// Nodes in the level.
    pub nodes: u64,
}

/// The arithmetic shape of a bulk-loaded order-32 B-Tree over dense keys
/// `0..n` — node addresses are computable from the key alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Region start (the [`BTree`] header lives here).
    pub region: u64,
    /// Number of keys indexed.
    pub keys: u64,
    /// Levels, leaves first; the last level is the single root.
    pub levels: Vec<TreeLevel>,
    /// End of the region (exclusive).
    pub end: u64,
}

impl TreeShape {
    /// Shape of a bulk-loaded tree over `keys` dense keys at `region`.
    pub fn new(region: u64, keys: u64) -> TreeShape {
        let keys = keys.max(1);
        let mut levels = Vec::new();
        let mut cursor = region + TREE_HEADER;
        let mut nodes = keys.div_ceil(FANOUT as u64).max(1);
        loop {
            levels.push(TreeLevel {
                base: cursor,
                nodes,
            });
            cursor += nodes * NODE_BYTES as u64;
            if nodes == 1 {
                break;
            }
            nodes = nodes.div_ceil(FANOUT as u64);
        }
        TreeShape {
            region,
            keys,
            levels,
            end: cursor,
        }
    }

    /// Tree depth (number of levels).
    pub fn depth(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Address of node `idx` in `level` (0 = leaves).
    pub fn node_addr(&self, level: usize, idx: u64) -> u64 {
        self.levels[level].base + idx * NODE_BYTES as u64
    }

    /// Visit the address trace of a root-to-leaf search for `key`,
    /// mirroring [`BTree::get_probed`]: per node a 2-byte header read,
    /// a binary-search sequence of 8-byte key probes, and one 8-byte
    /// value read.
    pub fn for_each_search_access<F: FnMut(u64, usize)>(&self, key: u64, mut access: F) {
        // The fanout is a power of two, so per-level subtree widths are
        // shifts rather than a pow()/division pair on the innermost
        // workload loop.
        const _: () = assert!(FANOUT.is_power_of_two());
        const FB: u32 = (FANOUT as u64).trailing_zeros();
        let top = self.levels.len() - 1;
        for level in (0..=top).rev() {
            // Keys per entry at this level; an internal entry's key is the
            // first key of the subtree below it.
            let unit = 1u64 << (FB * level as u32);
            let node_idx = key >> (FB * (level as u32 + 1));
            let node = self.node_addr(level, node_idx);
            access(node, 2); // header (leaf flag + count)
            let count = self.node_entries(level, node_idx);
            let entry_key = |j: u64| (node_idx * FANOUT as u64 + j) * unit;
            let mut lo = 0u64;
            let mut hi = count;
            let mut found = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                access(node + 16 + mid * 16, 8); // key probe
                match entry_key(mid).cmp(&key) {
                    std::cmp::Ordering::Equal => {
                        found = Some(mid);
                        break;
                    }
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                }
            }
            let idx = found.unwrap_or_else(|| lo.saturating_sub(1));
            access(node + 16 + idx * 16 + 8, 8); // value (child or record)
        }
    }

    /// Number of entries in a node (all nodes are full except the last
    /// of each level).
    fn node_entries(&self, level: usize, idx: u64) -> u64 {
        let this = self.levels[level].nodes;
        let items = if level == 0 {
            self.keys
        } else {
            self.levels[level - 1].nodes
        };
        if idx + 1 < this {
            FANOUT as u64
        } else {
            items - (this - 1) * FANOUT as u64
        }
    }
}

/// The address layout of a TPC-A database in the linear array: three
/// record regions followed by three index trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpcaLayout {
    /// Database scale.
    pub scale: TpcaScale,
    /// Base of branch records.
    pub branch_rec: u64,
    /// Base of teller records.
    pub teller_rec: u64,
    /// Base of account records.
    pub account_rec: u64,
    /// Branch index shape.
    pub branch_tree: TreeShape,
    /// Teller index shape.
    pub teller_tree: TreeShape,
    /// Account index shape.
    pub account_tree: TreeShape,
    /// Total bytes of the layout.
    pub total_bytes: u64,
}

impl TpcaLayout {
    /// Lay out a database of the given scale starting at address 0.
    pub fn new(scale: TpcaScale) -> TpcaLayout {
        let branch_rec = 0;
        let teller_rec = branch_rec + scale.branches * RECORD_BYTES;
        let account_rec = teller_rec + scale.tellers() * RECORD_BYTES;
        let trees_base = account_rec + scale.accounts() * RECORD_BYTES;
        let branch_tree = TreeShape::new(trees_base, scale.branches);
        let teller_tree = TreeShape::new(branch_tree.end, scale.tellers());
        let account_tree = TreeShape::new(teller_tree.end, scale.accounts());
        TpcaLayout {
            scale,
            branch_rec,
            teller_rec,
            account_rec,
            total_bytes: account_tree.end,
            branch_tree,
            teller_tree,
            account_tree,
        }
    }

    /// Address of a branch record.
    pub fn branch_addr(&self, id: u64) -> u64 {
        self.branch_rec + id * RECORD_BYTES
    }

    /// Address of a teller record.
    pub fn teller_addr(&self, id: u64) -> u64 {
        self.teller_rec + id * RECORD_BYTES
    }

    /// Address of an account record.
    pub fn account_addr(&self, id: u64) -> u64 {
        self.account_rec + id * RECORD_BYTES
    }
}

/// One TPC-A transaction: debit/credit `delta` against an account and
/// its teller and branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Account id (uniformly distributed, §5.2).
    pub account: u64,
    /// The account's teller.
    pub teller: u64,
    /// The teller's branch.
    pub branch: u64,
    /// Balance change.
    pub delta: i64,
}

impl Transaction {
    /// Draw a transaction: uniform account; teller and branch follow
    /// from the 1 : 10 : 100 000 hierarchy.
    pub fn generate(scale: TpcaScale, rng: &mut Rng) -> Transaction {
        let account = rng.below(scale.accounts());
        let teller = account / 10_000;
        let branch = teller / 10;
        let delta = (rng.below(2_000) as i64) - 1_000;
        Transaction {
            account,
            teller,
            branch,
            delta,
        }
    }
}

// ---------------------------------------------------------------------
// Functional driver
// ---------------------------------------------------------------------

/// A real TPC-A database over any [`Memory`]: three B-Tree indexes
/// mapping ids to record addresses, with 100-byte balance records.
#[derive(Debug, Clone)]
pub struct FunctionalTpca {
    layout: TpcaLayout,
    branch_tree: BTree,
    teller_tree: BTree,
    account_tree: BTree,
}

impl FunctionalTpca {
    /// Build the database: records zeroed, indexes bulk-loaded.
    ///
    /// # Errors
    ///
    /// Tree or memory errors (typically: the memory is too small for the
    /// scale).
    pub fn setup<M: Memory>(mem: &mut M, scale: TpcaScale) -> Result<FunctionalTpca, BTreeError> {
        let layout = TpcaLayout::new(scale);
        let zero = [0u8; RECORD_BYTES as usize];
        for b in 0..scale.branches {
            mem.write(layout.branch_addr(b), &zero)?;
        }
        for t in 0..scale.tellers() {
            mem.write(layout.teller_addr(t), &zero)?;
        }
        for a in 0..scale.accounts() {
            mem.write(layout.account_addr(a), &zero)?;
        }
        let tree_len = |shape: &TreeShape| shape.end - shape.region;
        let branch_tree = BTree::bulk_load(
            mem,
            layout.branch_tree.region,
            tree_len(&layout.branch_tree),
            (0..scale.branches).map(|b| (b, layout.branch_addr(b))),
        )?;
        let teller_tree = BTree::bulk_load(
            mem,
            layout.teller_tree.region,
            tree_len(&layout.teller_tree),
            (0..scale.tellers()).map(|t| (t, layout.teller_addr(t))),
        )?;
        let account_tree = BTree::bulk_load(
            mem,
            layout.account_tree.region,
            tree_len(&layout.account_tree),
            (0..scale.accounts()).map(|a| (a, layout.account_addr(a))),
        )?;
        Ok(FunctionalTpca {
            layout,
            branch_tree,
            teller_tree,
            account_tree,
        })
    }

    /// The address layout.
    pub fn layout(&self) -> &TpcaLayout {
        &self.layout
    }

    /// Execute one transaction: three index searches, three balance
    /// read-modify-writes.
    ///
    /// # Errors
    ///
    /// Tree or memory errors.
    ///
    /// # Panics
    ///
    /// Panics if an indexed id is missing (database corruption).
    pub fn run_transaction<M: Memory>(
        &self,
        mem: &mut M,
        txn: &Transaction,
    ) -> Result<(), BTreeError> {
        let targets = [
            (&self.account_tree, txn.account),
            (&self.teller_tree, txn.teller),
            (&self.branch_tree, txn.branch),
        ];
        for (tree, key) in targets {
            let addr = tree.get_probed(mem, key)?.expect("indexed id must resolve");
            let mut bal = [0u8; 8];
            mem.read(addr, &mut bal)?;
            let new = i64::from_le_bytes(bal) + txn.delta;
            mem.write(addr, &new.to_le_bytes())?;
        }
        Ok(())
    }

    /// Read a balance directly (test support). `kind` 0 = branch,
    /// 1 = teller, 2 = account.
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn balance<M: Memory>(&self, mem: &mut M, kind: u8, id: u64) -> Result<i64, BTreeError> {
        let addr = match kind {
            0 => self.layout.branch_addr(id),
            1 => self.layout.teller_addr(id),
            _ => self.layout.account_addr(id),
        };
        let mut bal = [0u8; 8];
        mem.read(addr, &mut bal)?;
        Ok(i64::from_le_bytes(bal))
    }
}

// ---------------------------------------------------------------------
// Analytic driver
// ---------------------------------------------------------------------

/// One address in a transaction's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAccess {
    /// Byte address.
    pub addr: u64,
    /// Access length in bytes.
    pub len: usize,
    /// Write (`true`) or read.
    pub write: bool,
}

/// Generates TPC-A address traces arithmetically from the layout — no
/// payload storage required, enabling the paper's full 2 GB timing runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyticTpca {
    layout: TpcaLayout,
}

impl AnalyticTpca {
    /// Create a driver for the given scale.
    pub fn new(scale: TpcaScale) -> AnalyticTpca {
        AnalyticTpca {
            layout: TpcaLayout::new(scale),
        }
    }

    /// The address layout.
    pub fn layout(&self) -> &TpcaLayout {
        &self.layout
    }

    /// Visit every access of a transaction, in issue order.
    pub fn for_each_access<F: FnMut(TraceAccess)>(&self, txn: &Transaction, mut f: F) {
        let searches = [
            (
                &self.layout.account_tree,
                txn.account,
                self.layout.account_addr(txn.account),
            ),
            (
                &self.layout.teller_tree,
                txn.teller,
                self.layout.teller_addr(txn.teller),
            ),
            (
                &self.layout.branch_tree,
                txn.branch,
                self.layout.branch_addr(txn.branch),
            ),
        ];
        for (tree, key, record) in searches {
            tree.for_each_search_access(key, |addr, len| {
                f(TraceAccess {
                    addr,
                    len,
                    write: false,
                })
            });
            // Balance read-modify-write on the record.
            f(TraceAccess {
                addr: record,
                len: 8,
                write: false,
            });
            f(TraceAccess {
                addr: record,
                len: 8,
                write: true,
            });
        }
    }

    /// Execute one transaction against a timed store starting at `now`;
    /// returns the completion time.
    ///
    /// # Errors
    ///
    /// Store errors (the layout must fit the logical array).
    pub fn run_transaction_timed(
        &self,
        store: &mut EnvyStore,
        now: Ns,
        txn: &Transaction,
    ) -> Result<Ns, EnvyError> {
        let mut t = now;
        let mut scratch = [0u8; 8];
        let mut result: Result<(), EnvyError> = Ok(());
        self.for_each_access(txn, |a| {
            if result.is_err() {
                return;
            }
            let outcome = if a.write {
                store.write_at(t, a.addr, &scratch[..a.len.min(8)])
            } else {
                store.read_at(t, a.addr, &mut scratch[..a.len.min(8)])
            };
            match outcome {
                Ok(done) => t = done.completed,
                Err(e) => result = Err(e),
            }
        });
        result?;
        Ok(t)
    }
}

// ---------------------------------------------------------------------
// Timed runner
// ---------------------------------------------------------------------

/// Results of a timed TPC-A run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Offered transaction rate (requests per second).
    pub offered_tps: f64,
    /// Achieved throughput (completed per simulated second).
    pub achieved_tps: f64,
    /// Simulated duration.
    pub sim_time: Ns,
    /// Transactions completed.
    pub completed: u64,
    /// Mean read latency over the run.
    pub read_latency: Ns,
    /// Mean write latency over the run.
    pub write_latency: Ns,
    /// Pages flushed per simulated second.
    pub flushes_per_sec: f64,
    /// Cleaning cost over the run (§4.1).
    pub cleaning_cost: f64,
}

/// Drive a timed store with TPC-A transactions at `rate_tps` with
/// exponential inter-arrival times (§5.2), measuring from a clean stats
/// baseline after `warmup` transactions.
///
/// # Errors
///
/// Store errors.
pub fn run_timed(
    store: &mut EnvyStore,
    driver: &AnalyticTpca,
    rate_tps: f64,
    warmup: u64,
    transactions: u64,
    seed: u64,
) -> Result<RunResult, EnvyError> {
    let scale = driver.layout().scale;
    let arrivals = Exponential::with_rate_per_sec(rate_tps);
    let mut rng = Rng::seed_from(seed);
    let mut arrival = store.now();

    for _ in 0..warmup {
        arrival += arrivals.sample(&mut rng);
        let txn = Transaction::generate(scale, &mut rng);
        driver.run_transaction_timed(store, arrival, &txn)?;
    }
    let t0 = store.now();
    let reads0 = (
        store.stats().read_latency.count(),
        store.stats().read_latency.sum(),
    );
    let writes0 = (
        store.stats().write_latency.count(),
        store.stats().write_latency.sum(),
    );
    let flushed0 = store.stats().pages_flushed.get();
    let programs0 = store.stats().clean_programs.get();

    for _ in 0..transactions {
        arrival += arrivals.sample(&mut rng);
        let txn = Transaction::generate(scale, &mut rng);
        driver.run_transaction_timed(store, arrival, &txn)?;
    }
    let t1 = store.now();
    let sim_time = t1 - t0;
    let secs = sim_time.as_secs_f64();
    let dr = store.stats().read_latency.count() - reads0.0;
    let drs = store.stats().read_latency.sum() - reads0.1;
    let dw = store.stats().write_latency.count() - writes0.0;
    let dws = store.stats().write_latency.sum() - writes0.1;
    let flushed = store.stats().pages_flushed.get() - flushed0;
    let programs = store.stats().clean_programs.get() - programs0;
    Ok(RunResult {
        offered_tps: rate_tps,
        achieved_tps: transactions as f64 / secs,
        sim_time,
        completed: transactions,
        read_latency: if dr == 0 { Ns::ZERO } else { drs / dr },
        write_latency: if dw == 0 { Ns::ZERO } else { dws / dw },
        flushes_per_sec: flushed as f64 / secs,
        cleaning_cost: if flushed == 0 {
            0.0
        } else {
            programs as f64 / flushed as f64
        },
    })
}

#[cfg(test)]
mod tests;
