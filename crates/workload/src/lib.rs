#![warn(missing_docs)]
//! # envy-workload — the paper's evaluation workloads
//!
//! * [`synthetic`] — page-granularity write streams with the bimodal
//!   "x/y" localities of reference used by the cleaning studies
//!   (Figures 6, 8, 9, 10), plus the harness that measures cleaning cost
//!   in steady state.
//! * [`trace`] — access-trace recording, text serialization, and timed
//!   or untimed replay.
//! * [`tpca`] — the TPC-A storage workload of §5.2: branch/teller/account
//!   records (1 : 10 : 100 000), three order-32 B-Tree indexes, uniform
//!   account selection, exponential arrivals. Provided in two forms: a
//!   *functional* driver that maintains real records and indexes through
//!   the [`envy_core::Memory`] interface, and an *analytic* driver that
//!   generates the identical address trace arithmetically for
//!   full-scale (2 GB) timing runs.
//! * [`ycsb`] — the five core YCSB key-value serving mixes (A–E) with
//!   zipfian and latest key popularity, generated as deterministic
//!   per-client operation streams for the `envy-kv` serving benchmarks.

pub mod synthetic;
pub mod tpca;
pub mod trace;
pub mod ycsb;

pub use synthetic::{CleaningOutcome, CleaningStudy};
pub use tpca::{
    run_timed, AnalyticTpca, FunctionalTpca, RunResult, TpcaLayout, TpcaScale, Transaction,
};
pub use trace::{ReplayStats, Trace, TraceEvent, TracingMemory};
pub use ycsb::{YcsbConfig, YcsbMix, YcsbOp, YcsbStream};
