//! Access-trace recording and replay.
//!
//! Traces decouple workload generation from execution: record the
//! word-level access stream of any workload (a [`TracingMemory`] wrapper
//! captures accesses made through the [`Memory`] interface, or generate
//! one analytically), save it as text, and replay it later — untimed for
//! state studies or timed for latency/throughput measurements. This is
//! how storage papers of the era evaluated against captured traces
//! (e.g. the UNIX disk traces of Ruemmler & Wilkes cited in §7).
//!
//! # Text format
//!
//! One event per line: `R|W <addr> <len> [<nanoseconds>]`, `#` comments.
//!
//! ```text
//! # TPC-A fragment
//! R 11706108 2
//! W 3850100 8 120450
//! ```

use crate::tpca::{AnalyticTpca, Transaction};
use envy_core::{EnvyError, EnvyStore, Memory};
use envy_sim::dist::Exponential;
use envy_sim::rng::Rng;
use envy_sim::time::Ns;
use std::error::Error;
use std::fmt;

/// One recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Byte address.
    pub addr: u64,
    /// Access length in bytes.
    pub len: u32,
    /// Write (`true`) or read.
    pub write: bool,
    /// Issue time, when the trace is timed (`None` = back-to-back).
    pub at: Option<Ns>,
}

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    what: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.what)
    }
}

impl Error for ParseTraceError {}

/// A sequence of accesses, recordable and replayable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Outcome of a timed replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayStats {
    /// Events replayed.
    pub events: u64,
    /// Simulated duration.
    pub sim_time: Ns,
    /// Mean read latency.
    pub read_latency: Ns,
    /// Mean write latency.
    pub write_latency: Ns,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generate a timed TPC-A trace analytically: `transactions`
    /// arrivals at `rate_tps` with exponential inter-arrival times.
    pub fn from_tpca(driver: &AnalyticTpca, rate_tps: f64, transactions: u64, seed: u64) -> Trace {
        let mut trace = Trace::new();
        let scale = driver.layout().scale;
        let arrivals = Exponential::with_rate_per_sec(rate_tps);
        let mut rng = Rng::seed_from(seed);
        let mut at = Ns::ZERO;
        for _ in 0..transactions {
            at += arrivals.sample(&mut rng);
            let txn = Transaction::generate(scale, &mut rng);
            driver.for_each_access(&txn, |a| {
                trace.push(TraceEvent {
                    addr: a.addr,
                    len: a.len as u32,
                    write: a.write,
                    at: Some(at),
                });
            });
        }
        trace
    }

    /// Serialize to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 16);
        for e in &self.events {
            out.push(if e.write { 'W' } else { 'R' });
            out.push(' ');
            out.push_str(&e.addr.to_string());
            out.push(' ');
            out.push_str(&e.len.to_string());
            if let Some(at) = e.at {
                out.push(' ');
                out.push_str(&at.as_nanos().to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Parse the text format.
    ///
    /// # Errors
    ///
    /// [`ParseTraceError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
        let mut trace = Trace::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| ParseTraceError {
                line: idx + 1,
                what: what.to_string(),
            };
            let mut parts = line.split_whitespace();
            let write = match parts.next() {
                Some("R") | Some("r") => false,
                Some("W") | Some("w") => true,
                _ => return Err(err("expected R or W")),
            };
            let addr = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad address"))?;
            let len = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad length"))?;
            let at = match parts.next() {
                None => None,
                Some(s) => Some(Ns::from_nanos(s.parse().map_err(|_| err("bad timestamp"))?)),
            };
            if parts.next().is_some() {
                return Err(err("trailing fields"));
            }
            trace.push(TraceEvent {
                addr,
                len,
                write,
                at,
            });
        }
        Ok(trace)
    }

    /// Replay against any [`Memory`] (untimed); writes store zeros.
    ///
    /// # Errors
    ///
    /// Memory errors (e.g. the trace exceeds the address space).
    pub fn replay<M: Memory>(&self, mem: &mut M) -> Result<(), EnvyError> {
        let mut buf = vec![0u8; 64];
        for e in &self.events {
            let len = e.len as usize;
            if buf.len() < len {
                buf.resize(len, 0);
            }
            if e.write {
                mem.write(e.addr, &buf[..len])?;
            } else {
                mem.read(e.addr, &mut buf[..len])?;
            }
        }
        Ok(())
    }

    /// Replay against a timed store, honouring recorded issue times
    /// (back-to-back when absent).
    ///
    /// # Errors
    ///
    /// Store errors.
    pub fn replay_timed(&self, store: &mut EnvyStore) -> Result<ReplayStats, EnvyError> {
        let t0 = store.now();
        let reads0 = (
            store.stats().read_latency.count(),
            store.stats().read_latency.sum(),
        );
        let writes0 = (
            store.stats().write_latency.count(),
            store.stats().write_latency.sum(),
        );
        let mut buf = vec![0u8; 64];
        let mut t = t0;
        for e in &self.events {
            let len = e.len as usize;
            if buf.len() < len {
                buf.resize(len, 0);
            }
            let issue = e.at.unwrap_or(t);
            let done = if e.write {
                store.write_at(issue, e.addr, &buf[..len])?
            } else {
                store.read_at(issue, e.addr, &mut buf[..len])?
            };
            t = done.completed;
        }
        let dr = store.stats().read_latency.count() - reads0.0;
        let drs = store.stats().read_latency.sum() - reads0.1;
        let dw = store.stats().write_latency.count() - writes0.0;
        let dws = store.stats().write_latency.sum() - writes0.1;
        Ok(ReplayStats {
            events: self.events.len() as u64,
            sim_time: store.now() - t0,
            read_latency: if dr == 0 { Ns::ZERO } else { drs / dr },
            write_latency: if dw == 0 { Ns::ZERO } else { dws / dw },
        })
    }
}

/// A [`Memory`] wrapper that records every access flowing through it.
#[derive(Debug)]
pub struct TracingMemory<M> {
    inner: M,
    trace: Trace,
    enabled: bool,
}

impl<M: Memory> TracingMemory<M> {
    /// Wrap a memory; recording starts enabled.
    pub fn new(inner: M) -> TracingMemory<M> {
        TracingMemory {
            inner,
            trace: Trace::new(),
            enabled: true,
        }
    }

    /// Pause or resume recording.
    pub fn set_recording(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Unwrap, returning the inner memory and the trace.
    pub fn into_parts(self) -> (M, Trace) {
        (self.inner, self.trace)
    }
}

impl<M: Memory> Memory for TracingMemory<M> {
    fn size(&self) -> u64 {
        self.inner.size()
    }

    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EnvyError> {
        if self.enabled {
            self.trace.push(TraceEvent {
                addr,
                len: buf.len() as u32,
                write: false,
                at: None,
            });
        }
        self.inner.read(addr, buf)
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EnvyError> {
        if self.enabled {
            self.trace.push(TraceEvent {
                addr,
                len: bytes.len() as u32,
                write: true,
                at: None,
            });
        }
        self.inner.write(addr, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpca::TpcaScale;
    use envy_core::VecMemory;

    #[test]
    fn text_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            addr: 100,
            len: 8,
            write: false,
            at: None,
        });
        t.push(TraceEvent {
            addr: 200,
            len: 2,
            write: true,
            at: Some(Ns::from_nanos(500)),
        });
        let text = t.to_text();
        assert_eq!(text, "R 100 8\nW 200 2 500\n");
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let t = Trace::from_text("# header\n\n  R 5 1\n# tail\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].addr, 5);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = Trace::from_text("R 1 1\nX 2 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        assert!(Trace::from_text("R abc 1").is_err());
        assert!(Trace::from_text("R 1").is_err());
        assert!(Trace::from_text("R 1 1 2 3").is_err());
    }

    #[test]
    fn tracing_memory_records_accesses() {
        let mut mem = TracingMemory::new(VecMemory::new(1024));
        mem.write(10, &[1, 2]).unwrap();
        let mut b = [0u8; 2];
        mem.read(10, &mut b).unwrap();
        mem.set_recording(false);
        mem.read(10, &mut b).unwrap();
        let (_, trace) = mem.into_parts();
        assert_eq!(trace.len(), 2);
        assert!(trace.events()[0].write);
        assert!(!trace.events()[1].write);
    }

    #[test]
    fn replay_reproduces_state() {
        // Record a workload, replay it on a fresh memory, compare states.
        let mut recorded = TracingMemory::new(VecMemory::new(4096));
        for i in 0..32u64 {
            recorded.write(i * 64, &[0u8; 8]).unwrap();
        }
        let (_, trace) = recorded.into_parts();
        let mut fresh = VecMemory::new(4096);
        trace.replay(&mut fresh).unwrap();
        let mut b = [0xFFu8; 8];
        fresh.read(31 * 64, &mut b).unwrap();
        assert_eq!(b, [0u8; 8]);
    }

    #[test]
    fn tpca_trace_generation_is_deterministic() {
        let driver = AnalyticTpca::new(TpcaScale { branches: 1 });
        let a = Trace::from_tpca(&driver, 1_000.0, 10, 9);
        let b = Trace::from_tpca(&driver, 1_000.0, 10, 9);
        assert_eq!(a, b);
        assert!(a.len() > 100, "10 transactions produce many accesses");
        // Timestamps are monotone non-decreasing.
        let times: Vec<u64> = a
            .events()
            .iter()
            .map(|e| e.at.unwrap().as_nanos())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn timed_replay_on_envy_store() {
        use envy_core::{EnvyConfig, EnvyStore};
        let scale = TpcaScale { branches: 1 };
        let layout_bytes = crate::tpca::TpcaLayout::new(scale).total_bytes;
        let pps = 4096u32;
        let pages = (layout_bytes / 256 + 1) * 10 / 8;
        let segments = ((pages / pps as u64) + 2).next_multiple_of(4) as u32;
        let config = EnvyConfig::scaled(4, segments, pps, 256)
            .with_store_data(false)
            .with_utilization(0.8);
        let mut store = EnvyStore::new(config).unwrap();
        store.prefill().unwrap();
        let driver = AnalyticTpca::new(scale);
        let trace = Trace::from_tpca(&driver, 5_000.0, 50, 3);
        let stats = trace.replay_timed(&mut store).unwrap();
        assert_eq!(stats.events, trace.len() as u64);
        assert!(stats.sim_time > Ns::ZERO);
        assert!(stats.read_latency >= Ns::from_nanos(160));
    }
}
