//! Integration tests for the shared sweep layer: parallel execution must
//! be byte-identical to sequential, and `fork()` must behave exactly like
//! continuing the original store.

use envy_bench::{point_seed, PointResult, SweepSpec};
use envy_core::{EnvyConfig, EnvyStore};
use envy_sim::report::Table;
use envy_sim::rng::Rng;

/// A 4-point sweep run on 4 workers renders the same text table and CSV,
/// byte for byte, as the same sweep run sequentially.
#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let points: Vec<u64> = vec![3, 1, 4, 1];
    let work = |index: usize, &p: &u64| {
        // Deterministic per-point work: derive everything from the point
        // seed, never from thread identity or timing.
        let mut rng = Rng::seed_from(point_seed(0xFEED, index as u64));
        let mut acc = 0u64;
        for _ in 0..1_000 * (p + 1) {
            acc = acc.wrapping_add(rng.below(1_000_000));
        }
        PointResult::row(
            format!("p={p}"),
            vec![format!("{p}"), format!("{index}"), format!("{acc}")],
        )
        .metric("acc", acc as f64)
    };

    let spec = SweepSpec::new("test_sweep", points);
    let seq = spec.run_with_jobs(1, work);
    let par = spec.run_with_jobs(4, work);

    let render = |rows: &[Vec<String>]| {
        let mut table = Table::new(&["point", "index", "acc"]);
        for row in rows {
            table.row(row);
        }
        (table.render(), table.to_csv())
    };
    let (seq_text, seq_csv) = render(&seq.rows);
    let (par_text, par_csv) = render(&par.rows);
    assert_eq!(seq_text, par_text, "text tables must match byte-for-byte");
    assert_eq!(seq_csv, par_csv, "CSV must match byte-for-byte");
    assert_eq!(seq.points, par.points, "JSON metric points must match");
    assert_eq!(seq.jobs, 1);
    assert_eq!(par.jobs, 4);
}

fn write_stream(store: &mut EnvyStore, seed: u64, writes: u64) {
    let pages = store.config().logical_pages;
    let page_bytes = 256u64;
    let mut rng = Rng::seed_from(seed);
    for _ in 0..writes {
        store
            .write(rng.below(pages) * page_bytes, &[0xAB])
            .expect("write");
    }
}

/// `fork()` clones the full engine state but zeroes the statistics, so a
/// forked store fed the same write stream as the original must report
/// exactly the original's stat *deltas*.
#[test]
fn fork_then_identical_writes_gives_identical_stats() {
    let config = EnvyConfig::scaled(4, 16, 128, 256).with_store_data(false);
    let mut base = EnvyStore::new(config).expect("valid config");
    base.prefill().expect("prefill");
    write_stream(&mut base, 9, 20_000);

    let mut forked = base.fork();
    assert_eq!(forked.stats().host_writes.get(), 0, "fork resets stats");
    assert_eq!(forked.stats().pages_flushed.get(), 0, "fork resets stats");

    let w0 = base.stats().host_writes.get();
    let f0 = base.stats().pages_flushed.get();
    let c0 = base.stats().clean_programs.get();

    write_stream(&mut base, 77, 20_000);
    write_stream(&mut forked, 77, 20_000);

    assert_eq!(
        forked.stats().host_writes.get(),
        base.stats().host_writes.get() - w0
    );
    assert_eq!(
        forked.stats().pages_flushed.get(),
        base.stats().pages_flushed.get() - f0
    );
    assert_eq!(
        forked.stats().clean_programs.get(),
        base.stats().clean_programs.get() - c0
    );
}
