//! Schema check for the committed benchmark reports: every
//! `results/BENCH_*.json` must parse as JSON and carry the fields the
//! tooling relies on — in particular `report_version`, so report
//! consumers can detect shape changes. Run directly by `ci.sh`.

use envy_bench::json::{parse, Value};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[test]
fn every_committed_report_parses_and_is_versioned() {
    let dir = results_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("results/ exists") {
        let path = entry.expect("readable entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable report");
        let doc = parse(&text).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        let version = doc
            .get("report_version")
            .unwrap_or_else(|| panic!("{name}: missing report_version"))
            .as_number()
            .unwrap_or_else(|| panic!("{name}: non-numeric report_version"));
        assert!(
            version >= 1.0,
            "{name}: report_version {version} out of range"
        );
        let bench = doc
            .get("bench")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{name}: missing bench name"));
        assert_eq!(
            name,
            format!("BENCH_{bench}.json"),
            "{name}: bench field must match the file name"
        );
        let points = doc
            .get("points")
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{name}: missing points array"));
        assert!(!points.is_empty(), "{name}: no points");
        for p in points {
            assert!(
                p.get("label").and_then(Value::as_str).is_some(),
                "{name}: point without a label"
            );
            assert!(p.get("metrics").is_some(), "{name}: point without metrics");
        }
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} reports found in results/");
}

/// The YCSB report carries a fixed point set the docs and EXPERIMENTS.md
/// quote: the wire anchor (must have matched), every mix at 1 and 8
/// shards with throughput + tail latencies, and the wear-under-skew
/// rows with a lifetime projection.
#[test]
fn ext_ycsb_report_carries_anchor_mixes_and_wear_rows() {
    let text = std::fs::read_to_string(results_dir().join("BENCH_ext_ycsb.json"))
        .expect("results/BENCH_ext_ycsb.json committed");
    let doc = parse(&text).expect("well-formed report");
    let points = doc
        .get("points")
        .and_then(Value::as_array)
        .expect("points array");
    let metric = |label: &str, key: &str| -> f64 {
        points
            .iter()
            .find(|p| p.get("label").and_then(Value::as_str) == Some(label))
            .unwrap_or_else(|| panic!("missing point {label:?}"))
            .get("metrics")
            .and_then(|m| m.get(key))
            .and_then(Value::as_number)
            .unwrap_or_else(|| panic!("point {label:?} missing metric {key:?}"))
    };
    assert_eq!(
        metric("anchor", "anchor_match"),
        1.0,
        "the socket-vs-monolithic anchor must have matched"
    );
    assert!(metric("anchor", "anchor_aborted") > 0.0);
    for mix in ["A", "B", "C", "D", "E"] {
        for shards in [1.0, 8.0] {
            let label = format!("{mix} x{shards:.0}");
            assert_eq!(metric(&label, "shards"), shards);
            assert!(metric(&label, "wall_tps") > 0.0, "{label}: zero throughput");
            for pct in ["p50_us", "p99_us", "p999_us"] {
                assert!(metric(&label, pct) > 0.0, "{label}: missing {pct}");
            }
        }
    }
    for row in ["wear/uniform", "wear/zipfian"] {
        assert!(
            metric(row, "pages_flushed") > 0.0,
            "{row}: no flush traffic"
        );
        assert!(metric(row, "flushes_per_op") > 0.0);
        let days = metric(row, "lifetime_days");
        assert!(
            days.is_finite() && days > 0.0,
            "{row}: lifetime projection must be finite, got {days}"
        );
    }
}
