//! Schema check for the committed benchmark reports: every
//! `results/BENCH_*.json` must parse as JSON and carry the fields the
//! tooling relies on — in particular `report_version`, so report
//! consumers can detect shape changes. Run directly by `ci.sh`.

use envy_bench::json::{parse, Value};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[test]
fn every_committed_report_parses_and_is_versioned() {
    let dir = results_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("results/ exists") {
        let path = entry.expect("readable entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable report");
        let doc = parse(&text).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        let version = doc
            .get("report_version")
            .unwrap_or_else(|| panic!("{name}: missing report_version"))
            .as_number()
            .unwrap_or_else(|| panic!("{name}: non-numeric report_version"));
        assert!(
            version >= 1.0,
            "{name}: report_version {version} out of range"
        );
        let bench = doc
            .get("bench")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{name}: missing bench name"));
        assert_eq!(
            name,
            format!("BENCH_{bench}.json"),
            "{name}: bench field must match the file name"
        );
        let points = doc
            .get("points")
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{name}: missing points array"));
        assert!(!points.is_empty(), "{name}: no points");
        for p in points {
            assert!(
                p.get("label").and_then(Value::as_str).is_some(),
                "{name}: point without a label"
            );
            assert!(p.get("metrics").is_some(), "{name}: point without metrics");
        }
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} reports found in results/");
}
