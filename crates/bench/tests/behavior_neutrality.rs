//! Behavior-neutrality contract for data-plane optimizations.
//!
//! The simulator's hot paths are periodically rewritten for wall-clock
//! speed (O(1) buffer indexing, zero-copy reads, batched timing
//! enqueue); none of that may change *simulated* behavior. These tests
//! pin seeded end-to-end runs — TPC-A through the timed store, the
//! hot/cold synthetic cleaning study, and a functional (payload-storing)
//! workload — to golden digests captured before the optimizations
//! landed. Every statistic, the final simulated clock, the telemetry
//! rows, and the rendered report JSON participate in the digest, so any
//! drift in simulated time, cleaning decisions, or data contents fails
//! loudly.
//!
//! When a PR *intends* to change simulated behavior (a model fix, not an
//! optimization), regenerate the goldens by running with
//! `GOLDEN_PRINT=1` and updating the constants — and say so in the PR.

use envy_bench::render_report;
use envy_core::{EnvyConfig, EnvyStore, PolicyKind};
use envy_sim::time::Ns;
use envy_workload::{run_timed, AnalyticTpca, CleaningStudy, TpcaScale};

/// FNV-1a over a string: stable, dependency-free digest.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert a digest matches its golden, or print it for (re)capture when
/// `GOLDEN_PRINT=1`.
fn check(name: &str, rendered: &str, golden: u64) {
    let d = fnv1a(rendered);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        eprintln!("GOLDEN {name} = 0x{d:016x}");
        eprintln!("---- {name} ----\n{rendered}\n----");
        return;
    }
    assert_eq!(
        d, golden,
        "{name}: simulated behavior drifted from the golden digest.\n\
         Rendered state:\n{rendered}\n\
         If this change is intentional, re-capture with GOLDEN_PRINT=1."
    );
}

// Re-captured twice, intentionally, for stats-surface and semantic
// changes:
//  * when EnvyStats grew txn_commits/txn_aborts/shadow_pages_pinned
//    (render-only; every pre-existing field was diffed identical), and
//  * when plain writes stopped silently joining an open transaction and
//    EnvyStats grew txn_conflict_refusals/open_txns. TPCA_TIMED changed
//    render only (two new zero counters); FUNCTIONAL changed checksum
//    too, because the workload's plain write inside each transaction now
//    survives the seeded aborts instead of being rolled back with them.
const GOLDEN_TPCA_TIMED: u64 = 0x735ca28e4277dae6;
const GOLDEN_HOT_COLD: u64 = 0xecbf35672a43a528;
const GOLDEN_FUNCTIONAL: u64 = 0xa791df83c16543b9;
const GOLDEN_REPORT_JSON: u64 = 0x844d6103010e5371;

/// Seeded timed TPC-A through the store: the fig13/fig15 shape, scaled
/// down. Exercises COW, flushing, cleaning, suspension and stalls; the
/// digest covers every statistic and the final simulated clock.
#[test]
fn tpca_timed_run_matches_golden() {
    // Must be large enough for TPC-A's minimum 1-branch layout (~12 MB).
    let mut config = EnvyConfig::scaled(4, 64, 2048, 256)
        .with_store_data(false)
        .with_utilization(0.8);
    config.word_bytes = 8;
    let driver = AnalyticTpca::new(TpcaScale::fit_bytes(config.logical_bytes()));
    let mut store = EnvyStore::new(config).expect("valid config");
    store.prefill().expect("prefill fits");
    // Churn (untimed) past the free space so the timed window below runs
    // at cleaning steady state — the golden must cover CleanCopy/Erase
    // background ops interacting with the simulated clock.
    let free = store.config().geometry.total_pages() - store.config().logical_pages;
    let mut rng = envy_sim::rng::Rng::seed_from(0xC0FFEE);
    let accounts = driver.layout().scale.accounts();
    for _ in 0..free * 2 {
        let addr = driver.layout().account_addr(rng.below(accounts));
        store.write(addr, &[0u8; 8]).expect("churn write");
    }
    store.enable_sampler(Ns::from_micros(500), 32);
    let result = run_timed(&mut store, &driver, 30_000.0, 500, 5_000, 42).expect("timed run");
    let series: Vec<String> = store
        .time_series()
        .expect("sampler enabled")
        .rows()
        .iter()
        .map(|(end, vals)| format!("{}:{vals:?}", end.as_nanos()))
        .collect();
    let rendered = format!(
        "result={result:?}\nnow={}\nbacklog={}\nstats={:?}\nseries={series:?}",
        store.now().as_nanos(),
        store.backlog().as_nanos(),
        store.stats(),
    );
    check("GOLDEN_TPCA_TIMED", &rendered, GOLDEN_TPCA_TIMED);
}

/// Seeded hot/cold synthetic cleaning study (the fig06/fig08 shape):
/// exercises locality gathering, shedding, and steady-state cleaning.
#[test]
fn hot_cold_synthetic_matches_golden() {
    let outcome = CleaningStudy::sized(32, 128, PolicyKind::paper_default(), (10, 90))
        .run()
        .expect("study runs");
    check("GOLDEN_HOT_COLD", &format!("{outcome:?}"), GOLDEN_HOT_COLD);
}

/// Functional run with payload storage: byte-exact contents survive
/// buffered rewrites, flushes, cleans and transactions. Exercises the
/// zero-copy read path and the combined insert-and-write entry point.
#[test]
fn functional_payload_run_matches_golden() {
    let mut store = EnvyStore::new(EnvyConfig::small_test()).expect("valid config");
    store.prefill().expect("prefill fits");
    let pages = store.config().logical_pages;
    // Mixed-size writes at page-straddling offsets, seeded.
    let mut rng = envy_sim::rng::Rng::seed_from(0xBEEF);
    for i in 0..6_000u64 {
        let lp = rng.below(pages);
        let offset = rng.below(200);
        let len = 1 + rng.below(48) as usize;
        let byte = (i % 251) as u8;
        store.write(lp * 256 + offset, &vec![byte; len]).unwrap();
        if i % 97 == 0 {
            let txn = store.txn_begin().unwrap();
            store
                .write((lp * 256 + 300) % store.size(), &[0xAA])
                .unwrap();
            if i % 194 == 0 {
                store.txn_abort(txn).unwrap();
            } else {
                store.txn_commit(txn).unwrap();
            }
        }
    }
    store.flush_all().unwrap();
    store.check_invariants().unwrap();
    // Checksum the whole logical array so data placement AND contents
    // are pinned.
    let mut sum = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = vec![0u8; 4096];
    let mut addr = 0;
    while addr < store.size() {
        let n = (store.size() - addr).min(4096) as usize;
        store.read(addr, &mut buf[..n]).unwrap();
        for b in &buf[..n] {
            sum ^= u64::from(*b);
            sum = sum.wrapping_mul(0x0000_0100_0000_01b3);
        }
        addr += n as u64;
    }
    let rendered = format!("checksum={sum:#x}\nstats={:?}", store.stats());
    check("GOLDEN_FUNCTIONAL", &rendered, GOLDEN_FUNCTIONAL);
}

/// The rendered report document for fixed inputs is byte-stable — the
/// `results/BENCH_*.json` trajectory must not silently change shape.
#[test]
fn report_json_rendering_matches_golden() {
    let points = vec![
        (
            "p0".to_string(),
            vec![("achieved_tps", 12345.5f64), ("cleaning_cost", 1.377)],
        ),
        ("p1".to_string(), vec![("ns_per_txn", 0.25f64)]),
    ];
    let json = render_report("unit_golden", false, 1, 0.0, &points, &[]);
    check("GOLDEN_REPORT_JSON", &json, GOLDEN_REPORT_JSON);
}
