//! A minimal JSON parser for validating the benchmark reports.
//!
//! The workspace is dependency-free, so the schema check that every
//! `results/BENCH_*.json` parses and carries a `report_version` field
//! needs an in-repo parser. This is a straightforward recursive-descent
//! parser for the full JSON grammar (RFC 8259), sufficient for
//! validation and field lookup; it is not a performance-oriented or
//! allocation-frugal implementation.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted by key; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
///
/// A human-readable description with the byte offset of the first
/// syntax error, or of trailing non-whitespace.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("expected a value at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed by our reports;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are valid).
                let s = &b[*pos..];
                let ch = std::str::from_utf8(s)
                    .map_err(|_| "invalid utf-8".to_string())?
                    .chars()
                    .next()
                    .unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_shaped_document() {
        let doc = r#"{
  "report_version": 1,
  "bench": "unit \"test\"",
  "quick": false,
  "wall_seconds": 1.25e1,
  "points": [
    {"label": "a", "metrics": {"x": -1.5}},
    {"label": "b", "metrics": {}}
  ]
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("report_version").unwrap().as_number(), Some(1.0));
        assert_eq!(v.get("bench").unwrap().as_str(), Some("unit \"test\""));
        assert_eq!(v.get("quick"), Some(&Value::Bool(false)));
        assert_eq!(v.get("wall_seconds").unwrap().as_number(), Some(12.5));
        let points = v.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[0]
                .get("metrics")
                .unwrap()
                .get("x")
                .unwrap()
                .as_number(),
            Some(-1.5)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\" 1}", "[1,]", "nul", "\"abc", "{} x", "01a"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_writer_output() {
        // The report writer's own escaping and number formatting must
        // parse back, including spliced-in extras.
        let doc = crate::sweep::render_report(
            "x \"quoted\"\n",
            true,
            2,
            0.5,
            &[("p0\t".to_string(), vec![("m", f64::NAN), ("n", 1e-3)])],
            &[("extra", "[1, [2.5], {\"k\": null}]".to_string())],
        );
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("report_version").unwrap().as_number(),
            Some(crate::REPORT_VERSION as f64)
        );
        assert_eq!(v.get("bench").unwrap().as_str(), Some("x \"quoted\"\n"));
        assert_eq!(v.get("extra").unwrap().as_array().unwrap().len(), 3);
        let metrics = v.get("points").unwrap().as_array().unwrap()[0]
            .get("metrics")
            .unwrap()
            .clone();
        assert_eq!(metrics.get("m"), Some(&Value::Null)); // NaN -> null
        assert_eq!(metrics.get("n").unwrap().as_number(), Some(0.001));
    }

    #[test]
    fn parses_nested_arrays_and_null() {
        let v = parse("[[1, 2], [], null, true]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a[2], Value::Null);
    }
}
