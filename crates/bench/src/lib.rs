#![warn(missing_docs)]
//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section and prints both an aligned text table and a
//! CSV block. Pass `--quick` for a scaled-down run (fewer writes /
//! transactions); the default parameters match EXPERIMENTS.md.

pub mod json;
pub mod sweep;

use envy_core::{EnvyConfig, EnvyStore};
use envy_sim::report::Table;
use envy_workload::{AnalyticTpca, TpcaScale};

pub use sweep::{
    jobs_arg, point_seed, render_report, time_series_json, trace_json, write_report_full,
    PointResult, SweepOutcome, SweepSpec, REPORT_VERSION,
};

/// The timed TPC-A configuration: the paper's 2 GB array with `--paper`,
/// otherwise a 256 MB scaled version (same geometry ratios: 128 segments,
/// 8 banks, one-segment write buffer, and an erase time scaled with the
/// segment size so erase work per reclaimed page matches the paper's
/// hardware), at the given utilization.
pub fn timed_config(utilization: f64) -> EnvyConfig {
    timed_config_for(std::env::args().any(|a| a == "--paper"), utilization)
}

/// [`timed_config`] with the scale chosen by the caller instead of
/// sniffed from the command line — for binaries that run both scales in
/// one process (see the `perf_wallclock` harness).
pub fn timed_config_for(paper: bool, utilization: f64) -> EnvyConfig {
    let mut config = if paper {
        EnvyConfig::paper_2gb()
    } else {
        let mut c = EnvyConfig::scaled(8, 128, 8192, 256).with_store_data(false);
        // Erase reclaims pages-per-segment pages; keep erase time per
        // reclaimed page equal to the paper's 50 ms / 65 536.
        c.timings.erase = envy_sim::time::Ns::from_nanos(
            50_000_000u64 * c.geometry.pages_per_segment() as u64 / 65_536,
        );
        c
    };
    config.word_bytes = 8; // 64-bit host bus (Figure 11)
    config.with_utilization(utilization)
}

/// The TPC-A driver for a configuration, with the database scaled to
/// fill the logical space.
pub fn timed_driver(config: &EnvyConfig) -> AnalyticTpca {
    AnalyticTpca::new(TpcaScale::fit_bytes(config.logical_bytes()))
}

/// Churn the store (untimed) to cleaning steady state: overwrite uniform
/// account records until the initial free space has been consumed twice
/// (2.5 times at the paper's 2 GB, where the measured windows are
/// comparatively shorter), so a timed window runs at steady-state
/// cleaning — the paper measures a long-running system, not a freshly
/// formatted one.
pub fn churn_to_steady_state(store: &mut EnvyStore, driver: &AnalyticTpca) {
    churn_to_steady_state_for(std::env::args().any(|a| a == "--paper"), store, driver);
}

/// [`churn_to_steady_state`] with the scale chosen by the caller (the
/// churn multiple differs between the scaled and 2 GB configurations).
pub fn churn_to_steady_state_for(paper: bool, store: &mut EnvyStore, driver: &AnalyticTpca) {
    let total = store.config().geometry.total_pages();
    let free = total - store.config().logical_pages;
    let churn = if paper { free * 5 / 2 } else { free * 2 };
    let mut rng = envy_sim::rng::Rng::seed_from(0xC0FFEE);
    let accounts = driver.layout().scale.accounts();
    for _ in 0..churn {
        let id = rng.below(accounts);
        let addr = driver.layout().account_addr(id);
        store.write(addr, &[0u8; 8]).expect("churn write");
    }
}

/// Build the timed TPC-A system ([`timed_config`]), prefilled at
/// `utilization` and churned to cleaning steady state
/// ([`churn_to_steady_state`]).
///
/// Sweeps that vary only workload parameters should build this once and
/// [`EnvyStore::fork`] it per point instead of rebuilding.
pub fn timed_system(utilization: f64) -> (EnvyStore, AnalyticTpca) {
    timed_system_for(std::env::args().any(|a| a == "--paper"), utilization)
}

/// [`timed_system`] with the scale chosen by the caller instead of
/// sniffed from the command line.
pub fn timed_system_for(paper: bool, utilization: f64) -> (EnvyStore, AnalyticTpca) {
    let config = timed_config_for(paper, utilization);
    let driver = timed_driver(&config);
    let mut store = EnvyStore::new(config).expect("config is valid");
    store.prefill().expect("prefill fits");
    churn_to_steady_state_for(paper, &mut store, &driver);
    if let Some(capacity) = trace_capacity_env() {
        store.enable_trace(capacity);
    }
    (store, driver)
}

/// The `ENVY_TRACE` environment variable: when set, [`timed_system`]
/// enables controller tracing on the baseline store with the given ring
/// capacity (or 65 536 records for non-numeric values like `1`).
/// Tracing is behavior-neutral, so a benchmark's output must be
/// byte-identical with and without it — CI smoke-checks exactly that.
pub fn trace_capacity_env() -> Option<usize> {
    let v = std::env::var("ENVY_TRACE").ok()?;
    if v.is_empty() || v == "0" {
        return None;
    }
    Some(v.parse().ok().filter(|&n| n > 1).unwrap_or(65_536))
}

/// Whether `--quick` was passed (scaled-down runs for smoke testing).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parse `--name=value` or `--name value` as u64, with a default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let prefix = format!("--{name}=");
    let flag = format!("--{name}");
    let mut args = std::env::args().peekable();
    while let Some(a) = args.next() {
        if let Some(v) = a.strip_prefix(&prefix).and_then(|v| v.parse().ok()) {
            return v;
        }
        if a == flag {
            if let Some(v) = args.peek().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Print a figure's results: header line, aligned table, CSV block.
pub fn emit(figure: &str, caption: &str, table: &Table) {
    println!("== {figure}: {caption} ==");
    println!();
    print!("{}", table.render());
    println!();
    println!("-- csv --");
    print!("{}", table.to_csv());
    println!("-- end --");
}

/// The localities of reference on Figure 8's x-axis.
pub const LOCALITIES: [(u32, u32); 6] = [(50, 50), (40, 60), (30, 70), (20, 80), (10, 90), (5, 95)];

/// Format a locality pair the way the paper labels it.
pub fn locality_label(l: (u32, u32)) -> String {
    format!("{}/{}", l.0, l.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_labels() {
        assert_eq!(locality_label((10, 90)), "10/90");
        assert_eq!(LOCALITIES.len(), 6);
    }

    #[test]
    fn arg_parsing_defaults() {
        assert_eq!(arg_u64("nonexistent-option", 42), 42);
    }
}
