//! Shared sweep execution for the figure-regeneration binaries.
//!
//! Every figure or ablation binary evaluates a list of independent
//! points (arrival rates, utilizations, policies, …) and renders the
//! results as a table. This module factors that shape out: a
//! [`SweepSpec`] names the sweep and lists its points, and a per-point
//! closure produces the table rows and JSON metrics for one point.
//!
//! Points run on a scoped [`std::thread`] pool sized by `--jobs=N`
//! (default: available cores; `1` reproduces a fully sequential run).
//! Each point builds its state from fixed seeds or from a shared
//! immutable baseline (see `EnvyStore::fork`), so results are
//! independent of execution order; collection is in point order, which
//! makes the emitted text table and CSV **byte-identical** across any
//! `--jobs` value.
//!
//! Every run also records a machine-readable report at
//! `results/BENCH_<name>.json` — point labels, per-point metrics,
//! wall-clock seconds and the number of jobs used — so regeneration
//! time and results can be tracked across commits.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Version of the `BENCH_<name>.json` report schema. Bumped when the
/// report shape changes; the CI schema check requires every committed
/// report to carry it.
pub const REPORT_VERSION: u64 = 1;

/// What one sweep point produced: table rows (in order) plus named
/// metrics for the JSON report.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Progress label, printed to stderr when the point completes and
    /// recorded in the JSON report.
    pub label: String,
    /// Rows this point contributes to the table, in order. Most points
    /// contribute exactly one row.
    pub rows: Vec<Vec<String>>,
    /// Named scalar metrics recorded in the JSON report.
    pub metrics: Vec<(&'static str, f64)>,
}

impl PointResult {
    /// A single-row result with no metrics yet.
    pub fn row(label: impl Into<String>, row: Vec<String>) -> PointResult {
        PointResult {
            label: label.into(),
            rows: vec![row],
            metrics: Vec::new(),
        }
    }

    /// Attach a named metric (builder-style).
    #[must_use]
    pub fn metric(mut self, name: &'static str, value: f64) -> PointResult {
        self.metrics.push((name, value));
        self
    }
}

/// A declarative sweep: a benchmark name (for the JSON report) and the
/// list of points to evaluate.
pub struct SweepSpec<'a, P> {
    name: &'a str,
    points: Vec<P>,
}

/// The collected results of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// All table rows, in point order.
    pub rows: Vec<Vec<String>>,
    /// Per-point `(label, metrics)` in point order.
    pub points: Vec<(String, Vec<(&'static str, f64)>)>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time spent evaluating the points.
    pub wall_seconds: f64,
}

impl<'a, P: Sync> SweepSpec<'a, P> {
    /// Declare a sweep.
    pub fn new(name: &'a str, points: Vec<P>) -> SweepSpec<'a, P> {
        SweepSpec { name, points }
    }

    /// Evaluate every point with `--jobs` worker threads and write the
    /// JSON report under `results/`.
    ///
    /// The closure receives `(point index, point)` and must derive all
    /// randomness from fixed or per-point seeds (see [`point_seed`]) so
    /// its result does not depend on execution order.
    pub fn run<F>(self, run_point: F) -> SweepOutcome
    where
        F: Fn(usize, &P) -> PointResult + Sync,
    {
        let outcome = self.run_with_jobs(jobs_arg(), run_point);
        match write_report(self.name, &outcome) {
            Ok(path) => eprintln!("  report: {}", path.display()),
            Err(e) => eprintln!("  warning: could not write report: {e}"),
        }
        outcome
    }

    /// Evaluate every point with an explicit worker count, without
    /// writing a report (used by tests and embedders).
    pub fn run_with_jobs<F>(&self, jobs: usize, run_point: F) -> SweepOutcome
    where
        F: Fn(usize, &P) -> PointResult + Sync,
    {
        let start = Instant::now();
        let n = self.points.len();
        let jobs = jobs.clamp(1, n.max(1));
        let mut slots: Vec<Option<PointResult>> = (0..n).map(|_| None).collect();
        if jobs == 1 {
            for (i, (point, slot)) in self.points.iter().zip(&mut slots).enumerate() {
                let result = run_point(i, point);
                eprintln!("  done {}", result.label);
                *slot = Some(result);
            }
        } else {
            // Work-stealing over an atomic index: each worker claims the
            // next unevaluated point. Workers return (index, result)
            // pairs; results are then placed back in point order, so the
            // output is identical to the sequential run.
            let next = AtomicUsize::new(0);
            let points = &self.points;
            let run_point = &run_point;
            let completed = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let result = run_point(i, &points[i]);
                                eprintln!("  done {}", result.label);
                                local.push((i, result));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sweep worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, result) in completed {
                slots[i] = Some(result);
            }
        }
        let results: Vec<PointResult> = slots
            .into_iter()
            .map(|r| r.expect("every point evaluated"))
            .collect();
        SweepOutcome {
            rows: results.iter().flat_map(|r| r.rows.clone()).collect(),
            points: results.into_iter().map(|r| (r.label, r.metrics)).collect(),
            jobs,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

/// The `--jobs=N` argument; defaults to the available cores.
pub fn jobs_arg() -> usize {
    let default = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    crate::arg_u64("jobs", default as u64).max(1) as usize
}

/// Derive an independent per-point seed from a sweep's base seed.
///
/// SplitMix64-style mixing: nearby indices give unrelated seeds, and the
/// result depends only on `(base, index)` — never on execution order.
pub fn point_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Write `results/BENCH_<name>.json` for a completed sweep.
///
/// # Errors
///
/// I/O errors creating `results/` or writing the file.
pub fn write_report(name: &str, outcome: &SweepOutcome) -> std::io::Result<PathBuf> {
    write_report_raw(name, outcome.jobs, outcome.wall_seconds, &outcome.points)
}

/// Write `results/BENCH_<name>.json` from explicit parts — for binaries
/// that are not sweeps (single-configuration tables) but still record
/// their metrics and wall-clock time.
///
/// # Errors
///
/// I/O errors creating `results/` or writing the file.
pub fn write_report_raw(
    name: &str,
    jobs: usize,
    wall_seconds: f64,
    points: &[(String, Vec<(&'static str, f64)>)],
) -> std::io::Result<PathBuf> {
    write_report_full(name, jobs, wall_seconds, points, &[])
}

/// Write `results/BENCH_<name>.json` with extra top-level sections —
/// each `(key, value)` pair is spliced in as `"key": value`, where
/// `value` must already be valid JSON (see [`time_series_json`] and
/// [`trace_json`]). Used by observability-oriented binaries to embed a
/// sampled time series or a trace excerpt alongside the point metrics.
///
/// # Errors
///
/// I/O errors creating `results/` or writing the file.
pub fn write_report_full(
    name: &str,
    jobs: usize,
    wall_seconds: f64,
    points: &[(String, Vec<(&'static str, f64)>)],
    extras: &[(&str, String)],
) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let json = render_report(
        name,
        crate::quick_mode(),
        jobs,
        wall_seconds,
        points,
        extras,
    );
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Render the report document (see [`write_report_full`]). Public so
/// tests can pin the rendered bytes without writing into `results/`.
pub fn render_report(
    name: &str,
    quick: bool,
    jobs: usize,
    wall_seconds: f64,
    points: &[(String, Vec<(&'static str, f64)>)],
    extras: &[(&str, String)],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"report_version\": {REPORT_VERSION},\n"));
    json.push_str(&format!("  \"bench\": {},\n", json_string(name)));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!(
        "  \"wall_seconds\": {},\n",
        json_number(wall_seconds)
    ));
    for (key, value) in extras {
        json.push_str(&format!("  {}: {value},\n", json_string(key)));
    }
    json.push_str("  \"points\": [\n");
    for (i, (label, metrics)) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": {}, \"metrics\": {{",
            json_string(label)
        ));
        for (j, (name, value)) in metrics.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("{}: {}", json_string(name), json_number(*value)));
        }
        json.push_str("}}");
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Serialize a sampled [`envy_sim::stats::TimeSeries`] as a JSON object:
/// window, column names, and one `[end_us, values...]` row per sample.
pub fn time_series_json(series: &envy_sim::stats::TimeSeries) -> String {
    let mut json = String::from("{");
    json.push_str(&format!(
        "\"window_us\": {}, \"columns\": [",
        json_number(series.window().as_nanos() as f64 / 1_000.0)
    ));
    for (i, col) in series.columns().iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&json_string(col));
    }
    json.push_str("], \"rows\": [");
    for (i, (end, values)) in series.rows().iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "[{}",
            json_number(end.as_nanos() as f64 / 1_000.0)
        ));
        for v in values {
            json.push_str(&format!(", {}", json_number(*v)));
        }
        json.push(']');
    }
    json.push_str("]}");
    json
}

/// Serialize the most recent `last_n` records of a trace ring as a JSON
/// array of `{"at_us", "seq", "event"}` objects (the event rendered in
/// its compact display form).
pub fn trace_json(trace: &envy_core::TraceRing, last_n: usize) -> String {
    let mut json = String::from("[");
    for (i, rec) in trace.last(last_n).enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "{{\"at_us\": {}, \"seq\": {}, \"event\": {}}}",
            json_number(rec.at.as_nanos() as f64 / 1_000.0),
            rec.seq,
            json_string(&rec.event.to_string())
        ));
    }
    json.push(']');
    json
}

/// JSON string literal (quotes, escapes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal (`null` for non-finite values, which JSON cannot
/// represent).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seed_varies_by_index_not_order() {
        let a: Vec<u64> = (0..8).map(|i| point_seed(99, i)).collect();
        let b: Vec<u64> = (0..8).rev().map(|i| point_seed(99, i)).rev().collect();
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(distinct.len(), a.len());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn sequential_and_parallel_results_match() {
        let spec = SweepSpec::new("unit", (0u64..7).collect());
        let run = |i: usize, p: &u64| {
            PointResult::row(
                format!("p{p}"),
                vec![p.to_string(), point_seed(1, i as u64).to_string()],
            )
            .metric("value", *p as f64)
        };
        let seq = spec.run_with_jobs(1, run);
        let par = spec.run_with_jobs(4, run);
        assert_eq!(seq.rows, par.rows);
        assert_eq!(seq.points, par.points);
        assert_eq!(seq.jobs, 1);
        assert_eq!(par.jobs, 4);
    }

    #[test]
    fn defaulted_jobs_match_sequential() {
        // The `--jobs` default (available cores) must produce the same
        // rows and metrics as a fully sequential run — the path every
        // binary takes when no `--jobs` flag is passed.
        let default_jobs = jobs_arg();
        assert!(default_jobs >= 1);
        let spec = SweepSpec::new("unit-default-jobs", (0u64..9).collect());
        let run = |i: usize, p: &u64| {
            PointResult::row(format!("d{p}"), vec![point_seed(7, i as u64).to_string()])
                .metric("seeded", point_seed(7, i as u64) as f64)
        };
        let seq = spec.run_with_jobs(1, run);
        let def = spec.run_with_jobs(default_jobs, run);
        assert_eq!(seq.rows, def.rows);
        assert_eq!(seq.points, def.points);
        // jobs is clamped to the point count, never below 1.
        assert_eq!(def.jobs, default_jobs.clamp(1, 9));
    }
}
