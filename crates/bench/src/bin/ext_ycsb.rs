//! `ext_ycsb` — extension: YCSB-style key-value serving over the
//! sharded front end (the `envy-kv` subsystem on the paper's store).
//!
//! Three studies over one churned steady-state baseline:
//!
//! * **Wire anchor** — a seeded atomic YCSB-A stream (reads plus
//!   read-modify-write updates, with a nonzero abort draw) through a
//!   real TCP server must land on exactly the simulated clock,
//!   controller statistics, and bytes of the same spec replayed
//!   synchronously against a monolithic store — after both sides run
//!   the identical deterministic load phase. This pins the whole KV
//!   wire path (framing, B-Tree index, heap records, transactional
//!   rollback) to the in-process engine.
//! * **Mix sweep** — closed-loop YCSB A/B/C/D/E at 1 and 8 shards:
//!   completed operations, wall-clock throughput, and operation latency
//!   percentiles (p50/p99/p999). Keys route to shards by `key % shards`,
//!   so a workload-E scan walks one shard's slice of the key space.
//! * **Wear under skew** — YCSB-A updates with a uniform key draw vs.
//!   the standard 0.99-zipfian skew, reported against the §5.5 lifetime
//!   machinery: pages flushed, cleaning operations and cost, erases,
//!   wear-leveling swaps, and the projected lifetime of the paper's
//!   2 GB array. KV operations run the untimed store path, so the
//!   projection follows §5.5's scale-free form: flushes *per operation*
//!   (measured as a delta over the loaded steady state) times an
//!   assumed serving rate (`--rate`, default 10 000 ops/s).

use envy_bench::{
    arg_u64, emit, jobs_arg, point_seed, quick_mode, write_report_full, PointResult, SweepSpec,
};
use envy_core::{lifetime_days, EnvyConfig, EnvyStore};
use envy_server::loadgen::{run_inproc, run_monolithic, run_socket, ycsb_load_requests};
use envy_server::{serve, Client, Listener, LoadSpec, ServeConfig, ShardedStore};
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;
use envy_sim::time::Ns;
use envy_workload::ycsb::{YcsbConfig, YcsbMix};
use std::time::Instant;

/// Shard counts on the mix sweep's x-axis.
const SHARD_COUNTS: [u32; 2] = [1, 8];

/// All five core mixes.
const MIXES: [YcsbMix; 5] = [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::D, YcsbMix::E];

/// The paper's full-scale array: 2 GB of 256-byte pages (§5.5).
const PAPER_PAGES: u64 = 2 * 1024 * 1024 * 1024 / 256;

/// Rated program/erase cycles per segment (§5.5 uses 1M-cycle parts).
const RATED_CYCLES: u64 = 1_000_000;

fn us(ns: Ns) -> f64 {
    ns.as_nanos() as f64 / 1_000.0
}

/// A functional serving configuration: unlike [`ServeConfig::scaled`],
/// the array stores real payload bytes (`store_data`), which the KV
/// subsystem needs — its B-Tree nodes and heap records live *in* the
/// store. 2 MiB physical per shard (32 segments of 256 × 256-byte
/// pages over 4 banks) at 80 % utilization.
fn kv_config(shards: u32) -> ServeConfig {
    let mut config = ServeConfig::small(shards);
    config.store = EnvyConfig::scaled(4, 32, 256, 256).with_utilization(0.8);
    config.queue_capacity = 1_024;
    config.batch_max = 64;
    config
}

/// Churn the store (untimed) to cleaning steady state with uniform
/// 8-byte record overwrites, consuming the initial free space twice —
/// the KV twin of `churn_to_steady_state` (whose TPC-A layout needs a
/// larger array than these functional shards).
fn churn_kv(store: &mut EnvyStore) {
    let total = store.config().geometry.total_pages();
    let free = total - store.config().logical_pages;
    let mut rng = Rng::seed_from(0xC0FFEE);
    let slots = store.size() / 8;
    for _ in 0..free * 2 {
        let slot = rng.below(slots);
        store.write(slot * 8, &[0u8; 8]).expect("churn write");
    }
}

fn main() {
    let started = Instant::now();
    let quick = quick_mode();
    let records = arg_u64("records", if quick { 512 } else { 2_048 });
    let ops = arg_u64("ops", if quick { 200 } else { 2_000 });
    let clients = arg_u64("clients", 4).max(1) as u32;
    let rate = arg_u64("rate", 10_000) as f64;

    // One churned steady-state baseline; every point forks it, so all
    // runs start byte- and state-identical with the cleaner hot.
    let config = kv_config(1);
    let mut baseline = EnvyStore::new(config.store.clone()).expect("config is valid");
    baseline.prefill().expect("prefill fits");
    churn_kv(&mut baseline);

    // ----------------------------------------------------------------
    // Wire anchor: atomic YCSB-A over TCP == synchronous monolithic
    // replay — identical load phase, identical measured stream, down
    // to the simulated clock, every statistic, and the store bytes.
    // ----------------------------------------------------------------
    let anchor_kv = YcsbConfig::standard(YcsbMix::A, records.min(512));
    let anchor_spec = LoadSpec::closed(1, if quick { 120 } else { 400 })
        .with_seed(0x5CB_AC1D)
        .with_ycsb(anchor_kv.clone())
        .atomic(0.2);
    let load = ycsb_load_requests(&anchor_kv, 1);
    let mut mono = baseline.fork();
    for req in &load {
        envy_server::shard::apply(&mut mono, req).expect("monolithic load phase");
    }
    let mono_report = run_monolithic(&mut mono, &anchor_spec);
    let front = ShardedStore::launch_from(vec![baseline.fork()], &kv_config(1));
    let plan = *front.plan();
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind ephemeral TCP port");
    let server = serve(listener, front).expect("serve");
    let addr = server.addr().to_string();
    {
        let mut loader = Client::connect_tcp(&addr).expect("load-phase connection");
        for req in &load {
            loader.call(req.clone()).expect("served load phase");
        }
    }
    let wire_report =
        run_socket(|| Client::connect_tcp(&addr), plan, &anchor_spec).expect("socket load run");
    let mut summary = server.shutdown();
    assert!(
        mono_report.aborted_txns > 0,
        "anchor seed must draw nonzero aborts"
    );
    assert_eq!(wire_report.completed_txns, mono_report.completed_txns);
    assert_eq!(wire_report.aborted_txns, mono_report.aborted_txns);
    assert_eq!(wire_report.completed_ops, mono_report.completed_ops);
    assert_eq!(wire_report.errors, 0, "anchor run must be error-free");
    {
        let served = &summary.outcome.shards[0].store;
        assert_eq!(served.now(), mono.now(), "anchor: simulated clock diverged");
        assert_eq!(served.stats(), mono.stats(), "anchor: stats diverged");
    }
    let mut got = vec![0u8; mono.size() as usize];
    let mut want = vec![0u8; mono.size() as usize];
    summary.outcome.shards[0].store.read(0, &mut got).unwrap();
    mono.read(0, &mut want).unwrap();
    assert_eq!(got, want, "anchor: contents diverged");
    println!(
        "anchor: atomic YCSB-A over the wire == monolithic replay \
         ({} committed, {} aborted, {} ops)",
        mono_report.completed_txns, mono_report.aborted_txns, mono_report.completed_ops,
    );
    println!();
    let anchor_point = (
        "anchor".to_string(),
        vec![
            ("anchor_committed", mono_report.completed_txns as f64),
            ("anchor_aborted", mono_report.aborted_txns as f64),
            ("anchor_ops", mono_report.completed_ops as f64),
            ("anchor_match", 1.0),
        ],
    );

    // ----------------------------------------------------------------
    // Mix sweep: YCSB A-E at 1 and 8 shards, closed loop.
    // ----------------------------------------------------------------
    let points: Vec<(YcsbMix, u32)> = SHARD_COUNTS
        .iter()
        .flat_map(|&shards| MIXES.iter().map(move |&mix| (mix, shards)))
        .collect();
    let baseline = &baseline;
    let sweep =
        SweepSpec::new("ext_ycsb", points).run_with_jobs(jobs_arg(), |i, &(mix, shards)| {
            let kv = YcsbConfig::standard(mix, records);
            let config = kv_config(shards);
            let stores = (0..shards).map(|_| baseline.fork()).collect();
            let front = ShardedStore::launch_from(stores, &config);
            let handle = front.handle();
            for req in ycsb_load_requests(&kv, shards) {
                handle.call(req).expect("load phase");
            }
            let spec = LoadSpec::closed(clients, ops)
                .with_seed(point_seed(0x5CB_0001, i as u64))
                .with_ycsb(kv);
            let report = run_inproc(&handle, &spec);
            front.shutdown();
            assert_eq!(report.errors, 0, "serving errors on mix {mix:?} x{shards}");
            let label = format!("{} x{shards}", mix.name().to_uppercase());
            let [p50, _, p99, p999] = report
                .txn_latency
                .percentiles()
                .expect("latencies recorded");
            PointResult::row(
                label.clone(),
                vec![
                    mix.name().to_uppercase(),
                    shards.to_string(),
                    report.completed_txns.to_string(),
                    fmt_f64(report.throughput_tps()),
                    format!("{:.1}", us(p50)),
                    format!("{:.1}", us(p99)),
                    format!("{:.1}", us(p999)),
                ],
            )
            .metric("shards", f64::from(shards))
            .metric("completed_ops", report.completed_txns as f64)
            .metric("wall_tps", report.throughput_tps())
            .metric("p50_us", us(p50))
            .metric("p99_us", us(p99))
            .metric("p999_us", us(p999))
        });
    let mut table = Table::new(&[
        "mix", "shards", "ops", "ops/s", "p50 us", "p99 us", "p999 us",
    ]);
    for row in &sweep.rows {
        table.row(row);
    }
    emit(
        "Extension (YCSB)",
        "YCSB A-E over the sharded KV front end (closed loop)",
        &table,
    );
    println!();

    // ----------------------------------------------------------------
    // Wear under skew: YCSB-A updates, uniform vs. 0.99 zipfian,
    // against the Section 5.5 lifetime machinery.
    // ----------------------------------------------------------------
    let wear_ops = ops * 4;
    let mut wear_rows: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut wear_table = Table::new(&[
        "key draw",
        "flushes",
        "cleans",
        "clean pgms",
        "erases",
        "wear swaps",
        "clean cost",
        "lifetime days",
    ]);
    for (name, s) in [("uniform", 0.0), ("zipfian", 0.99)] {
        let mut kv = YcsbConfig::standard(YcsbMix::A, records);
        kv.zipf_s = s;
        // Load the store *before* launching the front so the measured
        // phase can be isolated as a statistics delta: churn and load
        // flushes belong to the steady state, not to the operations.
        let mut store = baseline.fork();
        for req in ycsb_load_requests(&kv, 1) {
            envy_server::shard::apply(&mut store, &req).expect("wear load phase");
        }
        let loaded = store.stats().clone();
        let front = ShardedStore::launch_from(vec![store], &kv_config(1));
        let spec = LoadSpec::closed(clients, wear_ops)
            .with_seed(0x5CB_3A7 + s.to_bits())
            .with_ycsb(kv);
        let report = run_inproc(&front.handle(), &spec);
        let outcome = front.shutdown();
        assert_eq!(report.errors, 0, "wear run errors ({name})");
        let stats = outcome.shards[0].store.stats();
        let flushed = stats.pages_flushed.get() - loaded.pages_flushed.get();
        let clean_programs = stats.clean_programs.get() - loaded.clean_programs.get();
        let cleans = stats.cleans.get() - loaded.cleans.get();
        let erases = stats.erases.get() - loaded.erases.get();
        let wear_swaps = stats.wear_swaps.get() - loaded.wear_swaps.get();
        let cost = if flushed > 0 {
            clean_programs as f64 / flushed as f64
        } else {
            0.0
        };
        let total_ops = report.completed_txns.max(1);
        let flushes_per_op = flushed as f64 / total_ops as f64;
        let days = lifetime_days(PAPER_PAGES, RATED_CYCLES, flushes_per_op * rate, cost);
        wear_table.row(&[
            name.to_string(),
            flushed.to_string(),
            cleans.to_string(),
            clean_programs.to_string(),
            erases.to_string(),
            wear_swaps.to_string(),
            fmt_f64(cost),
            fmt_f64(days),
        ]);
        wear_rows.push((
            format!("wear/{name}"),
            vec![
                ("zipf_s", s),
                ("pages_flushed", flushed as f64),
                ("cleans", cleans as f64),
                ("clean_programs", clean_programs as f64),
                ("erases", erases as f64),
                ("wear_swaps", wear_swaps as f64),
                ("cleaning_cost", cost),
                ("flushes_per_op", flushes_per_op),
                ("assumed_ops_per_sec", rate),
                ("lifetime_days", days),
            ],
        ));
    }
    emit(
        "Section 5.5 (extension)",
        "YCSB-A update wear: uniform vs. zipfian key skew (1 shard)",
        &wear_table,
    );

    let mut points = vec![anchor_point];
    points.extend(sweep.points.iter().cloned());
    points.extend(wear_rows);
    match write_report_full(
        "ext_ycsb",
        sweep.jobs,
        started.elapsed().as_secs_f64(),
        &points,
        &[],
    ) {
        Ok(path) => eprintln!("  report: {}", path.display()),
        Err(e) => eprintln!("  warning: could not write report: {e}"),
    }
}
