//! Figure 1: feature comparison of storage technologies, plus the
//! paper's §3.3/§5.1 cost arithmetic derived from it.

use envy_bench::emit;
use envy_core::params::{CostEstimate, TECHNOLOGIES};
use envy_sim::report::Table;

fn main() {
    let start = std::time::Instant::now();
    let mut table = Table::new(&[
        "technology",
        "read",
        "write",
        "$/MB (1994)",
        "retention A/GB",
    ]);
    for t in TECHNOLOGIES {
        let ns = |v: u64| {
            if v >= 1_000_000 {
                format!("{:.1}ms", v as f64 / 1e6)
            } else if v >= 1_000 {
                format!("{:.0}us", v as f64 / 1e3)
            } else {
                format!("{v}ns")
            }
        };
        table.row(&[
            t.name.to_string(),
            ns(t.read_ns),
            ns(t.write_ns),
            format!("{:.2}", t.cost_per_mb),
            format!("{}", t.retention_amps_per_gb),
        ]);
    }
    emit(
        "Figure 1",
        "feature comparison of storage technologies",
        &table,
    );

    const GB: u64 = 1024 * 1024 * 1024;
    let envy = CostEstimate::for_sizes(2 * GB, 64 * 1024 * 1024);
    let sram = CostEstimate::pure_sram_equivalent(2 * GB);
    let mut costs = Table::new(&["system", "memory cost"]);
    costs.row(&[
        "eNVy 2 GB (Flash + 64 MB SRAM)".into(),
        format!("${:.0}", envy.total()),
    ]);
    costs.row(&["pure SRAM 2 GB".into(), format!("${:.0}", sram)]);
    costs.row(&["ratio".into(), format!("{:.1}x", sram / envy.total())]);
    emit(
        "Section 5.1",
        "system cost estimates from Figure 1 prices",
        &costs,
    );
    let points = vec![(
        "cost model".to_string(),
        vec![
            ("envy_2gb_cost_usd", envy.total()),
            ("pure_sram_2gb_cost_usd", sram),
            ("cost_ratio", sram / envy.total()),
        ],
    )];
    if let Err(e) = envy_bench::sweep::write_report_raw(
        "table_fig01",
        1,
        start.elapsed().as_secs_f64(),
        &points,
    ) {
        eprintln!("  warning: could not write report: {e}");
    }
}
