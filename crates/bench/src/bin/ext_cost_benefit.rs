//! Extension: the Sprite LFS cost-benefit cleaner as a baseline.
//!
//! §4.1 explains why eNVy does not use Sprite LFS's policy (few, large,
//! hardware-defined segments; no seek costs; per-page age tracking too
//! expensive). This sweep adds a cost-benefit victim selector
//! (`age × (1−u) / 2u`, segment-granularity age) to the Figure 8
//! comparison so that design decision can be quantified: cost-benefit
//! improves on greedy under skew, but the hybrid — which exploits eNVy's
//! freedom to write to many segments in quick succession — still wins.

use envy_bench::{emit, locality_label, quick_mode, PointResult, SweepSpec, LOCALITIES};
use envy_core::PolicyKind;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::CleaningStudy;

fn main() {
    let pps = if quick_mode() { 128 } else { 512 };
    let policies: [(&'static str, PolicyKind); 3] = [
        ("greedy", PolicyKind::Greedy),
        ("cost-benefit", PolicyKind::CostBenefit),
        (
            "hybrid-16",
            PolicyKind::Hybrid {
                segments_per_partition: 16,
            },
        ),
    ];
    let outcome = SweepSpec::new("ext_cost_benefit", LOCALITIES.to_vec()).run(|_, &locality| {
        let mut row = vec![locality_label(locality)];
        let mut result = PointResult::row(locality_label(locality), Vec::new());
        for (name, policy) in policies {
            let out = CleaningStudy::sized(128, pps, policy, locality)
                .run()
                .expect("study must run");
            row.push(fmt_f64(out.cleaning_cost));
            result.metrics.push((name, out.cleaning_cost));
        }
        result.rows = vec![row];
        result
    });
    let mut table = Table::new(&["locality", "greedy", "cost-benefit", "hybrid-16"]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Extension: cost-benefit baseline",
        "Sprite LFS cost-benefit victim selection vs the paper's policies (§4.1)",
        &table,
    );
}
