//! `ext_txn` — extension: end-to-end ACID transactions over the wire
//! (the paper's §3.4 per-operation atomicity, grown to multi-page
//! transactions served remotely).
//!
//! Four studies over one churned steady-state baseline:
//!
//! * **Wire anchor** — a seeded atomic TPC-A stream (with a nonzero
//!   abort draw) through a real TCP server must land on exactly the
//!   simulated clock, controller statistics (commit/abort/shadow
//!   counters included) and bytes of the same spec replayed
//!   synchronously against a monolithic store. This is the digest that
//!   pins the whole wire transaction path — framing, ownership checks,
//!   journaled commit, rollback — to the in-process engine.
//! * **Abort-rate sweep** — closed-loop atomic TPC-A at 0 %, 5 %, 20 %
//!   and 50 % seeded aborts, with 4 transaction slots per shard:
//!   transaction latency percentiles (begin through commit/abort),
//!   measured abort share, slot-full begin refusals, write-set conflict
//!   refusals and retries, and the cleaning work the shadow pages add.
//! * **Concurrency sweep** — the same load at a fixed abort draw while
//!   the per-shard slot table grows 1 → 2 → 4 → 8: slot-full begin
//!   refusals collapse as soon as concurrent transactions can coexist,
//!   leaving only genuine write-set conflicts.
//! * **Cleaner pressure** — the same offered load run plain vs. atomic:
//!   every transactional write pins its pre-image as a shadow page
//!   until commit (§6), capacity the cleaner must carry, so the atomic
//!   row shows the cost of the rollback guarantee in cleaning traffic.

use envy_bench::{
    arg_u64, churn_to_steady_state_for, emit, jobs_arg, quick_mode, write_report_full, PointResult,
    SweepSpec,
};
use envy_core::EnvyStore;
use envy_server::loadgen::{run_inproc, run_monolithic, run_socket};
use envy_server::{serve, Client, Listener, LoadSpec, ServeConfig, ShardedStore};
use envy_sim::report::Table;
use envy_sim::time::Ns;
use envy_workload::{AnalyticTpca, TpcaScale};
use std::time::Instant;

/// Seeded abort percentages on the sweep's x-axis.
const ABORT_PERCENTS: [u32; 4] = [0, 5, 20, 50];

/// Per-shard transaction slot counts on the concurrency sweep's x-axis.
const SLOT_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Slot table size for the abort-rate sweep: wide enough that the four
/// closed-loop clients practically never collide on `begin`.
const SWEEP_SLOTS: u32 = 4;

fn us(ns: Ns) -> f64 {
    ns.as_nanos() as f64 / 1_000.0
}

fn main() {
    let started = Instant::now();
    let quick = quick_mode();
    let txns = arg_u64("txns", if quick { 120 } else { 1_000 });
    let clients = arg_u64("clients", 4).max(1) as u32;

    // One churned steady-state baseline; every point forks it, so all
    // runs start byte- and state-identical with the cleaner hot.
    let config = ServeConfig::scaled(1);
    let mut baseline = EnvyStore::new(config.store.clone()).expect("config is valid");
    baseline.prefill().expect("prefill fits");
    let driver = AnalyticTpca::new(TpcaScale::fit_bytes(config.store.logical_bytes()));
    churn_to_steady_state_for(false, &mut baseline, &driver);

    // ----------------------------------------------------------------
    // Wire anchor: atomic TPC-A over TCP == synchronous monolithic
    // replay, down to the simulated clock and every statistic.
    // ----------------------------------------------------------------
    let anchor_spec = LoadSpec::closed(1, if quick { 60 } else { 240 })
        .with_seed(0xAC1D)
        .atomic(0.2);
    let mut mono = baseline.fork();
    let mono_report = run_monolithic(&mut mono, &anchor_spec);
    let front = ShardedStore::launch_from(vec![baseline.fork()], &ServeConfig::scaled(1));
    let plan = *front.plan();
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind ephemeral TCP port");
    let server = serve(listener, front).expect("serve");
    let addr = server.addr().to_string();
    let wire_report =
        run_socket(|| Client::connect_tcp(&addr), plan, &anchor_spec).expect("socket load run");
    let mut summary = server.shutdown();
    assert!(
        mono_report.aborted_txns > 0,
        "anchor seed must draw nonzero aborts"
    );
    assert_eq!(wire_report.completed_txns, mono_report.completed_txns);
    assert_eq!(wire_report.aborted_txns, mono_report.aborted_txns);
    assert_eq!(wire_report.completed_ops, mono_report.completed_ops);
    assert_eq!(wire_report.errors, 0, "anchor run must be error-free");
    {
        let served = &summary.outcome.shards[0].store;
        assert_eq!(served.now(), mono.now(), "anchor: simulated clock diverged");
        assert_eq!(served.stats(), mono.stats(), "anchor: stats diverged");
    }
    let mut got = vec![0u8; mono.size() as usize];
    let mut want = vec![0u8; mono.size() as usize];
    summary.outcome.shards[0].store.read(0, &mut got).unwrap();
    mono.read(0, &mut want).unwrap();
    assert_eq!(got, want, "anchor: contents diverged");
    println!(
        "anchor: atomic TPC-A over the wire == monolithic replay \
         ({} committed, {} aborted, sim {:.3} ms)",
        mono_report.completed_txns,
        mono_report.aborted_txns,
        mono.now().as_nanos() as f64 / 1e6,
    );
    println!();
    let anchor_point = (
        "anchor".to_string(),
        vec![
            ("anchor_committed", mono_report.completed_txns as f64),
            ("anchor_aborted", mono_report.aborted_txns as f64),
            ("anchor_sim_us", us(mono.now())),
            ("anchor_match", 1.0),
        ],
    );

    // ----------------------------------------------------------------
    // Abort-rate sweep: closed-loop atomic TPC-A, 2 shards.
    // ----------------------------------------------------------------
    let baseline = &baseline;
    let sweep =
        SweepSpec::new("ext_txn", ABORT_PERCENTS.to_vec()).run_with_jobs(jobs_arg(), |_, &pct| {
            let shards = 2u32;
            let config = ServeConfig::scaled(shards).with_txn_slots(SWEEP_SLOTS);
            let stores = (0..shards).map(|_| baseline.fork()).collect();
            let front = ShardedStore::launch_from(stores, &config);
            let load = LoadSpec::closed(clients, txns)
                .with_seed(0x7A_C1D0 + u64::from(pct))
                .atomic(f64::from(pct) / 100.0);
            let report = run_inproc(&front.handle(), &load);
            let outcome = front.shutdown();
            assert_eq!(report.errors, 0, "serving errors at {pct}% aborts");
            for shard in &outcome.shards {
                assert!(
                    shard.store.engine().open_txns().is_empty(),
                    "transaction left open at {pct}% aborts"
                );
            }
            let total = report.completed_txns + report.aborted_txns;
            let measured = if total > 0 {
                report.aborted_txns as f64 / total as f64 * 100.0
            } else {
                0.0
            };
            let stats = outcome.aggregate_stats();
            let [p50, p95, p99, _] = report
                .txn_latency
                .percentiles()
                .expect("latencies recorded");
            PointResult::row(
                format!("{pct}% aborts"),
                vec![
                    pct.to_string(),
                    report.completed_txns.to_string(),
                    report.aborted_txns.to_string(),
                    format!("{measured:.1}"),
                    report.txn_conflicts.to_string(),
                    report.txn_conflict_refusals.to_string(),
                    report.txn_conflict_retries.to_string(),
                    format!("{:.1}", us(p50)),
                    format!("{:.1}", us(p95)),
                    format!("{:.1}", us(p99)),
                    stats.shadow_pages_pinned.get().to_string(),
                    stats.cleans.get().to_string(),
                ],
            )
            .metric("abort_pct_seeded", f64::from(pct))
            .metric("committed_txns", report.completed_txns as f64)
            .metric("aborted_txns", report.aborted_txns as f64)
            .metric("abort_pct_measured", measured)
            .metric("txn_conflicts", report.txn_conflicts as f64)
            .metric("txn_conflict_refusals", report.txn_conflict_refusals as f64)
            .metric("txn_conflict_retries", report.txn_conflict_retries as f64)
            .metric("txn_p50_us", us(p50))
            .metric("txn_p95_us", us(p95))
            .metric("txn_p99_us", us(p99))
            .metric(
                "shadow_pages_pinned",
                stats.shadow_pages_pinned.get() as f64,
            )
            .metric("cleans", stats.cleans.get() as f64)
            .metric("wall_tps", report.throughput_tps())
        });
    let mut table = Table::new(&[
        "seeded %",
        "committed",
        "aborted",
        "measured %",
        "slot busy",
        "conflicts",
        "retries",
        "p50 us",
        "p95 us",
        "p99 us",
        "shadows",
        "cleans",
    ]);
    for row in &sweep.rows {
        table.row(row);
    }
    emit(
        "Section 3.4 + 6",
        "atomic TPC-A: seeded abort-rate sweep (closed loop, 2 shards, 4 slots)",
        &table,
    );
    println!();

    // ----------------------------------------------------------------
    // Concurrency sweep: per-shard slot table 1 -> 2 -> 4 -> 8 at a
    // fixed 20 % abort draw. Slot-full begin refusals collapse once
    // transactions can coexist; only write-set conflicts remain.
    // ----------------------------------------------------------------
    let conc = SweepSpec::new("ext_txn_slots", SLOT_COUNTS.to_vec()).run_with_jobs(
        jobs_arg(),
        |_, &slots| {
            let shards = 2u32;
            let config = ServeConfig::scaled(shards).with_txn_slots(slots);
            let stores = (0..shards).map(|_| baseline.fork()).collect();
            let front = ShardedStore::launch_from(stores, &config);
            let load = LoadSpec::closed(clients, txns)
                .with_seed(0x510_7500 + u64::from(slots))
                .atomic(0.2);
            let report = run_inproc(&front.handle(), &load);
            let outcome = front.shutdown();
            assert_eq!(report.errors, 0, "serving errors at {slots} slots");
            for shard in &outcome.shards {
                assert!(
                    shard.store.engine().open_txns().is_empty(),
                    "transaction left open at {slots} slots"
                );
            }
            let [p50, _, p99, _] = report
                .txn_latency
                .percentiles()
                .expect("latencies recorded");
            PointResult::row(
                format!("{slots} slots"),
                vec![
                    slots.to_string(),
                    report.completed_txns.to_string(),
                    report.aborted_txns.to_string(),
                    report.txn_conflicts.to_string(),
                    report.txn_conflict_refusals.to_string(),
                    report.txn_conflict_retries.to_string(),
                    format!("{:.1}", us(p50)),
                    format!("{:.1}", us(p99)),
                ],
            )
            .metric("txn_slots", f64::from(slots))
            .metric("committed_txns", report.completed_txns as f64)
            .metric("aborted_txns", report.aborted_txns as f64)
            .metric("txn_conflicts", report.txn_conflicts as f64)
            .metric("txn_conflict_refusals", report.txn_conflict_refusals as f64)
            .metric("txn_conflict_retries", report.txn_conflict_retries as f64)
            .metric("txn_p50_us", us(p50))
            .metric("txn_p99_us", us(p99))
            .metric("wall_tps", report.throughput_tps())
        },
    );
    let mut conc_table = Table::new(&[
        "slots",
        "committed",
        "aborted",
        "slot busy",
        "conflicts",
        "retries",
        "p50 us",
        "p99 us",
    ]);
    for row in &conc.rows {
        conc_table.row(row);
    }
    emit(
        "Section 6 (extension)",
        "atomic TPC-A: per-shard transaction slots 1/2/4/8 (20% aborts)",
        &conc_table,
    );
    println!();

    // ----------------------------------------------------------------
    // Cleaner pressure: the same offered load, plain vs. atomic.
    // ----------------------------------------------------------------
    let mut pressure_rows: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut pressure_table = Table::new(&[
        "mode",
        "txns",
        "shadows pinned",
        "cleans",
        "clean programs",
        "commits",
        "aborts",
    ]);
    for (name, atomic) in [("plain", None), ("atomic", Some(0.05))] {
        let front = ShardedStore::launch_from(vec![baseline.fork()], &ServeConfig::scaled(1));
        let mut load = LoadSpec::closed(clients, txns).with_seed(0xC1EA);
        if let Some(a) = atomic {
            load = load.atomic(a);
        }
        let report = run_inproc(&front.handle(), &load);
        let outcome = front.shutdown();
        assert_eq!(report.errors, 0, "cleaner-pressure errors ({name})");
        let stats = outcome.aggregate_stats();
        pressure_table.row(&[
            name.to_string(),
            (report.completed_txns + report.aborted_txns).to_string(),
            stats.shadow_pages_pinned.get().to_string(),
            stats.cleans.get().to_string(),
            stats.clean_programs.get().to_string(),
            stats.txn_commits.get().to_string(),
            stats.txn_aborts.get().to_string(),
        ]);
        pressure_rows.push((
            format!("pressure/{name}"),
            vec![
                ("txns", (report.completed_txns + report.aborted_txns) as f64),
                (
                    "shadow_pages_pinned",
                    stats.shadow_pages_pinned.get() as f64,
                ),
                ("cleans", stats.cleans.get() as f64),
                ("clean_programs", stats.clean_programs.get() as f64),
                ("txn_commits", stats.txn_commits.get() as f64),
                ("txn_aborts", stats.txn_aborts.get() as f64),
            ],
        ));
    }
    emit(
        "Section 6",
        "cleaner pressure: shadow pages pinned by open transactions",
        &pressure_table,
    );

    let mut points = vec![anchor_point];
    points.extend(sweep.points.iter().cloned());
    points.extend(conc.points.iter().cloned());
    points.extend(pressure_rows);
    match write_report_full(
        "ext_txn",
        sweep.jobs,
        started.elapsed().as_secs_f64(),
        &points,
        &[],
    ) {
        Ok(path) => eprintln!("  report: {}", path.display()),
        Err(e) => eprintln!("  warning: could not write report: {e}"),
    }
}
