//! `ext_serve` — extension: sharded serving scalability (the paper's §6
//! multiple-controller organization).
//!
//! Drives the `envy-serve` front end closed-loop with a fixed offered
//! workload (8 clients, skewed TPC-A mix) at 1, 2, 4 and 8 shards, each
//! shard an independent eNVy controller forked from one churned
//! steady-state baseline. On a single-CPU host the worker threads
//! time-share, so the scaling metric is **aggregate simulated-time
//! throughput**: completed transactions divided by the slowest shard's
//! simulated-clock advance — the makespan a real multi-controller array
//! would take for the same work. Wall-clock throughput and transaction
//! latency percentiles are reported alongside, and an open-loop point
//! at a fixed offered rate exercises the coordinated-omission-corrected
//! latency accounting.
//!
//! A determinism anchor runs first: a single-submitter stream through
//! the one-shard front end must land on exactly the simulated clock and
//! controller statistics of the same stream applied synchronously to a
//! monolithic store (`loadgen::run_monolithic`).

use envy_bench::{
    arg_u64, churn_to_steady_state_for, emit, jobs_arg, quick_mode, time_series_json,
    write_report_full, PointResult, SweepSpec,
};
use envy_core::EnvyStore;
use envy_server::loadgen::{run_inproc, run_monolithic, run_socket};
use envy_server::{
    raise_nofile, serve_with, Client, Listener, LoadSpec, NetConfig, NetDriver, ReadPath,
    ServeConfig, ShardPlan, ShardedStore,
};
use envy_sim::report::Table;
use envy_sim::time::Ns;
use envy_workload::{AnalyticTpca, TpcaScale};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shard counts on the x-axis; the last one also samples queue depth.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn us(ns: Ns) -> f64 {
    ns.as_nanos() as f64 / 1_000.0
}

/// Open file descriptors of this process (`/proc/self/fd`).
fn fd_count() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count() as u64)
        .unwrap_or(0)
}

/// Resident set size in KiB (`/proc/self/status` `VmRSS`).
fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Connect, retrying briefly: a burst of sequential connects can
/// overflow the listener backlog between accept sweeps.
fn connect_retry(path: &Path) -> Client {
    let start = Instant::now();
    loop {
        match Client::connect_unix(path) {
            Ok(c) => return c,
            Err(e) => {
                assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "could not connect to {}: {e}",
                    path.display()
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Hidden helper mode: hold `n` idle connections to `path` from a child
/// process. The container's hard fd limit (20000) cannot be raised even
/// by root, and a single-process 10k-connection harness needs two fds
/// per connection (client end + server end); parking the client ends in
/// a child gives each side its own fd budget. Prints `ready` once all
/// connections are up, then holds them until stdin reaches EOF.
fn hold_idle(n: u64, path: &Path) -> ! {
    use std::io::Read;
    let conns: Vec<Client> = (0..n).map(|_| connect_retry(path)).collect();
    println!("ready");
    let mut buf = [0u8; 64];
    while matches!(std::io::stdin().read(&mut buf), Ok(1..)) {}
    drop(conns);
    std::process::exit(0);
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("--hold-idle") {
        let n = std::env::args()
            .nth(2)
            .and_then(|v| v.parse().ok())
            .expect("--hold-idle N PATH");
        let path = std::env::args().nth(3).expect("--hold-idle N PATH");
        hold_idle(n, Path::new(&path));
    }
    let started = Instant::now();
    let quick = quick_mode();
    let txns = arg_u64("txns", if quick { 150 } else { 1_500 });
    let clients = arg_u64("clients", 8).max(1) as u32;
    let rate = arg_u64("rate", if quick { 2_000 } else { 4_000 });

    // One churned steady-state baseline; every shard of every point
    // forks it, so all controllers start byte- and state-identical.
    let config = ServeConfig::scaled(1);
    let mut baseline = EnvyStore::new(config.store.clone()).expect("config is valid");
    baseline.prefill().expect("prefill fits");
    let driver = AnalyticTpca::new(TpcaScale::fit_bytes(config.store.logical_bytes()));
    churn_to_steady_state_for(false, &mut baseline, &driver);

    // Determinism anchor: one shard, one submitter — the front end must
    // be indistinguishable from the monolithic store it wraps.
    let anchor_spec = LoadSpec::closed(1, if quick { 100 } else { 400 }).with_seed(0xA5C0);
    let mut mono = baseline.fork();
    let mono_report = run_monolithic(&mut mono, &anchor_spec);
    let front = ShardedStore::launch_from(vec![baseline.fork()], &ServeConfig::scaled(1));
    let front_report = run_inproc(&front.handle(), &anchor_spec);
    let anchor_outcome = front.shutdown();
    let shard0 = &anchor_outcome.shards[0].store;
    assert_eq!(shard0.now(), mono.now(), "anchor: simulated clock diverged");
    assert_eq!(
        shard0.stats(),
        mono.stats(),
        "anchor: controller stats diverged"
    );
    assert_eq!(front_report.completed_ops, mono_report.completed_ops);
    println!(
        "anchor: 1-shard front end == monolithic store ({} txns, sim {:.3} ms)",
        mono_report.completed_txns,
        shard0.now().as_nanos() as f64 / 1e6,
    );
    println!();
    let anchor_point = (
        "anchor".to_string(),
        vec![
            ("anchor_txns", mono_report.completed_txns as f64),
            ("anchor_sim_us", us(shard0.now())),
            ("anchor_match", 1.0),
        ],
    );

    // Closed-loop shard-count sweep at a fixed offered workload.
    let depth_json: Mutex<Option<String>> = Mutex::new(None);
    let baseline = &baseline;
    let sweep = SweepSpec::new("ext_serve", SHARD_COUNTS.to_vec()).run_with_jobs(
        jobs_arg(),
        |_, &shards| {
            let config = ServeConfig::scaled(shards);
            let stores = (0..shards).map(|_| baseline.fork()).collect();
            let front = ShardedStore::launch_from(stores, &config);
            let load = LoadSpec::closed(clients, txns).with_seed(0x5e47e);
            let report = run_inproc(&front.handle(), &load);
            let outcome = front.shutdown();
            assert_eq!(report.errors, 0, "serving errors at {shards} shards");
            let sim_us = us(outcome.max_sim_time());
            let sim_tps = if sim_us > 0.0 {
                report.completed_txns as f64 / (sim_us / 1e6)
            } else {
                0.0
            };
            let [p50, p95, p99, p999] = report
                .txn_latency
                .percentiles()
                .expect("latencies recorded");
            if shards == *SHARD_COUNTS.last().unwrap() {
                *depth_json.lock().unwrap() =
                    Some(time_series_json(&outcome.shards[0].depth_series));
            }
            let max_batch = outcome
                .shards
                .iter()
                .map(|s| s.max_batch)
                .max()
                .unwrap_or(0);
            PointResult::row(
                format!("{shards} shards"),
                vec![
                    shards.to_string(),
                    report.completed_txns.to_string(),
                    format!("{:.2}", sim_us / 1e3),
                    format!("{:.1}", sim_tps / 1e3),
                    format!("{:.1}", report.throughput_tps() / 1e3),
                    format!("{:.1}", us(p50)),
                    format!("{:.1}", us(p95)),
                    format!("{:.1}", us(p99)),
                    format!("{:.1}", us(p999)),
                    report.busy_retries.to_string(),
                ],
            )
            .metric("shards", f64::from(shards))
            .metric("completed_txns", report.completed_txns as f64)
            .metric("sim_makespan_us", sim_us)
            .metric("sim_tps", sim_tps)
            .metric("wall_tps", report.throughput_tps())
            .metric("p50_us", us(p50))
            .metric("p95_us", us(p95))
            .metric("p99_us", us(p99))
            .metric("p999_us", us(p999))
            .metric("busy_retries", report.busy_retries as f64)
            .metric("max_batch", f64::from(max_batch))
        },
    );

    let sim_tps_of = |i: usize| {
        sweep.points[i]
            .1
            .iter()
            .find(|(name, _)| *name == "sim_tps")
            .map_or(0.0, |&(_, v)| v)
    };
    let base_tps = sim_tps_of(0);
    let mut table = Table::new(&[
        "shards",
        "txns",
        "sim ms",
        "sim ktps",
        "wall ktps",
        "p50 us",
        "p95 us",
        "p99 us",
        "p999 us",
        "busy",
        "speedup",
    ]);
    for (i, row) in sweep.rows.iter().enumerate() {
        let mut row = row.clone();
        let speedup = if base_tps > 0.0 {
            sim_tps_of(i) / base_tps
        } else {
            0.0
        };
        row.push(format!("{speedup:.2}x"));
        table.row(&row);
    }
    emit(
        "Section 6",
        "sharded serving: closed-loop scaling (simulated-time aggregate)",
        &table,
    );
    let last = sweep.points.len() - 1;
    let scaling = if base_tps > 0.0 {
        sim_tps_of(last) / base_tps
    } else {
        0.0
    };
    println!(
        "aggregate simulated-time scaling 1 -> {} shards: {scaling:.2}x",
        SHARD_COUNTS[last]
    );
    println!();

    // One open-loop point: offered-rate pacing with latency measured
    // from the scheduled start (queueing delay counts).
    let open_shards = 4u32;
    let open_front = ShardedStore::launch_from(
        (0..open_shards).map(|_| baseline.fork()).collect(),
        &ServeConfig::scaled(open_shards),
    );
    let open_dur = Duration::from_millis(if quick { 250 } else { 1_000 });
    let open_spec = LoadSpec::closed(clients, 0)
        .open(rate)
        .with_duration(open_dur)
        .with_seed(0x09e4);
    let open_report = run_inproc(&open_front.handle(), &open_spec);
    let open_outcome = open_front.shutdown();
    assert_eq!(open_report.errors, 0, "open-loop serving errors");
    let [p50, p95, p99, p999] = open_report
        .txn_latency
        .percentiles()
        .expect("open-loop latencies recorded");
    let mut open_table = Table::new(&[
        "mode",
        "offered tps",
        "achieved tps",
        "txns",
        "p50 us",
        "p95 us",
        "p99 us",
        "p999 us",
        "busy",
    ]);
    open_table.row(&[
        format!("open/{open_shards} shards"),
        rate.to_string(),
        format!("{:.0}", open_report.throughput_tps()),
        open_report.completed_txns.to_string(),
        format!("{:.1}", us(p50)),
        format!("{:.1}", us(p95)),
        format!("{:.1}", us(p99)),
        format!("{:.1}", us(p999)),
        open_report.busy_retries.to_string(),
    ]);
    emit(
        "Section 6",
        "sharded serving: open-loop offered rate (coordinated-omission corrected)",
        &open_table,
    );
    let open_point = (
        format!("open/{open_shards}shards@{rate}tps"),
        vec![
            ("offered_tps", rate as f64),
            ("achieved_tps", open_report.throughput_tps()),
            ("completed_txns", open_report.completed_txns as f64),
            ("sim_makespan_us", us(open_outcome.max_sim_time())),
            ("p50_us", us(p50)),
            ("p95_us", us(p95)),
            ("p99_us", us(p99)),
            ("p999_us", us(p999)),
            ("busy_retries", open_report.busy_retries as f64),
        ],
    );

    // Concurrent in-shard read path: the read-heavy 95/5 record mix at
    // the widest shard count, swept over read execution paths. Reads on
    // the concurrent paths bypass the timed model via each shard's
    // lock-free ReadView, so the figure of merit is wall-clock TPS.
    let rh_shards = *SHARD_COUNTS.last().unwrap();
    let rh_txns = arg_u64("read-txns", if quick { 300 } else { 3_000 });
    let paths: [(&str, ReadPath); 5] = [
        ("timed", ReadPath::Timed),
        ("inline", ReadPath::Inline),
        ("readers1", ReadPath::Readers(1)),
        ("readers2", ReadPath::Readers(2)),
        ("readers4", ReadPath::Readers(4)),
    ];
    let mut rh_table = Table::new(&[
        "read path",
        "txns",
        "wall ktps",
        "offloaded",
        "retries",
        "busy",
        "p50 us",
        "p99 us",
        "speedup",
    ]);
    let mut rh_points: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut timed_wall_tps = 0.0;
    for (name, path) in paths {
        let config = ServeConfig::scaled(rh_shards).with_read_path(path);
        let stores = (0..rh_shards).map(|_| baseline.fork()).collect();
        let front = ShardedStore::launch_from(stores, &config);
        let load = LoadSpec::closed(clients, rh_txns)
            .with_seed(0x95f5)
            .read_mostly(0.95);
        let report = run_inproc(&front.handle(), &load);
        let outcome = front.shutdown();
        assert_eq!(report.errors, 0, "read-heavy serving errors ({name})");
        let wall_tps = report.throughput_tps();
        if name == "timed" {
            timed_wall_tps = wall_tps;
        }
        let speedup = if timed_wall_tps > 0.0 {
            wall_tps / timed_wall_tps
        } else {
            0.0
        };
        let [p50, _, p99, _] = report
            .txn_latency
            .percentiles()
            .expect("read-heavy latencies recorded");
        rh_table.row(&[
            name.to_string(),
            report.completed_txns.to_string(),
            format!("{:.1}", wall_tps / 1e3),
            outcome.total_reads_offloaded().to_string(),
            outcome.total_read_retries().to_string(),
            report.busy_retries.to_string(),
            format!("{:.1}", us(p50)),
            format!("{:.1}", us(p99)),
            format!("{speedup:.2}x"),
        ]);
        rh_points.push((
            format!("readheavy/{name}"),
            vec![
                ("shards", f64::from(rh_shards)),
                (
                    "reader_threads",
                    match path {
                        ReadPath::Timed => 0.0,
                        ReadPath::Inline => -1.0,
                        ReadPath::Readers(n) => f64::from(n),
                    },
                ),
                ("completed_txns", report.completed_txns as f64),
                ("wall_tps", wall_tps),
                ("reads_offloaded", outcome.total_reads_offloaded() as f64),
                ("read_retries", outcome.total_read_retries() as f64),
                ("busy_retries", report.busy_retries as f64),
                ("p50_us", us(p50)),
                ("p99_us", us(p99)),
                ("speedup_vs_timed", speedup),
            ],
        ));
    }
    emit(
        "Section 6",
        "concurrent read path: read-heavy 95/5 mix, wall-clock (8 shards)",
        &rh_table,
    );
    println!();

    // Backpressure burst: a deliberately small queue under a slow,
    // pipelined burst must reject with Busy { retry_after }; the
    // hinted-backoff retry loop still completes every transaction.
    let burst_config = ServeConfig::scaled(1)
        .with_queue_capacity(8)
        .with_service_delay(Duration::from_micros(50));
    let burst_front = ShardedStore::launch_from(vec![baseline.fork()], &burst_config);
    let burst_spec = LoadSpec::closed(8, if quick { 20 } else { 100 }).with_seed(0xB057);
    let burst_report = run_inproc(&burst_front.handle(), &burst_spec);
    let burst_outcome = burst_front.shutdown();
    assert!(
        burst_report.busy_retries > 0,
        "burst point must exercise Busy backpressure"
    );
    assert_eq!(burst_report.errors, 0, "burst serving errors");
    assert_eq!(
        burst_report.completed_txns,
        8 * if quick { 20 } else { 100 },
        "busy retries must complete every transaction"
    );
    println!(
        "burst: queue=8, 8 pipelined clients -> {} Busy retries, all {} txns completed",
        burst_report.busy_retries, burst_report.completed_txns
    );
    println!();
    let burst_point = (
        "burst/queue8".to_string(),
        vec![
            ("busy_retries", burst_report.busy_retries as f64),
            ("completed_txns", burst_report.completed_txns as f64),
            ("wall_tps", burst_report.throughput_tps()),
            ("served", burst_outcome.total_served() as f64),
        ],
    );

    // Event-driven socket path: the connection-count load axis. All
    // socket stages run the epoll driver over a Unix socket against an
    // 8-shard Inline front end (the fastest in-process read path, so
    // the comparison is against the strongest baseline).
    let sock_shards = *SHARD_COUNTS.last().unwrap();
    let active = arg_u64("active-conns", if quick { 50 } else { 100 }).max(1) as u32;
    let sock_path =
        std::env::temp_dir().join(format!("envy-ext-serve-{}.sock", std::process::id()));
    let launch_sock = |driver: NetDriver| {
        let config = ServeConfig::scaled(sock_shards).with_read_path(ReadPath::Inline);
        let stores = (0..sock_shards).map(|_| baseline.fork()).collect();
        let front = ShardedStore::launch_from(stores, &config);
        let plan: ShardPlan = *front.plan();
        let listener = Listener::bind_unix(&sock_path).expect("bind unix socket");
        let server = serve_with(
            listener,
            front,
            NetConfig {
                driver,
                idle_timeout: None,
            },
        )
        .expect("serve over unix socket");
        (server, plan)
    };

    // Socket-vs-in-process wall TPS at `active` connections: the same
    // read-heavy closed-loop load through the wire and through the
    // in-process handle. The gap is the whole socket tax — syscalls,
    // framing, and the event loop itself.
    let conn_txns = arg_u64("conn-txns", if quick { 10 } else { 40 });
    let ratio_spec = LoadSpec::closed(active, conn_txns)
        .with_seed(0xC099)
        .read_mostly(0.95);
    let inproc_front = ShardedStore::launch_from(
        (0..sock_shards).map(|_| baseline.fork()).collect(),
        &ServeConfig::scaled(sock_shards).with_read_path(ReadPath::Inline),
    );
    let inproc_report = run_inproc(&inproc_front.handle(), &ratio_spec);
    inproc_front.shutdown();
    let (server, plan) = launch_sock(NetDriver::Epoll);
    let sock_report = run_socket(|| Client::connect_unix(&sock_path), plan, &ratio_spec)
        .expect("socket ratio load run");
    server.shutdown();
    assert_eq!(sock_report.errors, 0, "socket ratio serving errors");
    // The same wire load under the thread-per-connection driver: the
    // apples-to-apples comparison for the event-loop rewrite (both pay
    // the full socket tax; only the connection model differs).
    let (server_t, plan_t) = launch_sock(NetDriver::Threads);
    let sock_t_report = run_socket(|| Client::connect_unix(&sock_path), plan_t, &ratio_spec)
        .expect("socket ratio load run (threads)");
    server_t.shutdown();
    assert_eq!(sock_t_report.errors, 0, "threads ratio serving errors");
    let inproc_tps = inproc_report.throughput_tps();
    let sock_tps = sock_report.throughput_tps();
    let sock_t_tps = sock_t_report.throughput_tps();
    let sock_gap = if sock_tps > 0.0 {
        inproc_tps / sock_tps
    } else {
        f64::INFINITY
    };
    let epoll_over_threads = if sock_t_tps > 0.0 {
        sock_tps / sock_t_tps
    } else {
        f64::INFINITY
    };
    println!(
        "socket tax at {active} connections (8 shards, inline reads, read-heavy): \
         in-process {:.1} ktps vs socket {:.1} ktps -> {:.2}x",
        inproc_tps / 1e3,
        sock_tps / 1e3,
        sock_gap
    );
    println!(
        "socket drivers at {active} connections: epoll {:.1} ktps vs threads {:.1} ktps \
         -> {:.2}x",
        sock_tps / 1e3,
        sock_t_tps / 1e3,
        epoll_over_threads
    );
    println!();
    let ratio_point = (
        format!("conn_ratio/{active}conns"),
        vec![
            ("active_conns", f64::from(active)),
            ("inproc_wall_tps", inproc_tps),
            ("socket_wall_tps", sock_tps),
            ("socket_threads_wall_tps", sock_t_tps),
            ("inproc_over_socket", sock_gap),
            ("epoll_over_threads", epoll_over_threads),
        ],
    );

    // Connection-count sweep: `count` total connections, of which
    // `active` drive an open-loop (coordinated-omission-corrected)
    // offered rate and the rest sit idle — the service-scale shape
    // where almost every connection is quiet at any instant. Idle
    // connections must not cost latency: the acceptance bar is p999 at
    // the widest count within 1.5x of the 100-connection p999.
    let conn_counts: &[u64] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    // Full runs hold each point for 5 s (~7 500 samples), long enough
    // that p999 is an average over several samples rather than the
    // single worst scheduling hiccup of a short window.
    let conn_rate = arg_u64("conn-rate", if quick { 800 } else { 1_500 });
    let conn_dur = Duration::from_millis(if quick { 400 } else { 5_000 });
    // Idle connections are parked in a child process (see `hold_idle`),
    // so this process only holds their server ends: one fd per idle
    // connection plus two per active one.
    let nofile_need = conn_counts.iter().max().unwrap() + u64::from(active) * 2 + 512;
    let nofile = raise_nofile(nofile_need).unwrap_or(0);
    let mut conn_table = Table::new(&[
        "conns",
        "active",
        "achieved tps",
        "p50 us",
        "p99 us",
        "p999 us",
        "busy",
        "fds",
        "rss MiB",
    ]);
    let mut conn_points: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut p999_by_count: Vec<(u64, f64)> = Vec::new();
    for &count in conn_counts {
        if count + u64::from(active) * 2 + 256 > nofile {
            println!(
                "conn_sweep: skipping {count} connections (fd limit {nofile} < {})",
                count + u64::from(active) * 2 + 256
            );
            continue;
        }
        let (server, plan) = launch_sock(NetDriver::Epoll);
        let idle_count = count.saturating_sub(u64::from(active));
        let holder = if idle_count > 0 {
            let exe = std::env::current_exe().expect("current exe");
            let mut child = std::process::Command::new(exe)
                .arg("--hold-idle")
                .arg(idle_count.to_string())
                .arg(&sock_path)
                .stdin(std::process::Stdio::piped())
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn idle holder");
            let mut ready = String::new();
            std::io::BufRead::read_line(
                &mut std::io::BufReader::new(child.stdout.take().expect("holder stdout")),
                &mut ready,
            )
            .expect("idle holder handshake");
            assert_eq!(ready.trim(), "ready", "idle holder failed to connect");
            Some(child)
        } else {
            None
        };
        // Unmeasured warmup: the rows with idle connections get seconds
        // of implicit settling while the holder connects; give the bare
        // row the same benefit so its tail is steady-state too.
        let warmup = LoadSpec::closed(active, 0)
            .open(conn_rate)
            .with_duration(Duration::from_millis(if quick { 100 } else { 500 }))
            .with_seed(0xC5EE ^ 1)
            .read_mostly(0.95);
        run_socket(|| Client::connect_unix(&sock_path), plan, &warmup)
            .expect("conn sweep warmup run");
        let spec = LoadSpec::closed(active, 0)
            .open(conn_rate)
            .with_duration(conn_dur)
            .with_seed(0xC5EE)
            .read_mostly(0.95);
        let report = run_socket(|| Client::connect_unix(&sock_path), plan, &spec)
            .expect("conn sweep load run");
        let fds = fd_count();
        let rss = rss_kb();
        if let Some(mut child) = holder {
            drop(child.stdin.take());
            let _ = child.wait();
        }
        server.shutdown();
        assert_eq!(report.errors, 0, "conn sweep serving errors at {count}");
        let [p50, _, p99, p999] = report
            .txn_latency
            .percentiles()
            .expect("conn sweep latencies recorded");
        conn_table.row(&[
            count.to_string(),
            active.to_string(),
            format!("{:.0}", report.throughput_tps()),
            format!("{:.1}", us(p50)),
            format!("{:.1}", us(p99)),
            format!("{:.1}", us(p999)),
            report.busy_retries.to_string(),
            fds.to_string(),
            format!("{:.1}", rss as f64 / 1024.0),
        ]);
        p999_by_count.push((count, us(p999)));
        conn_points.push((
            format!("conn_sweep/{count}conns"),
            vec![
                ("total_conns", count as f64),
                ("active_conns", f64::from(active)),
                ("offered_tps", conn_rate as f64),
                ("achieved_tps", report.throughput_tps()),
                ("p50_us", us(p50)),
                ("p99_us", us(p99)),
                ("p999_us", us(p999)),
                ("busy_retries", report.busy_retries as f64),
                ("fds", fds as f64),
                ("rss_kb", rss as f64),
            ],
        ));
    }
    emit(
        "Section 6",
        "event-loop socket serving: connection-count sweep (open loop, CO-corrected)",
        &conn_table,
    );
    if let (Some(&(_, first)), Some(&(widest, last))) =
        (p999_by_count.first(), p999_by_count.last())
    {
        if p999_by_count.len() > 1 && first > 0.0 {
            println!(
                "p999 growth {} -> {widest} connections: {:.2}x",
                p999_by_count[0].0,
                last / first
            );
            println!();
        }
    }

    // Idle-connection memory: fd and RSS cost per quiet connection
    // under the event loop vs thread-per-connection (two OS threads
    // and stacks each) — the memory win that motivates the rewrite.
    let mem_conns = arg_u64("mem-conns", if quick { 200 } else { 500 });
    let mut mem_table = Table::new(&["driver", "idle conns", "fds/conn", "rss KiB/conn"]);
    let mut mem_points: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    for driver in [NetDriver::Epoll, NetDriver::Threads] {
        let (server, _plan) = launch_sock(driver);
        let fd0 = fd_count();
        let rss0 = rss_kb();
        let idle: Vec<Client> = (0..mem_conns).map(|_| connect_retry(&sock_path)).collect();
        // Let the server finish materializing per-connection state
        // (the threads driver spawns two threads per connection).
        std::thread::sleep(Duration::from_millis(200));
        let fd_per = (fd_count().saturating_sub(fd0)) as f64 / mem_conns as f64;
        let rss_per = (rss_kb().saturating_sub(rss0)) as f64 / mem_conns as f64;
        drop(idle);
        server.shutdown();
        mem_table.row(&[
            driver.name().to_string(),
            mem_conns.to_string(),
            format!("{fd_per:.2}"),
            format!("{rss_per:.1}"),
        ]);
        mem_points.push((
            format!("conn_mem/{}", driver.name()),
            vec![
                ("idle_conns", mem_conns as f64),
                ("fds_per_conn", fd_per),
                ("rss_kb_per_conn", rss_per),
            ],
        ));
    }
    emit(
        "Section 6",
        "idle-connection cost: event loop vs thread-per-connection",
        &mem_table,
    );
    println!();

    let mut points = vec![anchor_point];
    points.extend(sweep.points.iter().cloned());
    points.push(open_point);
    points.extend(rh_points);
    points.push(burst_point);
    points.push(ratio_point);
    points.extend(conn_points);
    points.extend(mem_points);
    let extras = match depth_json.into_inner().expect("no poisoned lock") {
        Some(json) => vec![("queue_depth", json)],
        None => Vec::new(),
    };
    match write_report_full(
        "ext_serve",
        sweep.jobs,
        started.elapsed().as_secs_f64(),
        &points,
        &extras,
    ) {
        Ok(path) => eprintln!("  report: {}", path.display()),
        Err(e) => eprintln!("  warning: could not write report: {e}"),
    }
}
