//! `ext_serve` — extension: sharded serving scalability (the paper's §6
//! multiple-controller organization).
//!
//! Drives the `envy-serve` front end closed-loop with a fixed offered
//! workload (8 clients, skewed TPC-A mix) at 1, 2, 4 and 8 shards, each
//! shard an independent eNVy controller forked from one churned
//! steady-state baseline. On a single-CPU host the worker threads
//! time-share, so the scaling metric is **aggregate simulated-time
//! throughput**: completed transactions divided by the slowest shard's
//! simulated-clock advance — the makespan a real multi-controller array
//! would take for the same work. Wall-clock throughput and transaction
//! latency percentiles are reported alongside, and an open-loop point
//! at a fixed offered rate exercises the coordinated-omission-corrected
//! latency accounting.
//!
//! A determinism anchor runs first: a single-submitter stream through
//! the one-shard front end must land on exactly the simulated clock and
//! controller statistics of the same stream applied synchronously to a
//! monolithic store (`loadgen::run_monolithic`).

use envy_bench::{
    arg_u64, churn_to_steady_state_for, emit, jobs_arg, quick_mode, time_series_json,
    write_report_full, PointResult, SweepSpec,
};
use envy_core::EnvyStore;
use envy_server::loadgen::{run_inproc, run_monolithic};
use envy_server::{LoadSpec, ReadPath, ServeConfig, ShardedStore};
use envy_sim::report::Table;
use envy_sim::time::Ns;
use envy_workload::{AnalyticTpca, TpcaScale};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shard counts on the x-axis; the last one also samples queue depth.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn us(ns: Ns) -> f64 {
    ns.as_nanos() as f64 / 1_000.0
}

fn main() {
    let started = Instant::now();
    let quick = quick_mode();
    let txns = arg_u64("txns", if quick { 150 } else { 1_500 });
    let clients = arg_u64("clients", 8).max(1) as u32;
    let rate = arg_u64("rate", if quick { 2_000 } else { 4_000 });

    // One churned steady-state baseline; every shard of every point
    // forks it, so all controllers start byte- and state-identical.
    let config = ServeConfig::scaled(1);
    let mut baseline = EnvyStore::new(config.store.clone()).expect("config is valid");
    baseline.prefill().expect("prefill fits");
    let driver = AnalyticTpca::new(TpcaScale::fit_bytes(config.store.logical_bytes()));
    churn_to_steady_state_for(false, &mut baseline, &driver);

    // Determinism anchor: one shard, one submitter — the front end must
    // be indistinguishable from the monolithic store it wraps.
    let anchor_spec = LoadSpec::closed(1, if quick { 100 } else { 400 }).with_seed(0xA5C0);
    let mut mono = baseline.fork();
    let mono_report = run_monolithic(&mut mono, &anchor_spec);
    let front = ShardedStore::launch_from(vec![baseline.fork()], &ServeConfig::scaled(1));
    let front_report = run_inproc(&front.handle(), &anchor_spec);
    let anchor_outcome = front.shutdown();
    let shard0 = &anchor_outcome.shards[0].store;
    assert_eq!(shard0.now(), mono.now(), "anchor: simulated clock diverged");
    assert_eq!(
        shard0.stats(),
        mono.stats(),
        "anchor: controller stats diverged"
    );
    assert_eq!(front_report.completed_ops, mono_report.completed_ops);
    println!(
        "anchor: 1-shard front end == monolithic store ({} txns, sim {:.3} ms)",
        mono_report.completed_txns,
        shard0.now().as_nanos() as f64 / 1e6,
    );
    println!();
    let anchor_point = (
        "anchor".to_string(),
        vec![
            ("anchor_txns", mono_report.completed_txns as f64),
            ("anchor_sim_us", us(shard0.now())),
            ("anchor_match", 1.0),
        ],
    );

    // Closed-loop shard-count sweep at a fixed offered workload.
    let depth_json: Mutex<Option<String>> = Mutex::new(None);
    let baseline = &baseline;
    let sweep = SweepSpec::new("ext_serve", SHARD_COUNTS.to_vec()).run_with_jobs(
        jobs_arg(),
        |_, &shards| {
            let config = ServeConfig::scaled(shards);
            let stores = (0..shards).map(|_| baseline.fork()).collect();
            let front = ShardedStore::launch_from(stores, &config);
            let load = LoadSpec::closed(clients, txns).with_seed(0x5e47e);
            let report = run_inproc(&front.handle(), &load);
            let outcome = front.shutdown();
            assert_eq!(report.errors, 0, "serving errors at {shards} shards");
            let sim_us = us(outcome.max_sim_time());
            let sim_tps = if sim_us > 0.0 {
                report.completed_txns as f64 / (sim_us / 1e6)
            } else {
                0.0
            };
            let [p50, p95, p99, p999] = report
                .txn_latency
                .percentiles()
                .expect("latencies recorded");
            if shards == *SHARD_COUNTS.last().unwrap() {
                *depth_json.lock().unwrap() =
                    Some(time_series_json(&outcome.shards[0].depth_series));
            }
            let max_batch = outcome
                .shards
                .iter()
                .map(|s| s.max_batch)
                .max()
                .unwrap_or(0);
            PointResult::row(
                format!("{shards} shards"),
                vec![
                    shards.to_string(),
                    report.completed_txns.to_string(),
                    format!("{:.2}", sim_us / 1e3),
                    format!("{:.1}", sim_tps / 1e3),
                    format!("{:.1}", report.throughput_tps() / 1e3),
                    format!("{:.1}", us(p50)),
                    format!("{:.1}", us(p95)),
                    format!("{:.1}", us(p99)),
                    format!("{:.1}", us(p999)),
                    report.busy_retries.to_string(),
                ],
            )
            .metric("shards", f64::from(shards))
            .metric("completed_txns", report.completed_txns as f64)
            .metric("sim_makespan_us", sim_us)
            .metric("sim_tps", sim_tps)
            .metric("wall_tps", report.throughput_tps())
            .metric("p50_us", us(p50))
            .metric("p95_us", us(p95))
            .metric("p99_us", us(p99))
            .metric("p999_us", us(p999))
            .metric("busy_retries", report.busy_retries as f64)
            .metric("max_batch", f64::from(max_batch))
        },
    );

    let sim_tps_of = |i: usize| {
        sweep.points[i]
            .1
            .iter()
            .find(|(name, _)| *name == "sim_tps")
            .map_or(0.0, |&(_, v)| v)
    };
    let base_tps = sim_tps_of(0);
    let mut table = Table::new(&[
        "shards",
        "txns",
        "sim ms",
        "sim ktps",
        "wall ktps",
        "p50 us",
        "p95 us",
        "p99 us",
        "p999 us",
        "busy",
        "speedup",
    ]);
    for (i, row) in sweep.rows.iter().enumerate() {
        let mut row = row.clone();
        let speedup = if base_tps > 0.0 {
            sim_tps_of(i) / base_tps
        } else {
            0.0
        };
        row.push(format!("{speedup:.2}x"));
        table.row(&row);
    }
    emit(
        "Section 6",
        "sharded serving: closed-loop scaling (simulated-time aggregate)",
        &table,
    );
    let last = sweep.points.len() - 1;
    let scaling = if base_tps > 0.0 {
        sim_tps_of(last) / base_tps
    } else {
        0.0
    };
    println!(
        "aggregate simulated-time scaling 1 -> {} shards: {scaling:.2}x",
        SHARD_COUNTS[last]
    );
    println!();

    // One open-loop point: offered-rate pacing with latency measured
    // from the scheduled start (queueing delay counts).
    let open_shards = 4u32;
    let open_front = ShardedStore::launch_from(
        (0..open_shards).map(|_| baseline.fork()).collect(),
        &ServeConfig::scaled(open_shards),
    );
    let open_dur = Duration::from_millis(if quick { 250 } else { 1_000 });
    let open_spec = LoadSpec::closed(clients, 0)
        .open(rate)
        .with_duration(open_dur)
        .with_seed(0x09e4);
    let open_report = run_inproc(&open_front.handle(), &open_spec);
    let open_outcome = open_front.shutdown();
    assert_eq!(open_report.errors, 0, "open-loop serving errors");
    let [p50, p95, p99, p999] = open_report
        .txn_latency
        .percentiles()
        .expect("open-loop latencies recorded");
    let mut open_table = Table::new(&[
        "mode",
        "offered tps",
        "achieved tps",
        "txns",
        "p50 us",
        "p95 us",
        "p99 us",
        "p999 us",
        "busy",
    ]);
    open_table.row(&[
        format!("open/{open_shards} shards"),
        rate.to_string(),
        format!("{:.0}", open_report.throughput_tps()),
        open_report.completed_txns.to_string(),
        format!("{:.1}", us(p50)),
        format!("{:.1}", us(p95)),
        format!("{:.1}", us(p99)),
        format!("{:.1}", us(p999)),
        open_report.busy_retries.to_string(),
    ]);
    emit(
        "Section 6",
        "sharded serving: open-loop offered rate (coordinated-omission corrected)",
        &open_table,
    );
    let open_point = (
        format!("open/{open_shards}shards@{rate}tps"),
        vec![
            ("offered_tps", rate as f64),
            ("achieved_tps", open_report.throughput_tps()),
            ("completed_txns", open_report.completed_txns as f64),
            ("sim_makespan_us", us(open_outcome.max_sim_time())),
            ("p50_us", us(p50)),
            ("p95_us", us(p95)),
            ("p99_us", us(p99)),
            ("p999_us", us(p999)),
            ("busy_retries", open_report.busy_retries as f64),
        ],
    );

    // Concurrent in-shard read path: the read-heavy 95/5 record mix at
    // the widest shard count, swept over read execution paths. Reads on
    // the concurrent paths bypass the timed model via each shard's
    // lock-free ReadView, so the figure of merit is wall-clock TPS.
    let rh_shards = *SHARD_COUNTS.last().unwrap();
    let rh_txns = arg_u64("read-txns", if quick { 300 } else { 3_000 });
    let paths: [(&str, ReadPath); 5] = [
        ("timed", ReadPath::Timed),
        ("inline", ReadPath::Inline),
        ("readers1", ReadPath::Readers(1)),
        ("readers2", ReadPath::Readers(2)),
        ("readers4", ReadPath::Readers(4)),
    ];
    let mut rh_table = Table::new(&[
        "read path",
        "txns",
        "wall ktps",
        "offloaded",
        "retries",
        "busy",
        "p50 us",
        "p99 us",
        "speedup",
    ]);
    let mut rh_points: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut timed_wall_tps = 0.0;
    for (name, path) in paths {
        let config = ServeConfig::scaled(rh_shards).with_read_path(path);
        let stores = (0..rh_shards).map(|_| baseline.fork()).collect();
        let front = ShardedStore::launch_from(stores, &config);
        let load = LoadSpec::closed(clients, rh_txns)
            .with_seed(0x95f5)
            .read_mostly(0.95);
        let report = run_inproc(&front.handle(), &load);
        let outcome = front.shutdown();
        assert_eq!(report.errors, 0, "read-heavy serving errors ({name})");
        let wall_tps = report.throughput_tps();
        if name == "timed" {
            timed_wall_tps = wall_tps;
        }
        let speedup = if timed_wall_tps > 0.0 {
            wall_tps / timed_wall_tps
        } else {
            0.0
        };
        let [p50, _, p99, _] = report
            .txn_latency
            .percentiles()
            .expect("read-heavy latencies recorded");
        rh_table.row(&[
            name.to_string(),
            report.completed_txns.to_string(),
            format!("{:.1}", wall_tps / 1e3),
            outcome.total_reads_offloaded().to_string(),
            outcome.total_read_retries().to_string(),
            report.busy_retries.to_string(),
            format!("{:.1}", us(p50)),
            format!("{:.1}", us(p99)),
            format!("{speedup:.2}x"),
        ]);
        rh_points.push((
            format!("readheavy/{name}"),
            vec![
                ("shards", f64::from(rh_shards)),
                (
                    "reader_threads",
                    match path {
                        ReadPath::Timed => 0.0,
                        ReadPath::Inline => -1.0,
                        ReadPath::Readers(n) => f64::from(n),
                    },
                ),
                ("completed_txns", report.completed_txns as f64),
                ("wall_tps", wall_tps),
                ("reads_offloaded", outcome.total_reads_offloaded() as f64),
                ("read_retries", outcome.total_read_retries() as f64),
                ("busy_retries", report.busy_retries as f64),
                ("p50_us", us(p50)),
                ("p99_us", us(p99)),
                ("speedup_vs_timed", speedup),
            ],
        ));
    }
    emit(
        "Section 6",
        "concurrent read path: read-heavy 95/5 mix, wall-clock (8 shards)",
        &rh_table,
    );
    println!();

    // Backpressure burst: a deliberately small queue under a slow,
    // pipelined burst must reject with Busy { retry_after }; the
    // hinted-backoff retry loop still completes every transaction.
    let burst_config = ServeConfig::scaled(1)
        .with_queue_capacity(8)
        .with_service_delay(Duration::from_micros(50));
    let burst_front = ShardedStore::launch_from(vec![baseline.fork()], &burst_config);
    let burst_spec = LoadSpec::closed(8, if quick { 20 } else { 100 }).with_seed(0xB057);
    let burst_report = run_inproc(&burst_front.handle(), &burst_spec);
    let burst_outcome = burst_front.shutdown();
    assert!(
        burst_report.busy_retries > 0,
        "burst point must exercise Busy backpressure"
    );
    assert_eq!(burst_report.errors, 0, "burst serving errors");
    assert_eq!(
        burst_report.completed_txns,
        8 * if quick { 20 } else { 100 },
        "busy retries must complete every transaction"
    );
    println!(
        "burst: queue=8, 8 pipelined clients -> {} Busy retries, all {} txns completed",
        burst_report.busy_retries, burst_report.completed_txns
    );
    println!();
    let burst_point = (
        "burst/queue8".to_string(),
        vec![
            ("busy_retries", burst_report.busy_retries as f64),
            ("completed_txns", burst_report.completed_txns as f64),
            ("wall_tps", burst_report.throughput_tps()),
            ("served", burst_outcome.total_served() as f64),
        ],
    );

    let mut points = vec![anchor_point];
    points.extend(sweep.points.iter().cloned());
    points.push(open_point);
    points.extend(rh_points);
    points.push(burst_point);
    let extras = match depth_json.into_inner().expect("no poisoned lock") {
        Some(json) => vec![("queue_depth", json)],
        None => Vec::new(),
    };
    match write_report_full(
        "ext_serve",
        sweep.jobs,
        started.elapsed().as_secs_f64(),
        &points,
        &extras,
    ) {
        Ok(path) => eprintln!("  report: {}", path.display()),
        Err(e) => eprintln!("  warning: could not write report: {e}"),
    }
}
