//! §5.3 time breakdown: where the storage system's busy time goes at
//! high load and 80 % utilization.
//!
//! Paper: "At a utilization of 80% and a transaction rate of 30,000 TPS,
//! the eNVy system is almost never idle. Under these conditions,
//! approximately 40% of the time is servicing reads. Most of the
//! remaining time is spent either cleaning (30%), flushing (15%), or
//! erasing (15%)."

use envy_bench::{arg_u64, emit, quick_mode, timed_system};
use envy_sim::report::Table;
use envy_workload::run_timed;

fn main() {
    let start = std::time::Instant::now();
    let txns = arg_u64("txns", if quick_mode() { 10_000 } else { 40_000 });
    let rate = arg_u64("rate", 30_000) as f64;
    let (mut store, driver) = timed_system(0.8);
    let result = run_timed(&mut store, &driver, rate, txns / 10, txns, 42).expect("timed run");
    let b = store
        .stats()
        .breakdown()
        .expect("timed run produces busy time");
    let mut table = Table::new(&["activity", "fraction of busy time", "paper"]);
    let pct = |f: f64| format!("{:.1}%", f * 100.0);
    table.row(&["reads".into(), pct(b.reads), "~40%".into()]);
    table.row(&["writes".into(), pct(b.writes), "(in reads/writes)".into()]);
    table.row(&["cleaning".into(), pct(b.cleaning), "~30%".into()]);
    table.row(&["flushing".into(), pct(b.flushing), "~15%".into()]);
    table.row(&["erasing".into(), pct(b.erasing), "~15%".into()]);
    table.row(&[
        "suspension back-off".into(),
        pct(b.suspended),
        "(not separated)".into(),
    ]);
    emit(
        "Section 5.3",
        &format!(
            "controller busy-time breakdown at {rate} TPS, 80% utilization (achieved {:.0} TPS)",
            result.achieved_tps
        ),
        &table,
    );
    let points = vec![(
        format!("{rate} TPS"),
        vec![
            ("achieved_tps", result.achieved_tps),
            ("reads", b.reads),
            ("writes", b.writes),
            ("cleaning", b.cleaning),
            ("flushing", b.flushing),
            ("erasing", b.erasing),
            ("suspended", b.suspended),
        ],
    )];
    if let Err(e) = envy_bench::sweep::write_report_raw(
        "breakdown_53",
        1,
        start.elapsed().as_secs_f64(),
        &points,
    ) {
        eprintln!("  warning: could not write report: {e}");
    }
}
