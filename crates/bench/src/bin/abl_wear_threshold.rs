//! Ablation: the wear-leveling threshold (§4.3 uses 100 cycles).
//!
//! A lower threshold keeps wear more even (longer array life) at the
//! price of extra swap copies; `off` shows the unlevelled spread.

use envy_bench::{emit, quick_mode, PointResult, SweepSpec};
use envy_core::{EnvyConfig, EnvyStore, PolicyKind};
use envy_sim::dist::Bimodal;
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;

fn main() {
    let writes: u64 = if quick_mode() { 300_000 } else { 1_000_000 };
    let thresholds = vec![u64::MAX, 200, 100, 50, 10];
    let outcome = SweepSpec::new("abl_wear_threshold", thresholds).run(|_, &threshold| {
        let config = EnvyConfig::scaled(4, 16, 256, 256)
            .with_store_data(false)
            .with_policy(PolicyKind::LocalityGathering)
            .with_buffer_pages(64)
            .with_wear_threshold(threshold);
        let mut store = EnvyStore::new(config).expect("valid config");
        store.prefill().expect("prefill");
        // Extremely hot small region: the worst case for wear.
        let dist = Bimodal::from_spec(store.config().logical_pages, 5, 95);
        let mut rng = Rng::seed_from(3);
        for _ in 0..writes {
            store
                .write(dist.sample(&mut rng) * 256, &[0])
                .expect("write");
        }
        let flash = store.engine().flash();
        let stats = store.stats();
        let label = if threshold == u64::MAX {
            "off".to_string()
        } else {
            threshold.to_string()
        };
        let spread = flash.max_erase_cycles() - flash.min_erase_cycles();
        let swap_programs_per_flush =
            stats.wear_programs.get() as f64 / stats.pages_flushed.get() as f64;
        PointResult::row(
            format!("threshold={label}"),
            vec![
                label,
                spread.to_string(),
                flash.max_erase_cycles().to_string(),
                stats.wear_swaps.get().to_string(),
                fmt_f64(swap_programs_per_flush),
            ],
        )
        .metric("cycle_spread", spread as f64)
        .metric("max_cycles", flash.max_erase_cycles() as f64)
        .metric("swaps", stats.wear_swaps.get() as f64)
        .metric("swap_programs_per_flush", swap_programs_per_flush)
    });
    let mut table = Table::new(&[
        "threshold",
        "cycle spread",
        "max cycles",
        "swaps",
        "swap programs / flush",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Ablation: wear-leveling threshold",
        "5/95 hot/cold writes; lifetime is set by max cycles (§4.3, §5.5)",
        &table,
    );
}
