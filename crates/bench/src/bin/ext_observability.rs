//! Extension: latency percentiles and controller telemetry.
//!
//! Figure 15 reports only *average* read/write latency per request rate.
//! With sub-bucketed histograms the same sweep yields the distribution
//! tails — p50/p95/p99/p999 — which show what the average hides: past
//! saturation even p999 writes stay at SRAM speed, and the jump in the
//! Figure-15 mean comes entirely from a sub-0.1% population of enormous
//! buffer-full stalls (visible in the max column). An average alone
//! cannot distinguish that from a uniform slowdown. The run also
//! exercises the full observability layer: the saturated point is rerun
//! with tracing and the periodic sampler enabled, and the report embeds
//! its time series, a trace excerpt, and the per-segment wear spread.

use envy_bench::{
    arg_u64, emit, jobs_arg, quick_mode, time_series_json, timed_system, trace_json,
    write_report_full, PointResult, SweepSpec,
};
use envy_sim::report::Table;
use envy_sim::time::Ns;
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 8_000 } else { 30_000 });
    let warmup = txns / 10;
    let (base, driver) = timed_system(0.8);
    let rates = vec![5_000u64, 20_000, 40_000, 60_000, 80_000];
    let saturated = *rates.last().expect("rates nonempty");
    let spec = SweepSpec::new("ext_observability", rates);
    let outcome = spec.run_with_jobs(jobs_arg(), |_, &rate| {
        let mut store = base.fork();
        let result =
            run_timed(&mut store, &driver, rate as f64, warmup, txns, 42).expect("timed run");
        // Percentiles are over the whole fork's histogram (warmup
        // included) — the warmup runs at the same rate, so the tails are
        // representative.
        let r = store.stats().read_latency.percentiles().expect("reads ran");
        let w = store
            .stats()
            .write_latency
            .percentiles()
            .expect("writes ran");
        let w_mean = store.stats().write_latency.mean();
        let w_max = store.stats().write_latency.max().expect("writes ran");
        let mut row = vec![rate.to_string()];
        row.extend(r.iter().map(ToString::to_string));
        row.extend(w.iter().map(ToString::to_string));
        row.push(w_mean.to_string());
        row.push(w_max.to_string());
        row.push(format!("{:.0}", result.achieved_tps));
        let mut point = PointResult::row(format!("{rate} TPS"), row)
            .metric("offered_tps", rate as f64)
            .metric("achieved_tps", result.achieved_tps)
            .metric("write_mean_ns", w_mean.as_nanos() as f64)
            .metric("write_max_ns", w_max.as_nanos() as f64);
        for (series, vals) in [("read", r), ("write", w)] {
            for (q, v) in ["p50", "p95", "p99", "p999"].iter().zip(vals) {
                point
                    .metrics
                    .push((percentile_key(series, q), v.as_nanos() as f64));
            }
        }
        point
    });

    // Rerun the saturated point with the full observability layer on:
    // trace ring, periodic sampler, and a post-run wear snapshot.
    let mut store = base.fork();
    store.enable_trace(65_536);
    store.enable_sampler(Ns::from_millis(10), 4_096);
    run_timed(&mut store, &driver, saturated as f64, warmup, txns, 42).expect("timed run");
    let wear = store.engine().segment_report();
    let series = store.time_series().expect("sampler enabled");
    let extras = [
        ("time_series", time_series_json(series)),
        ("trace_tail", trace_json(store.trace(), 64)),
    ];
    let mut points = outcome.points.clone();
    if let Some((_, metrics)) = points.last_mut() {
        metrics.push(("wear_spread_cycles", wear.wear_spread() as f64));
        metrics.push(("wear_mean_cycles", wear.mean_erase_cycles));
        metrics.push(("trace_events", store.trace().total_emitted() as f64));
    }
    match write_report_full(
        "ext_observability",
        outcome.jobs,
        outcome.wall_seconds,
        &points,
        &extras,
    ) {
        Ok(path) => eprintln!("  report: {}", path.display()),
        Err(e) => eprintln!("  warning: could not write report: {e}"),
    }

    let mut table = Table::new(&[
        "offered TPS",
        "read p50",
        "read p95",
        "read p99",
        "read p999",
        "write p50",
        "write p95",
        "write p99",
        "write p999",
        "write mean",
        "write max",
        "achieved TPS",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Extension (observability)",
        "latency percentiles vs transaction request rate (TPC-A)",
        &table,
    );
    println!();
    println!(
        "saturated point ({saturated} TPS): wear spread {} cycles (mean {:.1}), \
         {} trace events, {} sampler windows",
        wear.wear_spread(),
        wear.mean_erase_cycles,
        store.trace().total_emitted(),
        series.rows().len(),
    );
}

fn percentile_key(series: &str, q: &str) -> &'static str {
    match (series, q) {
        ("read", "p50") => "read_p50_ns",
        ("read", "p95") => "read_p95_ns",
        ("read", "p99") => "read_p99_ns",
        ("read", "p999") => "read_p999_ns",
        ("write", "p50") => "write_p50_ns",
        ("write", "p95") => "write_p95_ns",
        ("write", "p99") => "write_p99_ns",
        ("write", "p999") => "write_p999_ns",
        _ => unreachable!("known percentile keys"),
    }
}
