//! Figure 6: cleaning costs for various Flash utilizations.
//!
//! The analytic curve is `u/(1-u)` program operations per reclaimed page
//! (a segment at utilization `u` must copy `u·N` live pages to reclaim
//! `(1-u)·N`). The paper caps the array at 80 % utilization, where the
//! naive per-segment cost is 4. The measured column drives a FIFO cleaner
//! with uniform traffic at each utilization: the FIFO ordering lets
//! segments decay below the average utilization before cleaning, so the
//! measured cost sits *below* the naive curve while preserving its shape
//! (compare the §4.2 discussion).

use envy_bench::{arg_u64, emit, quick_mode, PointResult, SweepSpec};
use envy_core::PolicyKind;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::CleaningStudy;

fn main() {
    let pps = if quick_mode() { 128 } else { 256 };
    let segments = arg_u64("segments", 64) as u32;
    let utils = vec![10u32, 20, 30, 40, 50, 60, 70, 80, 90, 95];
    let outcome = SweepSpec::new("fig06_cleaning_cost", utils).run(|_, &util_pct| {
        let u = f64::from(util_pct) / 100.0;
        let analytic = u / (1.0 - u);
        let mut study = CleaningStudy::sized(segments, pps, PolicyKind::Fifo, (50, 50));
        study.utilization = u;
        let out = study.run().expect("study must run");
        PointResult::row(
            format!("{util_pct}%"),
            vec![
                format!("{util_pct}%"),
                fmt_f64(analytic),
                fmt_f64(out.cleaning_cost),
            ],
        )
        .metric("utilization", u)
        .metric("analytic_cost", analytic)
        .metric("measured_cost", out.cleaning_cost)
    });
    let mut table = Table::new(&["utilization", "analytic u/(1-u)", "measured FIFO uniform"]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Figure 6",
        "cleaning cost vs flash array utilization",
        &table,
    );
}
