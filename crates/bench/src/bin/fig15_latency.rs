//! Figure 15: I/O latency for increasing request rates.
//!
//! Average read and write latencies stay nearly constant (the paper:
//! ~180 ns reads, ~200 ns writes) until the request rate approaches the
//! system's maximum throughput; past saturation, writes must wait for
//! buffer slots — one flush program plus its share of cleaning — and the
//! average write latency jumps by more than an order of magnitude while
//! reads stay fast.

use envy_bench::{arg_u64, emit, quick_mode, timed_system, PointResult, SweepSpec};
use envy_sim::report::Table;
use envy_sim::time::Ns;
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 8_000 } else { 30_000 });
    let warmup = txns / 10;
    // Build, prefill and churn the baseline once; every rate forks it.
    let (base, driver) = timed_system(0.8);
    let rates = vec![
        5_000u64, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000,
    ];
    let outcome = SweepSpec::new("fig15_latency", rates).run(|_, &rate| {
        let mut store = base.fork();
        let result =
            run_timed(&mut store, &driver, rate as f64, warmup, txns, 42).expect("timed run");
        PointResult::row(
            format!("{rate} TPS"),
            vec![
                rate.to_string(),
                format_latency(result.read_latency),
                format_latency(result.write_latency),
                format!("{:.0}", result.achieved_tps),
            ],
        )
        .metric("offered_tps", rate as f64)
        .metric("read_latency_ns", result.read_latency.as_nanos() as f64)
        .metric("write_latency_ns", result.write_latency.as_nanos() as f64)
        .metric("achieved_tps", result.achieved_tps)
    });
    let mut table = Table::new(&[
        "offered TPS",
        "read latency",
        "write latency",
        "achieved TPS",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Figure 15",
        "average I/O latency vs transaction request rate (TPC-A)",
        &table,
    );
}

fn format_latency(l: Ns) -> String {
    l.to_string()
}
