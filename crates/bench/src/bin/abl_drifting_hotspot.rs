//! Ablation: a drifting hot spot.
//!
//! The paper evaluates locality gathering on *stationary* bimodal
//! distributions (§4.3), where the initial sequential layout already
//! groups hot pages. This ablation moves the hot region across the
//! logical space mid-run and measures how each policy's cleaning cost
//! recovers — testing the adaptive part of the algorithm (frequency
//! estimates, redistribution) rather than the initial placement.

use envy_bench::{emit, quick_mode, PointResult, SweepSpec};
use envy_core::{EnvyConfig, EnvyStore, PolicyKind};
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;

/// 10/90 bimodal with a configurable hot-region start.
fn sample(rng: &mut Rng, n: u64, hot_start: u64) -> u64 {
    let hot_len = n / 10;
    if rng.chance(0.9) {
        (hot_start + rng.below(hot_len)) % n
    } else {
        rng.below(n)
    }
}

fn run(policy: PolicyKind, writes: u64) -> (f64, f64, f64) {
    let config = EnvyConfig::scaled(8, 64, 256, 256)
        .with_store_data(false)
        .with_policy(policy);
    let mut store = EnvyStore::new(config).expect("valid config");
    store.prefill().expect("prefill");
    let n = store.config().logical_pages;
    let mut rng = Rng::seed_from(23);
    let mut cost_between = |store: &mut EnvyStore, hot: u64, w: u64| {
        let f0 = store.stats().pages_flushed.get();
        let c0 = store.stats().clean_programs.get();
        for _ in 0..w {
            store
                .write(sample(&mut rng, n, hot) * 256, &[0])
                .expect("write");
        }
        let df = store.stats().pages_flushed.get() - f0;
        let dc = store.stats().clean_programs.get() - c0;
        if df == 0 {
            0.0
        } else {
            dc as f64 / df as f64
        }
    };
    // Phase 1: hot spot at the front (warm + measure).
    cost_between(&mut store, 0, writes);
    let settled = cost_between(&mut store, 0, writes / 2);
    // Phase 2: hot spot jumps to the middle of the cold region; measure
    // immediately after the jump (transient) and after re-converging.
    let jump = n / 2;
    let transient = cost_between(&mut store, jump, writes / 2);
    cost_between(&mut store, jump, writes);
    let recovered = cost_between(&mut store, jump, writes / 2);
    (settled, transient, recovered)
}

fn main() {
    let writes: u64 = if quick_mode() { 200_000 } else { 500_000 };
    let policies: Vec<(&'static str, PolicyKind)> = vec![
        ("greedy", PolicyKind::Greedy),
        ("locality-gathering", PolicyKind::LocalityGathering),
        (
            "hybrid-8",
            PolicyKind::Hybrid {
                segments_per_partition: 8,
            },
        ),
    ];
    let outcome = SweepSpec::new("abl_drifting_hotspot", policies).run(|_, &(name, policy)| {
        let (settled, transient, recovered) = run(policy, writes);
        PointResult::row(
            name,
            vec![
                name.to_string(),
                fmt_f64(settled),
                fmt_f64(transient),
                fmt_f64(recovered),
            ],
        )
        .metric("settled_cost", settled)
        .metric("transient_cost", transient)
        .metric("recovered_cost", recovered)
    });
    let mut table = Table::new(&[
        "policy",
        "settled cost",
        "right after hot-spot jump",
        "after re-convergence",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Ablation: drifting hot spot",
        "10/90 writes; the hot region jumps to the middle of the cold data mid-run",
        &table,
    );
}
