//! Ablation: the two mechanisms inside locality gathering (§4.3).
//!
//! "Care must be taken to prevent flushes from the SRAM write buffer from
//! destroying locality. When a page is placed into the SRAM buffer, we
//! record which segment it comes from. When it is flushed, it is written
//! back to the same segment." — flush-to-origin. The second mechanism is
//! the free-space redistribution that equalizes (frequency × cost).
//!
//! This sweep disables each in turn under a skewed write stream.

use envy_bench::{emit, locality_label, quick_mode, PointResult, SweepSpec};
use envy_core::{EnvyConfig, EnvyStore, PolicyKind};
use envy_sim::dist::Bimodal;
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;

fn run(locality: (u32, u32), redistribute: bool, to_origin: bool, writes: u64) -> f64 {
    let mut config = EnvyConfig::scaled(8, 64, 256, 256)
        .with_store_data(false)
        .with_policy(PolicyKind::LocalityGathering);
    config.lg_redistribute = redistribute;
    config.lg_flush_to_origin = to_origin;
    let mut store = EnvyStore::new(config).expect("valid config");
    store.prefill().expect("prefill");
    let dist = Bimodal::from_spec(store.config().logical_pages, locality.0, locality.1);
    let mut rng = Rng::seed_from(17);
    for _ in 0..writes / 2 {
        store
            .write(dist.sample(&mut rng) * 256, &[0])
            .expect("write");
    }
    let f0 = store.stats().pages_flushed.get();
    let c0 = store.stats().clean_programs.get();
    for _ in 0..writes / 2 {
        store
            .write(dist.sample(&mut rng) * 256, &[0])
            .expect("write");
    }
    let flushed = store.stats().pages_flushed.get() - f0;
    let programs = store.stats().clean_programs.get() - c0;
    programs as f64 / flushed as f64
}

fn main() {
    let writes: u64 = if quick_mode() { 300_000 } else { 800_000 };
    let localities = vec![(50u32, 50u32), (20, 80), (5, 95)];
    let outcome = SweepSpec::new("abl_lg_mechanisms", localities).run(|_, &locality| {
        let full = run(locality, true, true, writes);
        let no_redistribution = run(locality, false, true, writes);
        let no_flush_to_origin = run(locality, true, false, writes);
        let neither = run(locality, false, false, writes);
        PointResult::row(
            locality_label(locality),
            vec![
                locality_label(locality),
                fmt_f64(full),
                fmt_f64(no_redistribution),
                fmt_f64(no_flush_to_origin),
                fmt_f64(neither),
            ],
        )
        .metric("full_lg", full)
        .metric("no_redistribution", no_redistribution)
        .metric("no_flush_to_origin", no_flush_to_origin)
        .metric("neither", neither)
    });
    let mut table = Table::new(&[
        "locality",
        "full LG",
        "no redistribution",
        "no flush-to-origin",
        "neither",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Ablation: locality-gathering mechanisms",
        "cleaning cost with redistribution / flush-to-origin disabled (§4.3)",
        &table,
    );
}
