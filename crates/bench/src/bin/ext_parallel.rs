//! §6 hardware extension: parallel program/erase operations.
//!
//! "An obvious example is to perform multiple program and erase
//! operations at the same time to different banks of Flash memory. …
//! With the cleaner executing 4 to 8 concurrent programming operations,
//! the average time to flush a page can drop from 4µs to less than 1µs."
//!
//! This sweep runs the saturated TPC-A workload with 1–8 concurrent
//! background operations and reports achieved throughput and the
//! effective per-flush background time.

use envy_bench::{arg_u64, emit, quick_mode, timed_system};
use envy_sim::report::{fmt_f64, Table};
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 8_000 } else { 30_000 });
    let rate = arg_u64("rate", 50_000) as f64; // past base-system saturation
    let mut table = Table::new(&[
        "parallel ops",
        "achieved TPS",
        "effective us/flush",
        "write latency",
    ]);
    for parallel in [1u32, 2, 4, 8] {
        let (store0, driver) = timed_system(0.8);
        let mut config = store0.config().clone().with_parallel_ops(parallel);
        config.store_data = false;
        drop(store0);
        // Rebuild with the parallel setting (timed_system builds at 1).
        let mut store = envy_core::EnvyStore::new(config).expect("config valid");
        store.prefill().expect("prefill");
        // Quick churn to steady state.
        let total = store.config().geometry.total_pages();
        let free = total - store.config().logical_pages;
        let mut rng = envy_sim::rng::Rng::seed_from(0xC0FFEE);
        let accounts = driver.layout().scale.accounts();
        for _ in 0..free * 2 {
            let id = rng.below(accounts);
            store
                .write(driver.layout().account_addr(id), &[0u8; 8])
                .expect("churn");
        }
        let result =
            run_timed(&mut store, &driver, rate, txns / 10, txns, 42).expect("timed run");
        let stats = store.stats();
        let flush_time_us = stats.time_flush.as_micros_f64() / stats.pages_flushed.get() as f64;
        table.row(&[
            parallel.to_string(),
            fmt_f64(result.achieved_tps),
            fmt_f64(flush_time_us),
            result.write_latency.to_string(),
        ]);
        eprintln!("  done parallel={parallel}");
    }
    emit(
        "Section 6",
        "parallel program/erase extension at saturating load (80% utilization)",
        &table,
    );
}
