//! §6 hardware extension: parallel program/erase operations.
//!
//! "An obvious example is to perform multiple program and erase
//! operations at the same time to different banks of Flash memory. …
//! With the cleaner executing 4 to 8 concurrent programming operations,
//! the average time to flush a page can drop from 4µs to less than 1µs."
//!
//! This sweep runs the saturated TPC-A workload with 1–8 concurrent
//! background operations and reports achieved throughput and the
//! effective per-flush background time.

use envy_bench::{
    arg_u64, churn_to_steady_state, emit, quick_mode, timed_config, timed_driver, PointResult,
    SweepSpec,
};
use envy_sim::report::{fmt_f64, Table};
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 8_000 } else { 30_000 });
    let rate = arg_u64("rate", 50_000) as f64; // past base-system saturation
    let levels = vec![1u32, 2, 4, 8];
    let outcome = SweepSpec::new("ext_parallel", levels).run(|_, &parallel| {
        // The parallel-ops setting changes the device config, so each
        // point builds (and churns) its own system.
        let mut config = timed_config(0.8).with_parallel_ops(parallel);
        config.store_data = false;
        let driver = timed_driver(&config);
        let mut store = envy_core::EnvyStore::new(config).expect("config valid");
        store.prefill().expect("prefill");
        churn_to_steady_state(&mut store, &driver);
        let result = run_timed(&mut store, &driver, rate, txns / 10, txns, 42).expect("timed run");
        let stats = store.stats();
        let flush_time_us = stats.time_flush.as_micros_f64() / stats.pages_flushed.get() as f64;
        PointResult::row(
            format!("parallel={parallel}"),
            vec![
                parallel.to_string(),
                fmt_f64(result.achieved_tps),
                fmt_f64(flush_time_us),
                result.write_latency.to_string(),
            ],
        )
        .metric("parallel_ops", f64::from(parallel))
        .metric("achieved_tps", result.achieved_tps)
        .metric("effective_us_per_flush", flush_time_us)
        .metric("write_latency_ns", result.write_latency.as_nanos() as f64)
    });
    let mut table = Table::new(&[
        "parallel ops",
        "achieved TPS",
        "effective us/flush",
        "write latency",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Section 6",
        "parallel program/erase extension at saturating load (80% utilization)",
        &table,
    );
}
