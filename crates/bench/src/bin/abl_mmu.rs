//! Ablation: the MMU mapping cache (§5.1).
//!
//! "A memory-management unit (MMU) acts as a cache of recently used
//! mappings to make this translation faster." Without it, every host
//! access pays an extra SRAM page-table lookup. The sweep runs TPC-A
//! with different cache sizes and reports hit rate and mean read latency.

use envy_bench::{arg_u64, emit, quick_mode, timed_config, timed_driver, PointResult, SweepSpec};
use envy_core::EnvyStore;
use envy_sim::report::Table;
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 6_000 } else { 20_000 });
    let sizes = vec![0usize, 64, 512, 4096, 32_768];
    let outcome = SweepSpec::new("abl_mmu", sizes).run(|_, &entries| {
        // The cache size changes the device config, so each point builds
        // its own system; `run_timed`'s warmup window covers settling.
        let config = timed_config(0.8).with_mmu_entries(entries);
        let driver = timed_driver(&config);
        let mut store = EnvyStore::new(config).expect("valid config");
        store.prefill().expect("prefill");
        let result =
            run_timed(&mut store, &driver, 10_000.0, txns / 10, txns, 42).expect("timed run");
        let hit_rate = store.engine().mmu().hit_rate();
        PointResult::row(
            format!("mmu={entries}"),
            vec![
                entries.to_string(),
                format!("{:.1}%", hit_rate * 100.0),
                result.read_latency.to_string(),
                result.write_latency.to_string(),
            ],
        )
        .metric("mmu_entries", entries as f64)
        .metric("hit_rate", hit_rate)
        .metric("read_latency_ns", result.read_latency.as_nanos() as f64)
        .metric("write_latency_ns", result.write_latency.as_nanos() as f64)
    });
    let mut table = Table::new(&["mmu entries", "hit rate", "read latency", "write latency"]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Ablation: MMU mapping-cache size",
        "TPC-A at 10k TPS; a miss costs one SRAM page-table access (§5.1)",
        &table,
    );
}
