//! Ablation: the MMU mapping cache (§5.1).
//!
//! "A memory-management unit (MMU) acts as a cache of recently used
//! mappings to make this translation faster." Without it, every host
//! access pays an extra SRAM page-table lookup. The sweep runs TPC-A
//! with different cache sizes and reports hit rate and mean read latency.

use envy_bench::{arg_u64, emit, quick_mode, timed_system};
use envy_core::EnvyStore;
use envy_sim::report::Table;
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 6_000 } else { 20_000 });
    let mut table = Table::new(&["mmu entries", "hit rate", "read latency", "write latency"]);
    for entries in [0usize, 64, 512, 4096, 32_768] {
        let (store0, driver) = timed_system(0.8);
        let config = store0.config().clone().with_mmu_entries(entries);
        drop(store0);
        let mut store = EnvyStore::new(config).expect("valid config");
        store.prefill().expect("prefill");
        let result = run_timed(&mut store, &driver, 10_000.0, txns / 10, txns, 42)
            .expect("timed run");
        table.row(&[
            entries.to_string(),
            format!("{:.1}%", store.engine().mmu().hit_rate() * 100.0),
            result.read_latency.to_string(),
            result.write_latency.to_string(),
        ]);
        eprintln!("  done mmu={entries}");
    }
    emit(
        "Ablation: MMU mapping-cache size",
        "TPC-A at 10k TPS; a miss costs one SRAM page-table access (§5.1)",
        &table,
    );
}
