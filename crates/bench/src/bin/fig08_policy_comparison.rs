//! Figure 8: comparison of cleaning algorithms.
//!
//! Cleaning cost vs locality of reference (50/50 → 5/95) for the greedy
//! method, locality gathering, and the hybrid approach with 16-segment
//! partitions, on a 128-segment array at 80 % utilization.
//!
//! Paper shape: greedy is cheapest at uniform but degrades as locality
//! rises; locality gathering is pinned at cost 4 under uniform traffic
//! and improves with locality; the hybrid tracks greedy at uniform and
//! locality gathering at high skew, beating pure LG everywhere.

use envy_bench::{emit, locality_label, quick_mode, PointResult, SweepSpec, LOCALITIES};
use envy_core::PolicyKind;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::CleaningStudy;

fn main() {
    let pps = if quick_mode() { 128 } else { 512 };
    let policies: [(&'static str, PolicyKind); 3] = [
        ("greedy", PolicyKind::Greedy),
        ("locality-gathering", PolicyKind::LocalityGathering),
        (
            "hybrid-16",
            PolicyKind::Hybrid {
                segments_per_partition: 16,
            },
        ),
    ];
    let outcome =
        SweepSpec::new("fig08_policy_comparison", LOCALITIES.to_vec()).run(|_, &locality| {
            let mut row = vec![locality_label(locality)];
            let mut result = PointResult::row(locality_label(locality), Vec::new());
            for (name, policy) in policies {
                let mut study = CleaningStudy::sized(128, pps, policy, locality);
                // Locality gathering's frequency estimates converge slowly
                // across 127 single-segment partitions; give it extra
                // warmup.
                if policy == PolicyKind::LocalityGathering && !quick_mode() {
                    study.warmup_writes *= 3;
                }
                let out = study.run().expect("study must run");
                row.push(fmt_f64(out.cleaning_cost));
                result.metrics.push((name, out.cleaning_cost));
            }
            result.rows = vec![row];
            result
        });
    let mut table = Table::new(&["locality", "greedy", "locality-gathering", "hybrid-16"]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Figure 8",
        "cleaning cost vs locality of reference, 128 segments, 80% utilization",
        &table,
    );
}
