//! Figure 13: throughput for increasing request rates.
//!
//! TPC-A transactions arrive with exponential inter-arrival times at
//! increasing offered rates; achieved throughput tracks the offered rate
//! until the cleaning system saturates (the paper's 2 GB system peaks
//! around 30 000 TPS), then plateaus.

use envy_bench::{arg_u64, emit, quick_mode, timed_system};
use envy_sim::report::{fmt_f64, Table};
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 10_000 } else { 40_000 });
    let warmup = txns / 10;
    let mut table = Table::new(&[
        "offered TPS",
        "achieved TPS",
        "flushes/s",
        "cleaning cost",
    ]);
    for rate in [5_000u64, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000] {
        let (mut store, driver) = timed_system(0.8);
        let result = run_timed(&mut store, &driver, rate as f64, warmup, txns, 42)
            .expect("timed run");
        table.row(&[
            rate.to_string(),
            fmt_f64(result.achieved_tps),
            fmt_f64(result.flushes_per_sec),
            fmt_f64(result.cleaning_cost),
        ]);
        eprintln!("  done {rate} TPS");
    }
    emit(
        "Figure 13",
        "achieved throughput vs transaction request rate (TPC-A)",
        &table,
    );
}
