//! Figure 13: throughput for increasing request rates.
//!
//! TPC-A transactions arrive with exponential inter-arrival times at
//! increasing offered rates; achieved throughput tracks the offered rate
//! until the cleaning system saturates (the paper's 2 GB system peaks
//! around 30 000 TPS), then plateaus.

use envy_bench::{arg_u64, emit, quick_mode, timed_system, PointResult, SweepSpec};
use envy_sim::report::{fmt_f64, Table};
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 10_000 } else { 40_000 });
    let warmup = txns / 10;
    // Build, prefill and churn the baseline once; every rate forks it.
    let (base, driver) = timed_system(0.8);
    let rates = vec![
        5_000u64, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000,
    ];
    let outcome = SweepSpec::new("fig13_throughput", rates).run(|_, &rate| {
        let mut store = base.fork();
        let result =
            run_timed(&mut store, &driver, rate as f64, warmup, txns, 42).expect("timed run");
        PointResult::row(
            format!("{rate} TPS"),
            vec![
                rate.to_string(),
                fmt_f64(result.achieved_tps),
                fmt_f64(result.flushes_per_sec),
                fmt_f64(result.cleaning_cost),
            ],
        )
        .metric("offered_tps", rate as f64)
        .metric("achieved_tps", result.achieved_tps)
        .metric("flushes_per_sec", result.flushes_per_sec)
        .metric("cleaning_cost", result.cleaning_cost)
    });
    let mut table = Table::new(&["offered TPS", "achieved TPS", "flushes/s", "cleaning cost"]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Figure 13",
        "achieved throughput vs transaction request rate (TPC-A)",
        &table,
    );
}
