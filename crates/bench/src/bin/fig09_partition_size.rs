//! Figure 9: cleaning cost vs partition size for the hybrid approach.
//!
//! 128-segment array, partition sizes 1 → 128 segments. Size 1 is pure
//! locality gathering; size 128 is pure FIFO. The paper finds the best
//! overall cost at 16 segments per partition.

use envy_bench::{emit, locality_label, quick_mode};
use envy_core::PolicyKind;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::CleaningStudy;

fn main() {
    let pps = if quick_mode() { 128 } else { 512 };
    let localities = [(50u32, 50u32), (30, 70), (20, 80), (10, 90), (5, 95)];
    let headers: Vec<String> = std::iter::once("segs/partition".to_string())
        .chain(localities.iter().map(|&l| locality_label(l)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for k in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let mut row = vec![k.to_string()];
        for &locality in &localities {
            let study = CleaningStudy::sized(
                128,
                pps,
                PolicyKind::Hybrid { segments_per_partition: k },
                locality,
            );
            let out = study.run().expect("study must run");
            row.push(fmt_f64(out.cleaning_cost));
        }
        table.row(&row);
        eprintln!("  done k={k}");
    }
    emit(
        "Figure 9",
        "hybrid cleaning cost vs segments per partition, 128 segments",
        &table,
    );
}
