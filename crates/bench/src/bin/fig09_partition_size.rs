//! Figure 9: cleaning cost vs partition size for the hybrid approach.
//!
//! 128-segment array, partition sizes 1 → 128 segments. Size 1 is pure
//! locality gathering; size 128 is pure FIFO. The paper finds the best
//! overall cost at 16 segments per partition.

use envy_bench::{emit, locality_label, quick_mode, PointResult, SweepSpec};
use envy_core::PolicyKind;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::CleaningStudy;

const LOCALITIES: [(u32, u32); 5] = [(50, 50), (30, 70), (20, 80), (10, 90), (5, 95)];
const METRIC_NAMES: [&str; 5] = [
    "cost_50_50",
    "cost_30_70",
    "cost_20_80",
    "cost_10_90",
    "cost_5_95",
];

fn main() {
    let pps = if quick_mode() { 128 } else { 512 };
    let sizes = vec![1u32, 2, 4, 8, 16, 32, 64, 128];
    let outcome = SweepSpec::new("fig09_partition_size", sizes).run(|_, &k| {
        let mut row = vec![k.to_string()];
        let mut result = PointResult::row(format!("k={k}"), Vec::new());
        for (&locality, name) in LOCALITIES.iter().zip(METRIC_NAMES) {
            let study = CleaningStudy::sized(
                128,
                pps,
                PolicyKind::Hybrid {
                    segments_per_partition: k,
                },
                locality,
            );
            let out = study.run().expect("study must run");
            row.push(fmt_f64(out.cleaning_cost));
            result.metrics.push((name, out.cleaning_cost));
        }
        result.rows = vec![row];
        result
    });
    let headers: Vec<String> = std::iter::once("segs/partition".to_string())
        .chain(LOCALITIES.iter().map(|&l| locality_label(l)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Figure 9",
        "hybrid cleaning cost vs segments per partition, 128 segments",
        &table,
    );
}
