//! Internal calibration: sensitivity of the saturation point to the
//! suspend/resume back-off ("waits a few microseconds", §3.4).

use envy_bench::{
    churn_to_steady_state, quick_mode, timed_config, timed_driver, PointResult, SweepSpec,
};
use envy_sim::time::Ns;
use envy_workload::run_timed;

fn main() {
    let txns = if quick_mode() { 30_000 } else { 60_000 };
    let gaps = vec![0u64, 1, 2, 4];
    let outcome = SweepSpec::new("calib_saturation", gaps).run(|_, &gap_us| {
        // The resume gap changes the device config, so each point builds
        // (and churns) its own system.
        let mut config = timed_config(0.8);
        config.resume_gap = Ns::from_micros(gap_us);
        config.store_data = false;
        let driver = timed_driver(&config);
        let mut store = envy_core::EnvyStore::new(config).unwrap();
        store.prefill().unwrap();
        churn_to_steady_state(&mut store, &driver);
        let r = run_timed(&mut store, &driver, 60_000.0, txns / 10, txns, 42).unwrap();
        let suspensions_per_txn = store.stats().suspensions.get() as f64 / (txns as f64 * 1.1);
        PointResult::row(
            format!("gap={gap_us}us"),
            vec![format!(
                "resume_gap={gap_us}us  peak TPS={:.0}  suspensions/txn={:.1}",
                r.achieved_tps, suspensions_per_txn
            )],
        )
        .metric("resume_gap_us", gap_us as f64)
        .metric("peak_tps", r.achieved_tps)
        .metric("suspensions_per_txn", suspensions_per_txn)
    });
    for row in &outcome.rows {
        println!("{}", row[0]);
    }
}
