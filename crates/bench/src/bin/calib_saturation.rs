//! Internal calibration: sensitivity of the saturation point to the
//! suspend/resume back-off ("waits a few microseconds", §3.4).

use envy_bench::{quick_mode, timed_system};
use envy_sim::time::Ns;
use envy_workload::run_timed;

fn main() {
    let txns = if quick_mode() { 30_000 } else { 60_000 };
    for gap_us in [0u64, 1, 2, 4] {
        let (store0, driver) = timed_system(0.8);
        let mut config = store0.config().clone();
        drop(store0);
        config.resume_gap = Ns::from_micros(gap_us);
        config.store_data = false;
        let mut store = envy_core::EnvyStore::new(config).unwrap();
        store.prefill().unwrap();
        let total = store.config().geometry.total_pages();
        let free = total - store.config().logical_pages;
        let mut rng = envy_sim::rng::Rng::seed_from(0xC0FFEE);
        let accounts = driver.layout().scale.accounts();
        for _ in 0..free * 2 {
            let id = rng.below(accounts);
            store.write(driver.layout().account_addr(id), &[0u8; 8]).unwrap();
        }
        let r = run_timed(&mut store, &driver, 60_000.0, txns / 10, txns, 42).unwrap();
        println!(
            "resume_gap={gap_us}us  peak TPS={:.0}  suspensions/txn={:.1}",
            r.achieved_tps,
            store.stats().suspensions.get() as f64 / (txns as f64 * 1.1)
        );
    }
}
