//! §5.5 estimated eNVy lifetime.
//!
//! Paper: at 10 000 TPS the simulator reports 10 376 pages flushed per
//! second at a cleaning cost of 1.97, giving
//! `2 GB/256 B × 1M cycles / (10 376 × 2.97 × 86 400)` = 3 151 days
//! (8.63 years) of continuous use.

use envy_bench::{arg_u64, emit, quick_mode, timed_system};
use envy_core::lifetime_days;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::run_timed;

fn main() {
    let start = std::time::Instant::now();
    let txns = arg_u64("txns", if quick_mode() { 10_000 } else { 40_000 });
    let rate = arg_u64("rate", 10_000) as f64;
    let (mut store, driver) = timed_system(0.8);
    let result = run_timed(&mut store, &driver, rate, txns / 10, txns, 42).expect("timed run");

    // Lifetime at the *paper's* full scale: what matters per transaction
    // is flushes/txn and cleaning cost, which are scale-free; project
    // them onto the 2 GB array exactly as §5.5 does.
    let paper_pages = 2u64 * 1024 * 1024 * 1024 / 256;
    let flushes_per_txn = result.flushes_per_sec / result.achieved_tps;
    let projected_flush_rate = flushes_per_txn * rate;
    let days = lifetime_days(
        paper_pages,
        1_000_000,
        projected_flush_rate,
        result.cleaning_cost,
    );

    let mut table = Table::new(&["quantity", "measured", "paper"]);
    table.row(&[
        "pages flushed/s".into(),
        fmt_f64(projected_flush_rate),
        "10376".into(),
    ]);
    table.row(&[
        "cleaning cost".into(),
        fmt_f64(result.cleaning_cost),
        "1.97".into(),
    ]);
    table.row(&["lifetime (days)".into(), fmt_f64(days), "3151".into()]);
    table.row(&[
        "lifetime (years)".into(),
        fmt_f64(days / 365.25),
        "8.63".into(),
    ]);
    emit(
        "Section 5.5",
        &format!("estimated lifetime at {rate} TPS on the 2 GB array (1M-cycle parts)"),
        &table,
    );
    let points = vec![(
        format!("{rate} TPS"),
        vec![
            ("pages_flushed_per_sec", projected_flush_rate),
            ("cleaning_cost", result.cleaning_cost),
            ("lifetime_days", days),
            ("lifetime_years", days / 365.25),
        ],
    )];
    if let Err(e) = envy_bench::sweep::write_report_raw(
        "lifetime_55",
        1,
        start.elapsed().as_secs_f64(),
        &points,
    ) {
        eprintln!("  warning: could not write report: {e}");
    }
}
