//! Extension: fault injection and crash-recovery characterization.
//!
//! The paper argues (§3.4) that keeping the cleaning state in persistent
//! memory lets the controller "recover quickly after a failure", but
//! reports no recovery measurements. This extension exercises the
//! repository's deterministic fault layer two ways:
//!
//! * **Crash matrix** — for every numbered injection point (flush,
//!   clean, erase, wear swap, transaction commit and rollback) a
//!   workload is driven until the armed power failure fires, then the
//!   store is recovered and the recovery report is tabulated: what
//!   debris each crash class leaves (orphaned programs scavenged, stale
//!   buffer entries dropped, stale shadows released, a clean resumed
//!   from the journal, an in-flight transaction committed or rolled
//!   back all-or-nothing — `docs/TRANSACTIONS.md`).
//! * **Fault-rate sweep** — steady-state churn under increasing injected
//!   `program_error` rates, showing the retry/remap cost surfacing in
//!   [`envy_core::EnvyStats`] and the effect on cleaning cost. Rate 0
//!   arms nothing and is byte-identical to an unfaulted run.
//!
//! See `docs/CRASH_CONSISTENCY.md` for the recovery contract behind the
//! crash matrix.

use envy_bench::{arg_u64, emit, quick_mode, PointResult, SweepSpec};
use envy_core::{
    EnvyConfig, EnvyError, EnvyStore, FaultPlan, InjectionPoint, PolicyKind, RecoveryReport,
};
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;

const PAGE: u64 = 256;

/// One sweep point: a crash-matrix entry or a fault-rate entry.
#[derive(Debug, Clone, Copy)]
enum Point {
    Crash(InjectionPoint),
    Rate(u64), // injected program failures per 10k programs
}

/// Small untimed store with frequent cleaning and wear swaps, so every
/// injection point is reachable quickly.
fn crash_config() -> EnvyConfig {
    EnvyConfig::scaled(2, 8, 32, PAGE as u32)
        .with_policy(PolicyKind::LocalityGathering)
        .with_utilization(0.7)
        .with_buffer_pages(8)
        .with_wear_threshold(5)
}

/// Drive writes and transactions until the armed crash fires; returns
/// the steps taken and the recovery report.
fn crash_point(point: InjectionPoint, max_steps: u64) -> (u64, RecoveryReport) {
    let mut s = EnvyStore::new(crash_config()).expect("config is valid");
    s.prefill().expect("prefill fits");
    let n = s.config().logical_pages;
    s.arm_faults(FaultPlan::crash_at(point, 1));
    let mut rng = Rng::seed_from(0xFA17 ^ point.index() as u64);
    let mut txn: Option<u64> = None;
    let mut txn_seq = 0u64;
    let mut steps = 0;
    for step in 0..max_steps {
        steps = step + 1;
        let phase = step % 37;
        let r = if phase == 0 && txn.is_none() {
            match s.txn_begin() {
                Ok(id) => {
                    txn = Some(id);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if phase == 20 && txn.is_some() {
            // Alternate resolution so both the commit and the rollback
            // injection points are reachable.
            let id = txn.unwrap();
            txn_seq += 1;
            let r = if txn_seq % 2 == 0 {
                s.txn_abort(id)
            } else {
                s.txn_commit(id)
            };
            if r.is_ok() {
                txn = None;
            }
            r
        } else {
            // Hot region with occasional full-range writes (see the
            // wear-leveling test recipe).
            let lp = if step % 8 == 7 {
                rng.below(n)
            } else {
                rng.below(64.min(n))
            };
            s.write(lp * PAGE, &[rng.next_u64() as u8; 4])
        };
        match r {
            Ok(()) => {}
            Err(EnvyError::PowerLoss) => break,
            Err(e) => panic!("unexpected error driving {point:?}: {e}"),
        }
    }
    assert!(s.engine().crash_fired(), "workload never reached {point:?}");
    s.power_failure();
    let report = s.recover().expect("recovery must succeed");
    s.check_invariants().expect("invariants after recovery");
    (steps, report)
}

/// Steady-state churn under an injected program-failure rate (failures
/// per 10k program operations); returns the store for stats readout.
fn rate_run(rate: u64, writes: u64) -> EnvyStore {
    let config = EnvyConfig::scaled(2, 16, 128, PAGE as u32).with_buffer_pages(32);
    let mut s = EnvyStore::new(config).expect("config is valid");
    s.prefill().expect("prefill fits");
    if rate > 0 {
        let period = 10_000 / rate;
        // Cover far more program ops than the churn can issue.
        let schedule = (1..).map(|i| i * period).take_while(|&op| op < writes * 8);
        s.arm_faults(FaultPlan::default().with_program_failures(schedule));
    }
    let n = s.config().logical_pages;
    let mut rng = Rng::seed_from(0x5EED);
    for _ in 0..writes {
        let lp = rng.below(n);
        s.write(lp * PAGE, &[rng.next_u64() as u8; 4])
            .expect("faulted writes are retried, not failed");
    }
    s.check_invariants().expect("invariants after churn");
    s
}

fn main() {
    let quick = quick_mode();
    let max_steps = arg_u64("max-steps", 60_000);
    let writes = arg_u64("writes", if quick { 20_000 } else { 100_000 });
    let rates: &[u64] = &[0, 5, 20, 50, 100];

    let mut points: Vec<Point> = InjectionPoint::ALL
        .iter()
        .copied()
        .map(Point::Crash)
        .collect();
    points.extend(rates.iter().copied().map(Point::Rate));

    let crash_count = InjectionPoint::ALL.len();
    let outcome = SweepSpec::new("ext_fault_recovery", points).run(|_, &point| match point {
        Point::Crash(p) => {
            let (steps, r) = crash_point(p, max_steps);
            let resolution = match (r.txn_completed, r.txn_rolled_back) {
                (Some(_), _) => "committed",
                (_, Some(_)) => "rolled back",
                _ => "-",
            };
            PointResult::row(
                format!("crash:{}", p.label()),
                vec![
                    p.label().to_string(),
                    steps.to_string(),
                    if r.resumed_clean { "yes" } else { "no" }.to_string(),
                    r.scavenged_pages.to_string(),
                    r.dropped_buffer_pages.to_string(),
                    r.released_shadows.to_string(),
                    r.buffered_pages.to_string(),
                    resolution.to_string(),
                ],
            )
            .metric("steps_to_crash", steps as f64)
            .metric("scavenged", r.scavenged_pages as f64)
            .metric("dropped_buffer", r.dropped_buffer_pages as f64)
            .metric("released_shadows", r.released_shadows as f64)
            .metric("resumed_clean", r.resumed_clean as u64 as f64)
            .metric(
                "txn_resolved",
                (r.txn_completed.is_some() || r.txn_rolled_back.is_some()) as u64 as f64,
            )
        }
        Point::Rate(rate) => {
            let s = rate_run(rate, writes);
            let st = s.stats();
            let flushed = st.pages_flushed.get().max(1);
            let cost = st.clean_programs.get() as f64 / flushed as f64;
            PointResult::row(
                format!("rate:{rate}"),
                vec![
                    rate.to_string(),
                    st.program_faults.get().to_string(),
                    st.program_retries.get().to_string(),
                    st.program_remaps.get().to_string(),
                    st.cleans.get().to_string(),
                    fmt_f64(cost),
                ],
            )
            .metric("program_faults", st.program_faults.get() as f64)
            .metric("program_retries", st.program_retries.get() as f64)
            .metric("program_remaps", st.program_remaps.get() as f64)
            .metric("cleaning_cost", cost)
        }
    });

    let recovered = crash_count; // crash_point panics on any failure
    println!("== Extension: fault injection and crash recovery ==");
    println!();
    println!("crash matrix: {recovered}/{crash_count} injection points crashed and recovered");
    println!();

    let mut crash_table = Table::new(&[
        "injection point",
        "steps",
        "resumed clean",
        "scavenged",
        "dropped buf",
        "released shadows",
        "buffered",
        "txn at crash",
    ]);
    for row in &outcome.rows[..crash_count] {
        crash_table.row(row);
    }
    emit(
        "Crash matrix",
        "recovery debris per injection point (docs/CRASH_CONSISTENCY.md)",
        &crash_table,
    );

    let mut rate_table = Table::new(&[
        "faults/10k programs",
        "faults",
        "retries",
        "remaps",
        "cleans",
        "clean programs per flush",
    ]);
    for row in &outcome.rows[crash_count..] {
        rate_table.row(row);
    }
    emit(
        "Fault-rate sweep",
        "retry/remap cost of injected program failures",
        &rate_table,
    );
}
