//! Extension: fault injection and crash-recovery characterization.
//!
//! The paper argues (§3.4) that keeping the cleaning state in persistent
//! memory lets the controller "recover quickly after a failure", but
//! reports no recovery measurements. This extension exercises the
//! repository's deterministic fault layer two ways:
//!
//! * **Crash matrix** — for every numbered injection point (flush,
//!   clean, erase, wear swap, transaction commit and rollback) a
//!   workload is driven until the armed power failure fires, then the
//!   store is recovered and the recovery report is tabulated: what
//!   debris each crash class leaves (orphaned programs scavenged, stale
//!   buffer entries dropped, stale shadows released, a clean resumed
//!   from the journal, an in-flight transaction committed or rolled
//!   back all-or-nothing — `docs/TRANSACTIONS.md`).
//! * **Fault-rate sweep** — steady-state churn under increasing injected
//!   `program_error` rates, showing the retry/remap cost surfacing in
//!   [`envy_core::EnvyStats`] and the effect on cleaning cost. Rate 0
//!   arms nothing and is byte-identical to an unfaulted run.
//!
//! See `docs/CRASH_CONSISTENCY.md` for the recovery contract behind the
//! crash matrix.

use envy_bench::{arg_u64, emit, quick_mode, PointResult, SweepSpec};
use envy_core::{
    EnvyConfig, EnvyError, EnvyStore, FaultPlan, InjectionPoint, PolicyKind, RecoveryReport,
};
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;

const PAGE: u64 = 256;

/// One sweep point: a crash-matrix entry or a fault-rate entry.
#[derive(Debug, Clone, Copy)]
enum Point {
    Crash(InjectionPoint),
    Rate(u64), // injected program failures per 10k programs
}

/// Small untimed store with frequent cleaning and wear swaps, so every
/// injection point is reachable quickly. Two transaction slots, so the
/// crash matrix covers interleaved in-flight transactions.
fn crash_config() -> EnvyConfig {
    EnvyConfig::scaled(2, 8, 32, PAGE as u32)
        .with_policy(PolicyKind::LocalityGathering)
        .with_utilization(0.7)
        .with_buffer_pages(8)
        .with_wear_threshold(5)
        .with_txn_slots(2)
}

/// Drive writes and transactions until the armed crash fires; returns
/// the steps taken and the recovery report. Up to two transactions are
/// kept in flight with transactional writes interleaved between them
/// and with plain writes, so shadow-page cleaning, multi-record commit
/// journaling, and multi-transaction recovery are all reachable.
fn crash_point(point: InjectionPoint, max_steps: u64) -> (u64, RecoveryReport) {
    let mut s = EnvyStore::new(crash_config()).expect("config is valid");
    s.prefill().expect("prefill fits");
    let n = s.config().logical_pages;
    s.arm_faults(FaultPlan::crash_at(point, 1));
    let mut rng = Rng::seed_from(0xFA17 ^ point.index() as u64);
    let mut open: Vec<u64> = Vec::new();
    let mut txn_seq = 0u64;
    let mut steps = 0;
    for step in 0..max_steps {
        steps = step + 1;
        let phase = step % 37;
        let r = if (phase == 0 || phase == 7) && open.len() < 2 {
            match s.txn_begin() {
                Ok(id) => {
                    open.push(id);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if phase == 20 && !open.is_empty() {
            // Alternate resolution so both the commit and the rollback
            // injection points are reachable; the oldest transaction
            // resolves while the younger one stays in flight.
            let id = open.remove(0);
            txn_seq += 1;
            if txn_seq.is_multiple_of(2) {
                s.txn_abort(id)
            } else {
                s.txn_commit(id)
            }
        } else {
            // Hot region with occasional full-range writes (see the
            // wear-leveling test recipe), spread over both open write
            // sets and the plain path.
            let lp = if step % 8 == 7 {
                rng.below(n)
            } else {
                rng.below(64.min(n))
            };
            let data = [rng.next_u64() as u8; 4];
            // Transactional writes stay inside a narrow region: every
            // distinct page in a write set pins a shadow until the
            // transaction resolves, and the small crash store cannot
            // afford wide write sets without starving the cleaner.
            match (phase % 3, open.as_slice()) {
                (1, [first, ..]) => s.txn_write(*first, rng.below(8.min(n)) * PAGE, &data),
                (2, [_, second]) => {
                    s.txn_write(*second, (8 + rng.below(8)).min(n - 1) * PAGE, &data)
                }
                _ => s.write(lp * PAGE, &data),
            }
        };
        match r {
            Ok(()) => {}
            Err(EnvyError::PowerLoss) => break,
            // A write landed on a page another open transaction owns:
            // the refusal is the isolation contract, not a failure.
            Err(EnvyError::TxnConflict { .. }) => {}
            Err(e) => panic!("unexpected error driving {point:?}: {e}"),
        }
    }
    assert!(s.engine().crash_fired(), "workload never reached {point:?}");
    s.power_failure();
    let report = s.recover().expect("recovery must succeed");
    s.check_invariants().expect("invariants after recovery");
    (steps, report)
}

/// Steady-state churn under an injected program-failure rate (failures
/// per 10k program operations); returns the store for stats readout.
fn rate_run(rate: u64, writes: u64) -> EnvyStore {
    let config = EnvyConfig::scaled(2, 16, 128, PAGE as u32).with_buffer_pages(32);
    let mut s = EnvyStore::new(config).expect("config is valid");
    s.prefill().expect("prefill fits");
    if rate > 0 {
        let period = 10_000 / rate;
        // Cover far more program ops than the churn can issue.
        let schedule = (1..).map(|i| i * period).take_while(|&op| op < writes * 8);
        s.arm_faults(FaultPlan::default().with_program_failures(schedule));
    }
    let n = s.config().logical_pages;
    let mut rng = Rng::seed_from(0x5EED);
    for _ in 0..writes {
        let lp = rng.below(n);
        s.write(lp * PAGE, &[rng.next_u64() as u8; 4])
            .expect("faulted writes are retried, not failed");
    }
    s.check_invariants().expect("invariants after churn");
    s
}

fn main() {
    let quick = quick_mode();
    let max_steps = arg_u64("max-steps", 60_000);
    let writes = arg_u64("writes", if quick { 20_000 } else { 100_000 });
    let rates: &[u64] = &[0, 5, 20, 50, 100];

    let mut points: Vec<Point> = InjectionPoint::ALL
        .iter()
        .copied()
        .map(Point::Crash)
        .collect();
    points.extend(rates.iter().copied().map(Point::Rate));

    let crash_count = InjectionPoint::ALL.len();
    let outcome = SweepSpec::new("ext_fault_recovery", points).run(|_, &point| match point {
        Point::Crash(p) => {
            let (steps, r) = crash_point(p, max_steps);
            let resolution = match (r.txn_completed.len(), r.txn_rolled_back.len()) {
                (0, 0) => "-".to_string(),
                (c, 0) => format!("{c} committed"),
                (0, b) => format!("{b} rolled back"),
                (c, b) => format!("{c} committed, {b} rolled back"),
            };
            PointResult::row(
                format!("crash:{}", p.label()),
                vec![
                    p.label().to_string(),
                    steps.to_string(),
                    if r.resumed_clean { "yes" } else { "no" }.to_string(),
                    r.scavenged_pages.to_string(),
                    r.dropped_buffer_pages.to_string(),
                    r.released_shadows.to_string(),
                    r.buffered_pages.to_string(),
                    resolution,
                ],
            )
            .metric("steps_to_crash", steps as f64)
            .metric("scavenged", r.scavenged_pages as f64)
            .metric("dropped_buffer", r.dropped_buffer_pages as f64)
            .metric("released_shadows", r.released_shadows as f64)
            .metric("resumed_clean", r.resumed_clean as u64 as f64)
            .metric(
                "txn_resolved",
                (!r.txn_completed.is_empty() || !r.txn_rolled_back.is_empty()) as u64 as f64,
            )
        }
        Point::Rate(rate) => {
            let s = rate_run(rate, writes);
            let st = s.stats();
            let flushed = st.pages_flushed.get().max(1);
            let cost = st.clean_programs.get() as f64 / flushed as f64;
            PointResult::row(
                format!("rate:{rate}"),
                vec![
                    rate.to_string(),
                    st.program_faults.get().to_string(),
                    st.program_retries.get().to_string(),
                    st.program_remaps.get().to_string(),
                    st.cleans.get().to_string(),
                    fmt_f64(cost),
                ],
            )
            .metric("program_faults", st.program_faults.get() as f64)
            .metric("program_retries", st.program_retries.get() as f64)
            .metric("program_remaps", st.program_remaps.get() as f64)
            .metric("cleaning_cost", cost)
        }
    });

    let recovered = crash_count; // crash_point panics on any failure
    println!("== Extension: fault injection and crash recovery ==");
    println!();
    println!("crash matrix: {recovered}/{crash_count} injection points crashed and recovered");
    println!();

    let mut crash_table = Table::new(&[
        "injection point",
        "steps",
        "resumed clean",
        "scavenged",
        "dropped buf",
        "released shadows",
        "buffered",
        "txn at crash",
    ]);
    for row in &outcome.rows[..crash_count] {
        crash_table.row(row);
    }
    emit(
        "Crash matrix",
        "recovery debris per injection point (docs/CRASH_CONSISTENCY.md)",
        &crash_table,
    );

    let mut rate_table = Table::new(&[
        "faults/10k programs",
        "faults",
        "retries",
        "remaps",
        "cleans",
        "clean programs per flush",
    ]);
    for row in &outcome.rows[crash_count..] {
        rate_table.row(row);
    }
    emit(
        "Fault-rate sweep",
        "retry/remap cost of injected program failures",
        &rate_table,
    );
}
