//! Internal: inspect backlog/pending dynamics at saturating load.
use envy_bench::timed_system;
use envy_sim::dist::Exponential;
use envy_sim::rng::Rng;
use envy_workload::{run_timed, Transaction};

fn main() {
    let start = std::time::Instant::now();
    let (mut store, driver) = timed_system(0.8);
    let arrivals = Exponential::with_rate_per_sec(60_000.0);
    let mut rng = Rng::seed_from(42);
    let scale = driver.layout().scale;
    let mut arrival = store.now();
    for i in 0..40_000u64 {
        arrival += arrivals.sample(&mut rng);
        let txn = Transaction::generate(scale, &mut rng);
        driver
            .run_transaction_timed(&mut store, arrival, &txn)
            .unwrap();
        if i % 5000 == 4999 {
            println!(
                "txn {i}: sim={} backlog={} wr_lat={} suspensions={}",
                store.now(),
                store.backlog(),
                store.stats().write_latency.mean(),
                store.stats().suspensions.get(),
            );
        }
    }
    let b = store.stats().breakdown().unwrap();
    println!(
        "breakdown: r={:.2} w={:.2} f={:.2} c={:.2} e={:.2} s={:.2}",
        b.reads, b.writes, b.flushing, b.cleaning, b.erasing, b.suspended
    );
    let st = store.stats();
    println!(
        "busy={} wall={} reads/txn={:.1} writes/txn={:.1} rd_lat={} cost={:.2}",
        st.busy_time(),
        store.now(),
        st.host_reads.get() as f64 / 40_000.0,
        st.host_writes.get() as f64 / 40_000.0,
        st.read_latency.mean(),
        st.cleaning_cost(),
    );
    let _ = run_timed; // silence unused import paths if any
    let points = vec![(
        "saturating load".to_string(),
        vec![
            ("reads_per_txn", st.host_reads.get() as f64 / 40_000.0),
            ("writes_per_txn", st.host_writes.get() as f64 / 40_000.0),
            ("cleaning_cost", st.cleaning_cost()),
            ("suspensions", st.suspensions.get() as f64),
        ],
    )];
    if let Err(e) = envy_bench::sweep::write_report_raw(
        "calib_debug",
        1,
        start.elapsed().as_secs_f64(),
        &points,
    ) {
        eprintln!("  warning: could not write report: {e}");
    }
}
