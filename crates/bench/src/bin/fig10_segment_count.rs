//! Figure 10: cleaning cost vs number of segments in the Flash array.
//!
//! Fixed total array size and a fixed number of partitions (8, matching
//! the paper's hybrid configuration); the array is divided into 32 → 1024
//! segments. Finer segments clean more efficiently, with diminishing
//! returns once each segment is below ~1 % of the array.

use envy_bench::{emit, locality_label, quick_mode, PointResult, SweepSpec};
use envy_core::PolicyKind;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::CleaningStudy;

const LOCALITIES: [(u32, u32); 4] = [(50, 50), (20, 80), (10, 90), (5, 95)];
const METRIC_NAMES: [&str; 4] = ["cost_50_50", "cost_20_80", "cost_10_90", "cost_5_95"];

fn main() {
    // Fixed array capacity in pages; pages-per-segment shrinks as the
    // segment count grows.
    let total_pages: u64 = if quick_mode() { 1 << 15 } else { 1 << 17 };
    let counts = vec![32u32, 64, 128, 256, 512, 1024];
    let outcome = SweepSpec::new("fig10_segment_count", counts).run(|_, &segments| {
        let pps = (total_pages / u64::from(segments)) as u32;
        let k = (segments / 8).max(1); // 8 partitions throughout
        let mut row = vec![segments.to_string()];
        let mut result = PointResult::row(format!("{segments} segments"), Vec::new());
        for (&locality, name) in LOCALITIES.iter().zip(METRIC_NAMES) {
            let study = CleaningStudy::sized(
                segments,
                pps,
                PolicyKind::Hybrid {
                    segments_per_partition: k,
                },
                locality,
            );
            let out = study.run().expect("study must run");
            row.push(fmt_f64(out.cleaning_cost));
            result.metrics.push((name, out.cleaning_cost));
        }
        result.rows = vec![row];
        result
    });
    let headers: Vec<String> = std::iter::once("segments".to_string())
        .chain(LOCALITIES.iter().map(|&l| locality_label(l)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Figure 10",
        "cleaning cost vs number of segments (fixed array size, 8 partitions)",
        &table,
    );
}
