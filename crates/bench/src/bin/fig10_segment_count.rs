//! Figure 10: cleaning cost vs number of segments in the Flash array.
//!
//! Fixed total array size and a fixed number of partitions (8, matching
//! the paper's hybrid configuration); the array is divided into 32 → 1024
//! segments. Finer segments clean more efficiently, with diminishing
//! returns once each segment is below ~1 % of the array.

use envy_bench::{emit, locality_label, quick_mode};
use envy_core::PolicyKind;
use envy_sim::report::{fmt_f64, Table};
use envy_workload::CleaningStudy;

fn main() {
    // Fixed array capacity in pages; pages-per-segment shrinks as the
    // segment count grows.
    let total_pages: u64 = if quick_mode() { 1 << 15 } else { 1 << 17 };
    let localities = [(50u32, 50u32), (20, 80), (10, 90), (5, 95)];
    let headers: Vec<String> = std::iter::once("segments".to_string())
        .chain(localities.iter().map(|&l| locality_label(l)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for segments in [32u32, 64, 128, 256, 512, 1024] {
        let pps = (total_pages / segments as u64) as u32;
        let k = (segments / 8).max(1); // 8 partitions throughout
        let mut row = vec![segments.to_string()];
        for &locality in &localities {
            let study = CleaningStudy::sized(
                segments,
                pps,
                PolicyKind::Hybrid { segments_per_partition: k },
                locality,
            );
            let out = study.run().expect("study must run");
            row.push(fmt_f64(out.cleaning_cost));
        }
        table.row(&row);
        eprintln!("  done {segments} segments");
    }
    emit(
        "Figure 10",
        "cleaning cost vs number of segments (fixed array size, 8 partitions)",
        &table,
    );
}
