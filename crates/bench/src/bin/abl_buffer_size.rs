//! Ablation: SRAM write-buffer size (§5.1 sizes it at one segment).
//!
//! A larger FIFO buffer absorbs more re-writes to hot pages before they
//! are flushed, cutting Flash traffic (flushes per transaction) — at SRAM
//! cost. Run on the synthetic hot/cold stream where the effect is
//! clearest.

use envy_bench::{emit, quick_mode, PointResult, SweepSpec};
use envy_core::{EnvyConfig, EnvyStore, PolicyKind};
use envy_sim::dist::Bimodal;
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;

fn main() {
    let writes: u64 = if quick_mode() { 200_000 } else { 600_000 };
    let sizes = vec![16usize, 64, 256, 1024, 4096];
    let outcome = SweepSpec::new("abl_buffer_size", sizes).run(|_, &buffer| {
        let config = EnvyConfig::scaled(8, 64, 512, 256)
            .with_store_data(false)
            .with_policy(PolicyKind::paper_default())
            .with_buffer_pages(buffer);
        let mut store = EnvyStore::new(config).expect("valid config");
        store.prefill().expect("prefill");
        let dist = Bimodal::from_spec(store.config().logical_pages, 10, 90);
        let mut rng = Rng::seed_from(7);
        for _ in 0..writes / 2 {
            store
                .write(dist.sample(&mut rng) * 256, &[0])
                .expect("write");
        }
        let flushed0 = store.stats().pages_flushed.get();
        for _ in 0..writes / 2 {
            store
                .write(dist.sample(&mut rng) * 256, &[0])
                .expect("write");
        }
        let flushed = store.stats().pages_flushed.get() - flushed0;
        let flushes_per_write = flushed as f64 / (writes / 2) as f64;
        PointResult::row(
            format!("buffer={buffer}"),
            vec![
                buffer.to_string(),
                fmt_f64(flushes_per_write),
                fmt_f64(store.stats().cleaning_cost()),
                (buffer * 256 / 1024).to_string(),
            ],
        )
        .metric("buffer_pages", buffer as f64)
        .metric("flushes_per_write", flushes_per_write)
        .metric("cleaning_cost", store.stats().cleaning_cost())
    });
    let mut table = Table::new(&["buffer pages", "flushes/write", "cleaning cost", "sram KB"]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Ablation: write-buffer size",
        "hot/cold 10/90 page writes, 64 segments, 80% utilization",
        &table,
    );
}
