//! Ablation: page size (§3.3's tradeoff).
//!
//! "Larger pages lead to a smaller page table and lower SRAM
//! requirements. On the other hand, since an entire page has to be
//! written to Flash with every flush, larger pages cause more unmodified
//! data to be written for every word changed." The paper picks 256 bytes.
//!
//! This sweep runs word-granularity TPC-A-like record updates at several
//! page sizes and reports bytes programmed per byte written (write
//! amplification from page granularity alone) plus page-table SRAM cost.

use envy_bench::{emit, quick_mode, PointResult, SweepSpec};
use envy_core::{EnvyConfig, EnvyStore, PolicyKind};
use envy_sim::report::{fmt_f64, Table};
use envy_sim::rng::Rng;

fn main() {
    let writes: u64 = if quick_mode() { 100_000 } else { 300_000 };
    let sizes = vec![64u32, 128, 256, 512, 1024];
    let outcome = SweepSpec::new("abl_page_size", sizes).run(|_, &page_bytes| {
        // Constant array byte size: 8 MB.
        let pps = 2048 * 256 / page_bytes;
        let config = EnvyConfig::scaled(4, 16, pps, page_bytes)
            .with_store_data(false)
            .with_policy(PolicyKind::paper_default());
        let mut store = EnvyStore::new(config).expect("valid config");
        store.prefill().expect("prefill");
        let mut rng = Rng::seed_from(5);
        let logical_bytes = store.size();
        // 8-byte record updates at uniformly random addresses.
        for _ in 0..writes {
            let addr = rng.below(logical_bytes - 8);
            store.write(addr, &[0u8; 8]).expect("write");
        }
        let stats = store.stats();
        let programs = stats.pages_flushed.get() + stats.clean_programs.get();
        let programmed_bytes = programs * u64::from(page_bytes);
        let written_bytes = writes * 8;
        let amplification = programmed_bytes as f64 / written_bytes as f64;
        // §3.3: 6 bytes of page table per page.
        let table_mb = (1u64 << 30) / u64::from(page_bytes) * 6 / (1024 * 1024);
        PointResult::row(
            format!("page={page_bytes}"),
            vec![
                page_bytes.to_string(),
                fmt_f64(amplification),
                table_mb.to_string(),
            ],
        )
        .metric("page_bytes", f64::from(page_bytes))
        .metric("write_amplification", amplification)
        .metric("page_table_mb_per_gb", table_mb as f64)
    });
    let mut table = Table::new(&[
        "page bytes",
        "flash bytes programmed / byte written",
        "page-table SRAM per GB flash (MB)",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Ablation: page size",
        "8-byte uniform record updates; write amplification vs SRAM cost (§3.3)",
        &table,
    );
}
