//! Figure 12: eNVy simulation parameters — printed from the live
//! configuration structures so the table cannot drift from the code.

use envy_bench::emit;
use envy_core::EnvyConfig;
use envy_sim::report::Table;
use envy_workload::{TpcaLayout, TpcaScale};

fn main() {
    let start = std::time::Instant::now();
    let c = EnvyConfig::paper_2gb();
    let g = &c.geometry;
    let mb = |b: u64| format!("{} MB", b / (1024 * 1024));

    let mut flash = Table::new(&["flash parameter", "value"]);
    flash.row(&["array size".into(), mb(g.total_bytes())]);
    flash.row(&["# of banks".into(), g.banks().to_string()]);
    flash.row(&["segments".into(), g.segments().to_string()]);
    flash.row(&["segment size".into(), mb(g.segment_bytes())]);
    flash.row(&["page size".into(), format!("{} bytes", g.page_bytes())]);
    flash.row(&["read time".into(), c.timings.read.to_string()]);
    flash.row(&["write time".into(), c.timings.write.to_string()]);
    flash.row(&["program time".into(), c.timings.program.to_string()]);
    flash.row(&["erase time".into(), c.timings.erase.to_string()]);
    flash.row(&["rated cycles".into(), c.timings.rated_cycles.to_string()]);
    emit("Figure 12a", "flash parameters", &flash);

    let mut sram = Table::new(&["sram parameter", "value"]);
    sram.row(&[
        "write buffer".into(),
        mb(c.buffer_pages as u64 * g.page_bytes() as u64),
    ]);
    sram.row(&[
        "flush threshold".into(),
        format!("{} pages", c.flush_threshold),
    ]);
    sram.row(&["page table".into(), mb(c.page_table_sram_bytes())]);
    emit("Figure 12b", "sram parameters", &sram);

    let scale = TpcaScale::paper();
    let layout = TpcaLayout::new(scale);
    let mut tpc = Table::new(&["tpc parameter", "value", "index levels"]);
    tpc.row(&[
        "branch records".into(),
        scale.branches.to_string(),
        layout.branch_tree.depth().to_string(),
    ]);
    tpc.row(&[
        "teller records".into(),
        scale.tellers().to_string(),
        layout.teller_tree.depth().to_string(),
    ]);
    tpc.row(&[
        "account records".into(),
        scale.accounts().to_string(),
        layout.account_tree.depth().to_string(),
    ]);
    tpc.row(&["b-tree fanout".into(), "32".into(), "-".into()]);
    emit("Figure 12c", "TPC-A parameters", &tpc);
    let points = vec![(
        "paper 2 GB configuration".to_string(),
        vec![
            ("array_bytes", g.total_bytes() as f64),
            ("banks", g.banks() as f64),
            ("segments", g.segments() as f64),
            ("page_bytes", g.page_bytes() as f64),
            ("buffer_pages", c.buffer_pages as f64),
            ("accounts", scale.accounts() as f64),
        ],
    )];
    if let Err(e) = envy_bench::sweep::write_report_raw(
        "table_fig12",
        1,
        start.elapsed().as_secs_f64(),
        &points,
    ) {
        eprintln!("  warning: could not write report: {e}");
    }
}
