//! Figure 14: throughput for various levels of Flash utilization.
//!
//! As the live-data fraction rises, cleaning cost u/(1-u) grows and more
//! bandwidth goes to cleaning; past ~80 % utilization throughput drops
//! steeply — the paper's rationale for capping the array at 80 %.

use envy_bench::{arg_u64, emit, quick_mode, timed_system, PointResult, SweepSpec};
use envy_sim::report::{fmt_f64, Table};
use envy_workload::run_timed;

fn main() {
    let txns = arg_u64("txns", if quick_mode() { 8_000 } else { 30_000 });
    let warmup = txns / 10;
    let rates = [10_000u64, 20_000, 30_000, 40_000];
    let utils = vec![10u32, 20, 30, 40, 50, 60, 70, 80, 90, 95];
    let outcome = SweepSpec::new("fig14_utilization", utils).run(|_, &util_pct| {
        // One baseline per utilization point, forked for each rate.
        let (base, driver) = timed_system(util_pct as f64 / 100.0);
        let mut row = vec![format!("{util_pct}%")];
        let mut result = PointResult::row(format!("{util_pct}%"), Vec::new());
        let mut last_cost = 0.0;
        for rate in rates {
            let mut store = base.fork();
            let r =
                run_timed(&mut store, &driver, rate as f64, warmup, txns, 42).expect("timed run");
            row.push(fmt_f64(r.achieved_tps));
            last_cost = r.cleaning_cost;
            result.metrics.push((
                match rate {
                    10_000 => "achieved_tps_at_10k",
                    20_000 => "achieved_tps_at_20k",
                    30_000 => "achieved_tps_at_30k",
                    _ => "achieved_tps_at_40k",
                },
                r.achieved_tps,
            ));
        }
        row.push(fmt_f64(last_cost));
        result.rows = vec![row];
        result.metric("cleaning_cost", last_cost)
    });
    let mut table = Table::new(&[
        "utilization",
        "10k TPS",
        "20k TPS",
        "30k TPS",
        "40k TPS",
        "cleaning cost",
    ]);
    for row in &outcome.rows {
        table.row(row);
    }
    emit(
        "Figure 14",
        "achieved throughput vs flash array utilization (TPC-A)",
        &table,
    );
}
