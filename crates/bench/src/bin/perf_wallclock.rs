//! Wall-clock performance harness: how fast the simulator itself runs.
//!
//! Every other binary in `src/bin/` reports *simulated* time; this one
//! reports *host* time, establishing the repo's wall-clock trajectory so
//! data-plane regressions show up as numbers rather than as slow CI.
//! Two fixed-seed scenarios are timed end to end (setup: build + prefill
//! + churn, then a timed TPC-A run at a fixed request rate):
//!
//! * `scaled` — the 256 MB configuration every `--quick` sweep uses;
//! * `paper` — the paper's 2 GB configuration (Figure 12).
//!
//! Per scenario the report records nanoseconds of host time per
//! transaction, transactions and host word accesses per wall second, the
//! setup/run split, peak RSS so far (`VmHWM`, cumulative across the
//! process), and the simulated achieved throughput as a determinism
//! anchor: the simulated metrics must be bit-identical across runs even
//! though the wall-clock ones never are.
//!
//! Usage: `perf_wallclock [--smoke] [--txns N]`. `--smoke` shrinks the
//! transaction counts for CI, which records (but does not gate on) the
//! result; see docs/PERFORMANCE.md for the measurement discipline.

use envy_bench::{arg_u64, emit, timed_system_for, write_report_full};
use envy_sim::report::{fmt_f64, Table};
use envy_workload::run_timed;
use std::time::Instant;

/// Peak resident set size of this process so far, in kilobytes, from
/// `/proc/self/status` (`VmHWM`); 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

struct Scenario {
    name: &'static str,
    paper: bool,
    rate_tps: u64,
    txns: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scaled_txns = arg_u64("txns", if smoke { 10_000 } else { 100_000 });
    // The 2 GB system simulates ~5× slower per transaction; keep the
    // harness under a minute at full size.
    let paper_txns = arg_u64("paper-txns", if smoke { 2_000 } else { 20_000 });
    let scenarios = [
        Scenario {
            name: "scaled",
            paper: false,
            rate_tps: 30_000,
            txns: scaled_txns,
        },
        Scenario {
            name: "paper",
            paper: true,
            rate_tps: 30_000,
            txns: paper_txns,
        },
    ];

    let total = Instant::now();
    let mut scaled_store = None;
    let mut table = Table::new(&[
        "scenario",
        "ns/txn",
        "txn/s (wall)",
        "word ops/s (wall)",
        "setup s",
        "run s",
        "peak RSS MB",
        "achieved TPS (sim)",
    ]);
    let mut points: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    for sc in &scenarios {
        let t_setup = Instant::now();
        let (mut store, driver) = timed_system_for(sc.paper, 0.8);
        let setup_s = t_setup.elapsed().as_secs_f64();

        let t_run = Instant::now();
        let result = run_timed(
            &mut store,
            &driver,
            sc.rate_tps as f64,
            sc.txns / 10,
            sc.txns,
            42,
        )
        .expect("timed run");
        let run_s = t_run.elapsed().as_secs_f64();

        let words = store.stats().host_reads.get() + store.stats().host_writes.get();
        let ns_per_txn = run_s * 1e9 / sc.txns as f64;
        let txn_per_s = sc.txns as f64 / run_s;
        let ops_per_s = words as f64 / (setup_s + run_s);
        let rss_mb = peak_rss_kb() as f64 / 1024.0;
        table.row(&[
            format!("{} ({} txns)", sc.name, sc.txns),
            fmt_f64(ns_per_txn),
            fmt_f64(txn_per_s),
            fmt_f64(ops_per_s),
            fmt_f64(setup_s),
            fmt_f64(run_s),
            fmt_f64(rss_mb),
            fmt_f64(result.achieved_tps),
        ]);
        points.push((
            sc.name.to_string(),
            vec![
                ("txns", sc.txns as f64),
                ("offered_tps", sc.rate_tps as f64),
                ("ns_per_txn", ns_per_txn),
                ("txn_per_sec_wall", txn_per_s),
                ("word_ops_per_sec_wall", ops_per_s),
                ("setup_seconds", setup_s),
                ("run_seconds", run_s),
                ("peak_rss_kb", peak_rss_kb() as f64),
                ("achieved_tps_sim", result.achieved_tps),
                ("cleaning_cost_sim", result.cleaning_cost),
            ],
        ));
        if !sc.paper {
            scaled_store = Some(store);
        }
    }

    // Concurrent read path: raw lock-free ReadView throughput over the
    // churned scaled store, swept over reader-thread counts. The store
    // is quiescent, so this isolates the per-read cost of the seqlock
    // path (snapshot, packed-table decode, copy, validate); the serving
    // mix under writer interference is ext_serve's read-heavy sweep.
    let store = scaled_store.expect("scaled scenario ran");
    let view = store.read_view();
    let size = store.size();
    let reads_per_thread = arg_u64("view-reads", if smoke { 200_000 } else { 1_000_000 });
    let mut view_table = Table::new(&["reader threads", "total reads", "Mreads/s (wall)"]);
    for threads in [1u64, 2, 4] {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let view = view.clone();
                s.spawn(move || {
                    let mut seed = 0x243F_6A88_85A3_08D3 ^ (t + 1).wrapping_mul(0x9E37);
                    let mut buf = [0u8; 8];
                    for _ in 0..reads_per_thread {
                        // xorshift64*: cheap seeded address stream.
                        seed ^= seed >> 12;
                        seed ^= seed << 25;
                        seed ^= seed >> 27;
                        let addr = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) % (size - 8);
                        view.read(addr, &mut buf).expect("in-bounds view read");
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let total_reads = reads_per_thread * threads;
        let mreads = total_reads as f64 / secs / 1e6;
        view_table.row(&[
            threads.to_string(),
            total_reads.to_string(),
            fmt_f64(mreads),
        ]);
        points.push((
            format!("view_reads/t{threads}"),
            vec![
                ("reader_threads", threads as f64),
                ("total_reads", total_reads as f64),
                ("reads_per_sec_wall", total_reads as f64 / secs),
                ("run_seconds", secs),
            ],
        ));
    }
    emit(
        "perf_wallclock",
        "lock-free ReadView throughput (quiescent store, host time)",
        &view_table,
    );

    // Reference wall-clock numbers for this repo's data-plane overhaul
    // (interleaved min-of-N on the development machine; the methodology
    // and full distributions are in docs/PERFORMANCE.md). Kept in the
    // report so the trajectory has a fixed origin.
    let reference = concat!(
        "{\"fig13_scaled_sweep_seconds\": {\"before\": 1.100, \"after\": 0.676},",
        " \"paper_smoke_seconds\": {\"before\": 4.036, \"after\": 2.543},",
        " \"method\": \"interleaved min-of-N, --jobs 1, docs/PERFORMANCE.md\"}"
    );

    write_report_full(
        "perf_wallclock",
        1,
        total.elapsed().as_secs_f64(),
        &points,
        &[("overhaul_reference", reference.to_string())],
    )
    .expect("write report");

    emit(
        "perf_wallclock",
        "simulator wall-clock performance (host time, not simulated time)",
        &table,
    );
}
