//! Micro-benchmarks: simulator operation costs (host-machine wall time,
//! not simulated time) for the primitives every experiment is built
//! from. Useful for keeping the figure-regeneration binaries fast.
//!
//! Runs on a minimal in-repo timer harness (the workspace builds with no
//! network access, so no external benchmark framework): each benchmark
//! is warmed up, then run in growing batches until a target measurement
//! time is reached, and the mean ns/iteration is reported. Invoke with
//! `cargo bench -p envy-bench`; pass a substring argument to filter.

use envy_btree::BTree;
use envy_core::{EnvyConfig, EnvyStore, PolicyKind, VecMemory};
use envy_sim::dist::Bimodal;
use envy_sim::rng::Rng;
use envy_sim::time::Ns;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimal timer harness: warm up briefly, then time batches until the
/// measurement budget is spent.
struct Harness {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
}

impl Harness {
    fn from_args() -> Harness {
        // Cargo's bench runner passes flags like `--bench`; any other
        // free argument filters benchmarks by substring.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Harness {
            filter,
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }

    fn bench(&self, name: &str, mut f: impl FnMut()) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup {
            f();
            warm_iters += 1;
        }
        // Pick a batch size that keeps per-batch timing overhead small.
        let batch = (warm_iters / 50).max(1);
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            spent += t0.elapsed();
            iters += batch;
        }
        let ns_per_iter = spent.as_nanos() as f64 / iters as f64;
        println!("{name:40} {ns_per_iter:12.1} ns/iter  ({iters} iters)");
    }
}

fn store_with_data() -> EnvyStore {
    let mut s = EnvyStore::new(EnvyConfig::scaled(4, 32, 256, 256).with_utilization(0.7))
        .expect("valid config");
    s.prefill().expect("prefill");
    s
}

fn bench_host_paths(h: &Harness) {
    let mut s = store_with_data();
    let mut buf = [0u8; 8];
    let mut addr = 0u64;
    h.bench("host_paths/read_flash_8B", || {
        s.read(black_box(addr % (s.size() - 8)), &mut buf).unwrap();
        addr += 4096;
    });

    let mut s = store_with_data();
    s.write(0, &[1u8; 8]).unwrap(); // page now in SRAM
    h.bench("host_paths/write_sram_hit_8B", || {
        s.write(black_box(0), &[2u8; 8]).unwrap();
    });

    let mut s = store_with_data();
    let pages = s.config().logical_pages;
    let mut lp = 0u64;
    h.bench("host_paths/write_cow_plus_flush_8B", || {
        // Every write hits a different page: steady-state COW+flush
        // (and amortized cleaning).
        s.write(black_box((lp % pages) * 256), &[3u8; 8]).unwrap();
        lp += 1;
    });

    let mut s = store_with_data();
    let mut t = Ns::ZERO;
    let mut addr = 0u64;
    h.bench("host_paths/timed_read_8B", || {
        let a = s.read_at(t, addr % (s.size() - 8), &mut buf).unwrap();
        t = a.completed;
        addr += 4096;
    });
}

fn bench_cleaning(h: &Harness) {
    let config = EnvyConfig::scaled(8, 64, 128, 256)
        .with_store_data(false)
        .with_policy(PolicyKind::paper_default());
    let mut s = EnvyStore::new(config).expect("valid");
    s.prefill().expect("prefill");
    let mut rng = Rng::seed_from(1);
    let dist = Bimodal::from_spec(s.config().logical_pages, 10, 90);
    // Warm into cleaning steady state.
    for _ in 0..40_000 {
        s.write(dist.sample(&mut rng) * 256, &[0]).unwrap();
    }
    h.bench("cleaning/steady_state_page_write", || {
        s.write(black_box(dist.sample(&mut rng) * 256), &[0])
            .unwrap();
    });
}

fn bench_btree(h: &Harness) {
    let mut mem = VecMemory::new(8 * 1024 * 1024);
    let mut tree = BTree::create(&mut mem, 0, 8 * 1024 * 1024).unwrap();
    for k in 0..100_000u64 {
        tree.insert(&mut mem, k, k).unwrap();
    }
    let mut rng = Rng::seed_from(2);
    h.bench("btree/get_100k", || {
        tree.get(&mut mem, black_box(rng.below(100_000))).unwrap();
    });
    h.bench("btree/get_probed_100k", || {
        tree.get_probed(&mut mem, black_box(rng.below(100_000)))
            .unwrap();
    });
    h.bench("btree/update_100k", || {
        tree.update(&mut mem, black_box(rng.below(100_000)), 7)
            .unwrap();
    });
}

fn bench_distributions(h: &Harness) {
    let mut rng = Rng::seed_from(3);
    let bimodal = Bimodal::from_spec(1 << 20, 10, 90);
    h.bench("distributions/bimodal_sample", || {
        black_box(bimodal.sample(&mut rng));
    });
}

fn main() {
    let h = Harness::from_args();
    bench_host_paths(&h);
    bench_cleaning(&h);
    bench_btree(&h);
    bench_distributions(&h);
}
