//! Criterion micro-benchmarks: simulator operation costs (host-machine
//! wall time, not simulated time) for the primitives every experiment is
//! built from. Useful for keeping the figure-regeneration binaries fast.

use criterion::{criterion_group, criterion_main, Criterion};
use envy_btree::BTree;
use envy_core::{EnvyConfig, EnvyStore, PolicyKind, VecMemory};
use envy_sim::dist::Bimodal;
use envy_sim::rng::Rng;
use envy_sim::time::Ns;
use std::hint::black_box;

fn store_with_data() -> EnvyStore {
    let mut s = EnvyStore::new(EnvyConfig::scaled(4, 32, 256, 256).with_utilization(0.7))
        .expect("valid config");
    s.prefill().expect("prefill");
    s
}

fn bench_host_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_paths");

    let mut s = store_with_data();
    let mut buf = [0u8; 8];
    g.bench_function("read_flash_8B", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            s.read(black_box(addr % (s.size() - 8)), &mut buf).unwrap();
            addr += 4096;
        })
    });

    let mut s = store_with_data();
    s.write(0, &[1u8; 8]).unwrap(); // page now in SRAM
    g.bench_function("write_sram_hit_8B", |b| {
        b.iter(|| s.write(black_box(0), &[2u8; 8]).unwrap())
    });

    let mut s = store_with_data();
    let pages = s.config().logical_pages;
    g.bench_function("write_cow_plus_flush_8B", |b| {
        let mut lp = 0u64;
        b.iter(|| {
            // Every write hits a different page: steady-state COW+flush
            // (and amortized cleaning).
            s.write(black_box((lp % pages) * 256), &[3u8; 8]).unwrap();
            lp += 1;
        })
    });

    let mut s = store_with_data();
    g.bench_function("timed_read_8B", |b| {
        let mut t = Ns::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            let a = s.read_at(t, addr % (s.size() - 8), &mut buf).unwrap();
            t = a.completed;
            addr += 4096;
        })
    });
    g.finish();
}

fn bench_cleaning(c: &mut Criterion) {
    let mut g = c.benchmark_group("cleaning");
    g.bench_function("steady_state_page_write", |b| {
        let config = EnvyConfig::scaled(8, 64, 128, 256)
            .with_store_data(false)
            .with_policy(PolicyKind::paper_default());
        let mut s = EnvyStore::new(config).expect("valid");
        s.prefill().expect("prefill");
        let mut rng = Rng::seed_from(1);
        let dist = Bimodal::from_spec(s.config().logical_pages, 10, 90);
        // Warm into cleaning steady state.
        for _ in 0..40_000 {
            s.write(dist.sample(&mut rng) * 256, &[0]).unwrap();
        }
        b.iter(|| {
            s.write(black_box(dist.sample(&mut rng) * 256), &[0]).unwrap();
        })
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    let mut mem = VecMemory::new(8 * 1024 * 1024);
    let mut tree = BTree::create(&mut mem, 0, 8 * 1024 * 1024).unwrap();
    for k in 0..100_000u64 {
        tree.insert(&mut mem, k, k).unwrap();
    }
    let mut rng = Rng::seed_from(2);
    g.bench_function("get_100k", |b| {
        b.iter(|| tree.get(&mut mem, black_box(rng.below(100_000))).unwrap())
    });
    g.bench_function("get_probed_100k", |b| {
        b.iter(|| tree.get_probed(&mut mem, black_box(rng.below(100_000))).unwrap())
    });
    g.bench_function("update_100k", |b| {
        b.iter(|| tree.update(&mut mem, black_box(rng.below(100_000)), 7).unwrap())
    });
    g.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributions");
    let mut rng = Rng::seed_from(3);
    let bimodal = Bimodal::from_spec(1 << 20, 10, 90);
    g.bench_function("bimodal_sample", |b| b.iter(|| bimodal.sample(&mut rng)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_host_paths, bench_cleaning, bench_btree, bench_distributions
}
criterion_main!(benches);
