//! Internal debugging driver for the locality-gathering dynamics.
use envy_core::engine::Engine;
use envy_core::{EnvyConfig, PolicyKind};
use envy_sim::dist::Bimodal;
use envy_sim::rng::Rng;

fn main() {
    let config = EnvyConfig::scaled(4, 16, 64, 256)
        .with_policy(PolicyKind::LocalityGathering)
        .with_utilization(0.8);
    let mut e = Engine::new(config).unwrap();
    e.prefill().unwrap();
    let n = e.config().logical_pages;
    let dist = Bimodal::from_spec(n, 10, 90);
    let mut rng = Rng::seed_from(5);
    let mut ops = Vec::new();
    for step in 0..60_000u64 {
        let lp = dist.sample(&mut rng);
        e.write_page_bytes(lp, 0, &[1], None, &mut ops).unwrap();
        ops.clear();
        if step % 10000 == 9999 {
            let utils: Vec<String> = (0..e.positions())
                .map(|pos| format!("{:.2}", e.position_utilization(pos)))
                .collect();
            println!("step {step}: {}", utils.join(" "));
            println!(
                "   cost={:.2} sheds={} cleans={}",
                e.stats().cleaning_cost(),
                e.stats().shed_programs.get(),
                e.stats().cleans.get()
            );
        }
    }
}
