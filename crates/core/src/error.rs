//! Controller error types.

use envy_flash::FlashError;
use std::error::Error;
use std::fmt;

/// Errors raised by the eNVy controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvyError {
    /// A host access fell outside the logical address space.
    OutOfBounds {
        /// Offending byte address.
        addr: u64,
        /// Size of the logical address space in bytes.
        size: u64,
    },
    /// The array has no reclaimable space left: every segment is full of
    /// live data. With the paper's 80 % utilization cap this cannot occur;
    /// it indicates a misconfigured (oversubscribed) logical size.
    ArrayFull,
    /// The configuration is internally inconsistent.
    BadConfig(&'static str),
    /// An error bubbled up from the Flash substrate. The controller is
    /// supposed to make these impossible; seeing one is a controller bug.
    Flash(FlashError),
    /// Every concurrent-transaction slot is occupied (§6 extension;
    /// [`crate::EnvyConfig::txn_slots`] slots per controller). The ids of
    /// the open transactions are deliberately not reported — transaction
    /// ids are capability-like for transactional writes and must not leak
    /// to arbitrary callers.
    TxnSlotsFull {
        /// Slot-table capacity of this controller.
        slots: u32,
    },
    /// The transaction id is unknown (already committed or aborted).
    NoSuchTxn {
        /// Offending id.
        txn: u64,
    },
    /// The written page is in the write set of another open transaction.
    /// This is an abort decision for the caller, not a busy-wait: the
    /// write did not execute and will keep failing until the holder
    /// resolves.
    TxnConflict {
        /// The transaction owning the page. Only surfaced controller-
        /// side; the serving layer does not echo foreign ids over the
        /// wire.
        holder: u64,
    },
    /// Recovery found the persistent structures inconsistent. Use
    /// [`crate::engine::Engine::check_invariants`] for a description.
    CorruptState,
    /// A simulated power failure fired at an armed fault-injection point
    /// (see [`crate::engine::InjectionPoint`]). The operation in flight
    /// stops exactly where the power was cut; the caller must invoke
    /// [`crate::engine::Engine::power_failure`] and then
    /// [`crate::engine::Engine::recover`] before using the engine again.
    PowerLoss,
}

impl fmt::Display for EnvyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EnvyError::OutOfBounds { addr, size } => {
                write!(f, "address {addr:#x} outside logical array of {size} bytes")
            }
            EnvyError::ArrayFull => {
                write!(f, "flash array has no reclaimable space (oversubscribed)")
            }
            EnvyError::BadConfig(why) => write!(f, "invalid configuration: {why}"),
            EnvyError::Flash(e) => write!(f, "flash substrate error: {e}"),
            EnvyError::TxnSlotsFull { slots } => {
                write!(f, "all {slots} transaction slots are occupied")
            }
            EnvyError::NoSuchTxn { txn } => write!(f, "no open transaction with id {txn}"),
            EnvyError::TxnConflict { holder } => {
                write!(f, "page is in the write set of open transaction {holder}")
            }
            EnvyError::CorruptState => {
                write!(f, "persistent state inconsistent after recovery")
            }
            EnvyError::PowerLoss => {
                write!(f, "simulated power failure at an armed injection point")
            }
        }
    }
}

impl Error for EnvyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnvyError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for EnvyError {
    fn from(e: FlashError) -> EnvyError {
        EnvyError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = EnvyError::OutOfBounds {
            addr: 0x100,
            size: 64,
        };
        assert!(e.to_string().contains("0x100"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn flash_error_chains_as_source() {
        let inner = FlashError::BadGeometry("x");
        let e = EnvyError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("flash substrate"));
    }

    #[test]
    fn power_loss_display_names_the_mechanism() {
        let msg = EnvyError::PowerLoss.to_string();
        assert!(msg.contains("power failure"));
        assert!(msg.contains("injection point"));
    }

    #[test]
    fn send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<EnvyError>();
    }
}
