//! The logical-to-physical page table (§3.1, §3.3).
//!
//! "A page table maintains a mapping between the linear logical address
//! space presented to the host and the physical address space of the Flash
//! array." The table lives in battery-backed SRAM because mappings change
//! on every copy-on-write and must update in place.
//!
//! Besides the forward map, the controller needs the reverse map — which
//! logical page a physical Flash page holds — to repoint mappings during
//! cleaning. Both directions are maintained here under a single invariant:
//! they are mutually consistent bijections on the Flash-resident pages.

use crate::addr::{FlashLocation, Location, LogicalPage};
use envy_flash::FlashGeometry;
use envy_sync::{SharedWords, WordsView};

/// Reverse-map encoding: `0` = empty, else `logical page + 1`. The zero
/// empty value lets the allocator hand back lazily-zeroed pages instead
/// of eagerly writing a sentinel across the whole (multi-megabyte at
/// paper scale) table, and `u32` halves the clone cost of
/// [`EnvyStore::fork`](crate::store::EnvyStore::fork).
const REV_EMPTY: u32 = 0;

/// Forward-map encoding: one word per logical page instead of a 12-byte
/// [`Location`], shrinking the hottest lookup table by a third.
const FWD_UNMAPPED: u64 = 0;
const FWD_SRAM: u64 = 1;
/// Flash locations are stored as `((segment << 32) | page) + FWD_FLASH_BASE`.
const FWD_FLASH_BASE: u64 = 2;

#[inline]
fn fwd_encode_flash(loc: FlashLocation) -> u64 {
    debug_assert!(loc.page < u32::MAX - 1, "page index near u32::MAX");
    (((loc.segment as u64) << 32) | loc.page as u64) + FWD_FLASH_BASE
}

#[inline]
pub(crate) fn fwd_decode(v: u64) -> Location {
    match v {
        FWD_UNMAPPED => Location::Unmapped,
        FWD_SRAM => Location::Sram,
        v => {
            let packed = v - FWD_FLASH_BASE;
            Location::Flash(FlashLocation {
                segment: (packed >> 32) as u32,
                page: packed as u32,
            })
        }
    }
}

/// Forward (logical → physical) and reverse (physical → logical) page
/// mappings.
///
/// # Example
///
/// ```
/// use envy_core::page_table::PageTable;
/// use envy_core::addr::{FlashLocation, Location};
/// use envy_flash::FlashGeometry;
///
/// let geo = FlashGeometry::new(1, 2, 4, 64).unwrap();
/// let mut pt = PageTable::new(8, &geo);
/// let loc = FlashLocation { segment: 1, page: 2 };
/// pt.map_flash(5, loc);
/// assert_eq!(pt.lookup(5), Location::Flash(loc));
/// assert_eq!(pt.logical_at(loc), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    /// Packed forward map; see [`fwd_decode`]. Each entry is one atomic
    /// word published to concurrent readers: a single-word load can never
    /// observe a torn location, and cross-entry consistency is the store
    /// epoch's job.
    forward: SharedWords,
    /// Flat reverse map (`segment * pages_per_segment + page`); see
    /// [`REV_EMPTY`].
    reverse: Vec<u32>,
    pages_per_segment: u32,
}

impl PageTable {
    /// Create a table for `logical_pages` logical pages over the given
    /// Flash geometry, with everything unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `logical_pages` does not fit the reverse map's `u32`
    /// encoding (over four billion pages).
    pub fn new(logical_pages: u64, geo: &FlashGeometry) -> PageTable {
        assert!(
            logical_pages < u32::MAX as u64,
            "logical page count exceeds the reverse-map encoding"
        );
        PageTable {
            forward: SharedWords::new(logical_pages as usize, FWD_UNMAPPED),
            reverse: vec![REV_EMPTY; geo.segments() as usize * geo.pages_per_segment() as usize],
            pages_per_segment: geo.pages_per_segment(),
        }
    }

    #[inline]
    fn rev_index(&self, segment: u32, page: u32) -> usize {
        segment as usize * self.pages_per_segment as usize + page as usize
    }

    /// Number of logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Current location of a logical page.
    ///
    /// # Panics
    ///
    /// Panics if `lp` is out of range.
    #[inline]
    pub fn lookup(&self, lp: LogicalPage) -> Location {
        fwd_decode(self.forward.get(lp as usize))
    }

    /// Reader handle to the packed forward map, for lock-free concurrent
    /// lookups validated by an external epoch.
    pub fn reader_forward(&self) -> WordsView {
        self.forward.view()
    }

    /// The logical page stored at a physical location, if any.
    pub fn logical_at(&self, loc: FlashLocation) -> Option<LogicalPage> {
        let lp = self.reverse[self.rev_index(loc.segment, loc.page)];
        // `.then`, not `.then_some`: the subtraction must stay lazy so an
        // empty slot (0) cannot underflow.
        (lp != REV_EMPTY).then(|| lp as u64 - 1)
    }

    /// Point a logical page at a Flash location (atomic repoint: the old
    /// reverse entry, if any, is cleared).
    ///
    /// # Panics
    ///
    /// Panics if the destination already holds a different logical page —
    /// the controller must never double-map a physical page.
    pub fn map_flash(&mut self, lp: LogicalPage, loc: FlashLocation) {
        let di = self.rev_index(loc.segment, loc.page);
        let dest = self.reverse[di];
        assert!(
            dest == REV_EMPTY || dest as u64 - 1 == lp,
            "physical page already holds logical page {}",
            dest as u64 - 1
        );
        if let Location::Flash(old) = self.lookup(lp) {
            let oi = self.rev_index(old.segment, old.page);
            self.reverse[oi] = REV_EMPTY;
        }
        self.forward.set(lp as usize, fwd_encode_flash(loc));
        self.reverse[di] = lp as u32 + 1;
    }

    /// Point a logical page at the SRAM write buffer, clearing any Flash
    /// reverse mapping.
    pub fn map_sram(&mut self, lp: LogicalPage) {
        if let Location::Flash(old) = self.lookup(lp) {
            let oi = self.rev_index(old.segment, old.page);
            self.reverse[oi] = REV_EMPTY;
        }
        self.forward.set(lp as usize, FWD_SRAM);
    }

    /// Return a logical page to the unmapped state.
    pub fn unmap(&mut self, lp: LogicalPage) {
        if let Location::Flash(old) = self.lookup(lp) {
            let oi = self.rev_index(old.segment, old.page);
            self.reverse[oi] = REV_EMPTY;
        }
        self.forward.set(lp as usize, FWD_UNMAPPED);
    }

    /// Logical pages resident in a segment, in physical page order.
    /// This is the order the cleaner copies them in (§4.3: "when cleaning
    /// a segment, the order of the pages is maintained").
    pub fn residents_of(&self, segment: u32) -> Vec<(u32, LogicalPage)> {
        let mut out = Vec::new();
        self.residents_into(segment, &mut out);
        out
    }

    /// [`PageTable::residents_of`] into a caller-provided buffer (cleared
    /// first), so steady-state cleaning can reuse one allocation instead
    /// of building a fresh resident list per victim.
    pub fn residents_into(&self, segment: u32, out: &mut Vec<(u32, LogicalPage)>) {
        out.clear();
        let base = self.rev_index(segment, 0);
        out.extend(
            self.reverse[base..base + self.pages_per_segment as usize]
                .iter()
                .enumerate()
                // The subtraction must stay behind the filter so an empty
                // slot (0) cannot underflow.
                .filter(|&(_, &lp)| lp != REV_EMPTY)
                .map(|(page, &lp)| (page as u32, lp as u64 - 1)),
        );
    }

    /// Number of logical pages resident in a segment.
    pub fn resident_count(&self, segment: u32) -> u32 {
        let base = self.rev_index(segment, 0);
        self.reverse[base..base + self.pages_per_segment as usize]
            .iter()
            .filter(|&&lp| lp != REV_EMPTY)
            .count() as u32
    }

    /// SRAM footprint of the table at the paper's 6 bytes per mapping.
    pub fn sram_bytes(&self) -> u64 {
        self.forward.len() as u64 * 6
    }

    /// Check forward/reverse consistency; used by tests and recovery.
    ///
    /// Returns a description of the first violation found.
    pub fn check_consistency(&self) -> Result<(), String> {
        let pps = self.pages_per_segment as usize;
        let segments = self.reverse.len() / pps.max(1);
        for lp in 0..self.forward.len() {
            let v = self.forward.get(lp);
            if let Location::Flash(f) = fwd_decode(v) {
                if f.page >= self.pages_per_segment || f.segment as usize >= segments {
                    return Err(format!("logical page {lp} maps out of range"));
                }
                let back = self.reverse[self.rev_index(f.segment, f.page)];
                if back == REV_EMPTY || back as u64 - 1 != lp as u64 {
                    return Err(format!(
                        "logical page {lp} maps to ({}, {}) but reverse holds {}",
                        f.segment,
                        f.page,
                        back as i64 - 1
                    ));
                }
            }
        }
        for (i, &entry) in self.reverse.iter().enumerate() {
            if entry != REV_EMPTY {
                let (seg, page) = (i / pps, i % pps);
                let lp = entry as u64 - 1;
                let fwd = ((lp as usize) < self.forward.len())
                    .then(|| fwd_decode(self.forward.get(lp as usize)));
                match fwd {
                    Some(Location::Flash(f))
                        if f.segment as usize == seg && f.page as usize == page => {}
                    _ => {
                        return Err(format!(
                            "reverse entry ({seg}, {page}) -> {lp} not mirrored forward"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        let geo = FlashGeometry::new(1, 4, 8, 64).unwrap();
        PageTable::new(16, &geo)
    }

    #[test]
    fn starts_unmapped() {
        let pt = table();
        for lp in 0..16 {
            assert_eq!(pt.lookup(lp), Location::Unmapped);
        }
        assert_eq!(pt.logical_pages(), 16);
        pt.check_consistency().unwrap();
    }

    #[test]
    fn map_flash_roundtrip() {
        let mut pt = table();
        let loc = FlashLocation {
            segment: 2,
            page: 3,
        };
        pt.map_flash(7, loc);
        assert_eq!(pt.lookup(7), Location::Flash(loc));
        assert_eq!(pt.logical_at(loc), Some(7));
        pt.check_consistency().unwrap();
    }

    #[test]
    fn remap_clears_old_reverse_entry() {
        let mut pt = table();
        let a = FlashLocation {
            segment: 0,
            page: 0,
        };
        let b = FlashLocation {
            segment: 1,
            page: 5,
        };
        pt.map_flash(3, a);
        pt.map_flash(3, b);
        assert_eq!(pt.logical_at(a), None);
        assert_eq!(pt.logical_at(b), Some(3));
        pt.check_consistency().unwrap();
    }

    #[test]
    fn map_sram_clears_reverse() {
        let mut pt = table();
        let a = FlashLocation {
            segment: 0,
            page: 1,
        };
        pt.map_flash(2, a);
        pt.map_sram(2);
        assert_eq!(pt.lookup(2), Location::Sram);
        assert_eq!(pt.logical_at(a), None);
        pt.check_consistency().unwrap();
    }

    #[test]
    fn unmap_restores_initial_state() {
        let mut pt = table();
        pt.map_flash(
            1,
            FlashLocation {
                segment: 3,
                page: 7,
            },
        );
        pt.unmap(1);
        assert_eq!(pt.lookup(1), Location::Unmapped);
        assert_eq!(pt.resident_count(3), 0);
        pt.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_mapping_a_physical_page_panics() {
        let mut pt = table();
        let loc = FlashLocation {
            segment: 0,
            page: 0,
        };
        pt.map_flash(1, loc);
        pt.map_flash(2, loc);
    }

    #[test]
    fn residents_in_page_order() {
        let mut pt = table();
        pt.map_flash(
            10,
            FlashLocation {
                segment: 1,
                page: 6,
            },
        );
        pt.map_flash(
            11,
            FlashLocation {
                segment: 1,
                page: 2,
            },
        );
        pt.map_flash(
            12,
            FlashLocation {
                segment: 1,
                page: 4,
            },
        );
        let r = pt.residents_of(1);
        assert_eq!(r, vec![(2, 11), (4, 12), (6, 10)]);
        assert_eq!(pt.resident_count(1), 3);
    }

    #[test]
    fn sram_accounting_six_bytes_per_entry() {
        assert_eq!(table().sram_bytes(), 16 * 6);
    }

    #[test]
    fn idempotent_same_mapping() {
        let mut pt = table();
        let loc = FlashLocation {
            segment: 2,
            page: 2,
        };
        pt.map_flash(5, loc);
        pt.map_flash(5, loc); // same pair: allowed
        assert_eq!(pt.logical_at(loc), Some(5));
        pt.check_consistency().unwrap();
    }
}
