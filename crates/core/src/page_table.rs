//! The logical-to-physical page table (§3.1, §3.3).
//!
//! "A page table maintains a mapping between the linear logical address
//! space presented to the host and the physical address space of the Flash
//! array." The table lives in battery-backed SRAM because mappings change
//! on every copy-on-write and must update in place.
//!
//! Besides the forward map, the controller needs the reverse map — which
//! logical page a physical Flash page holds — to repoint mappings during
//! cleaning. Both directions are maintained here under a single invariant:
//! they are mutually consistent bijections on the Flash-resident pages.

use crate::addr::{FlashLocation, Location, LogicalPage};
use envy_flash::FlashGeometry;

const NO_PAGE: u64 = u64::MAX;

/// Forward (logical → physical) and reverse (physical → logical) page
/// mappings.
///
/// # Example
///
/// ```
/// use envy_core::page_table::PageTable;
/// use envy_core::addr::{FlashLocation, Location};
/// use envy_flash::FlashGeometry;
///
/// let geo = FlashGeometry::new(1, 2, 4, 64).unwrap();
/// let mut pt = PageTable::new(8, &geo);
/// let loc = FlashLocation { segment: 1, page: 2 };
/// pt.map_flash(5, loc);
/// assert_eq!(pt.lookup(5), Location::Flash(loc));
/// assert_eq!(pt.logical_at(loc), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    forward: Vec<Location>,
    /// `reverse[segment][page]` = logical page stored there, or `NO_PAGE`.
    reverse: Vec<Vec<u64>>,
    pages_per_segment: u32,
}

impl PageTable {
    /// Create a table for `logical_pages` logical pages over the given
    /// Flash geometry, with everything unmapped.
    pub fn new(logical_pages: u64, geo: &FlashGeometry) -> PageTable {
        PageTable {
            forward: vec![Location::Unmapped; logical_pages as usize],
            reverse: (0..geo.segments())
                .map(|_| vec![NO_PAGE; geo.pages_per_segment() as usize])
                .collect(),
            pages_per_segment: geo.pages_per_segment(),
        }
    }

    /// Number of logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Current location of a logical page.
    ///
    /// # Panics
    ///
    /// Panics if `lp` is out of range.
    pub fn lookup(&self, lp: LogicalPage) -> Location {
        self.forward[lp as usize]
    }

    /// The logical page stored at a physical location, if any.
    pub fn logical_at(&self, loc: FlashLocation) -> Option<LogicalPage> {
        let lp = self.reverse[loc.segment as usize][loc.page as usize];
        (lp != NO_PAGE).then_some(lp)
    }

    /// Point a logical page at a Flash location (atomic repoint: the old
    /// reverse entry, if any, is cleared).
    ///
    /// # Panics
    ///
    /// Panics if the destination already holds a different logical page —
    /// the controller must never double-map a physical page.
    pub fn map_flash(&mut self, lp: LogicalPage, loc: FlashLocation) {
        let dest = &mut self.reverse[loc.segment as usize][loc.page as usize];
        assert!(
            *dest == NO_PAGE || *dest == lp,
            "physical page already holds logical page {dest}"
        );
        if let Location::Flash(old) = self.forward[lp as usize] {
            self.reverse[old.segment as usize][old.page as usize] = NO_PAGE;
        }
        self.forward[lp as usize] = Location::Flash(loc);
        self.reverse[loc.segment as usize][loc.page as usize] = lp;
    }

    /// Point a logical page at the SRAM write buffer, clearing any Flash
    /// reverse mapping.
    pub fn map_sram(&mut self, lp: LogicalPage) {
        if let Location::Flash(old) = self.forward[lp as usize] {
            self.reverse[old.segment as usize][old.page as usize] = NO_PAGE;
        }
        self.forward[lp as usize] = Location::Sram;
    }

    /// Return a logical page to the unmapped state.
    pub fn unmap(&mut self, lp: LogicalPage) {
        if let Location::Flash(old) = self.forward[lp as usize] {
            self.reverse[old.segment as usize][old.page as usize] = NO_PAGE;
        }
        self.forward[lp as usize] = Location::Unmapped;
    }

    /// Logical pages resident in a segment, in physical page order.
    /// This is the order the cleaner copies them in (§4.3: "when cleaning
    /// a segment, the order of the pages is maintained").
    pub fn residents_of(&self, segment: u32) -> Vec<(u32, LogicalPage)> {
        self.reverse[segment as usize]
            .iter()
            .enumerate()
            .filter_map(|(page, &lp)| (lp != NO_PAGE).then_some((page as u32, lp)))
            .collect()
    }

    /// Number of logical pages resident in a segment.
    pub fn resident_count(&self, segment: u32) -> u32 {
        self.reverse[segment as usize]
            .iter()
            .filter(|&&lp| lp != NO_PAGE)
            .count() as u32
    }

    /// SRAM footprint of the table at the paper's 6 bytes per mapping.
    pub fn sram_bytes(&self) -> u64 {
        self.forward.len() as u64 * 6
    }

    /// Check forward/reverse consistency; used by tests and recovery.
    ///
    /// Returns a description of the first violation found.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (lp, loc) in self.forward.iter().enumerate() {
            if let Location::Flash(f) = loc {
                if f.page >= self.pages_per_segment || f.segment as usize >= self.reverse.len() {
                    return Err(format!("logical page {lp} maps out of range"));
                }
                let back = self.reverse[f.segment as usize][f.page as usize];
                if back != lp as u64 {
                    return Err(format!(
                        "logical page {lp} maps to ({}, {}) but reverse holds {back}",
                        f.segment, f.page
                    ));
                }
            }
        }
        for (seg, pages) in self.reverse.iter().enumerate() {
            for (page, &lp) in pages.iter().enumerate() {
                if lp != NO_PAGE {
                    let fwd = self.forward.get(lp as usize).copied();
                    match fwd {
                        Some(Location::Flash(f))
                            if f.segment as usize == seg && f.page as usize == page => {}
                        _ => {
                            return Err(format!(
                                "reverse entry ({seg}, {page}) -> {lp} not mirrored forward"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        let geo = FlashGeometry::new(1, 4, 8, 64).unwrap();
        PageTable::new(16, &geo)
    }

    #[test]
    fn starts_unmapped() {
        let pt = table();
        for lp in 0..16 {
            assert_eq!(pt.lookup(lp), Location::Unmapped);
        }
        assert_eq!(pt.logical_pages(), 16);
        pt.check_consistency().unwrap();
    }

    #[test]
    fn map_flash_roundtrip() {
        let mut pt = table();
        let loc = FlashLocation {
            segment: 2,
            page: 3,
        };
        pt.map_flash(7, loc);
        assert_eq!(pt.lookup(7), Location::Flash(loc));
        assert_eq!(pt.logical_at(loc), Some(7));
        pt.check_consistency().unwrap();
    }

    #[test]
    fn remap_clears_old_reverse_entry() {
        let mut pt = table();
        let a = FlashLocation {
            segment: 0,
            page: 0,
        };
        let b = FlashLocation {
            segment: 1,
            page: 5,
        };
        pt.map_flash(3, a);
        pt.map_flash(3, b);
        assert_eq!(pt.logical_at(a), None);
        assert_eq!(pt.logical_at(b), Some(3));
        pt.check_consistency().unwrap();
    }

    #[test]
    fn map_sram_clears_reverse() {
        let mut pt = table();
        let a = FlashLocation {
            segment: 0,
            page: 1,
        };
        pt.map_flash(2, a);
        pt.map_sram(2);
        assert_eq!(pt.lookup(2), Location::Sram);
        assert_eq!(pt.logical_at(a), None);
        pt.check_consistency().unwrap();
    }

    #[test]
    fn unmap_restores_initial_state() {
        let mut pt = table();
        pt.map_flash(
            1,
            FlashLocation {
                segment: 3,
                page: 7,
            },
        );
        pt.unmap(1);
        assert_eq!(pt.lookup(1), Location::Unmapped);
        assert_eq!(pt.resident_count(3), 0);
        pt.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_mapping_a_physical_page_panics() {
        let mut pt = table();
        let loc = FlashLocation {
            segment: 0,
            page: 0,
        };
        pt.map_flash(1, loc);
        pt.map_flash(2, loc);
    }

    #[test]
    fn residents_in_page_order() {
        let mut pt = table();
        pt.map_flash(
            10,
            FlashLocation {
                segment: 1,
                page: 6,
            },
        );
        pt.map_flash(
            11,
            FlashLocation {
                segment: 1,
                page: 2,
            },
        );
        pt.map_flash(
            12,
            FlashLocation {
                segment: 1,
                page: 4,
            },
        );
        let r = pt.residents_of(1);
        assert_eq!(r, vec![(2, 11), (4, 12), (6, 10)]);
        assert_eq!(pt.resident_count(1), 3);
    }

    #[test]
    fn sram_accounting_six_bytes_per_entry() {
        assert_eq!(table().sram_bytes(), 16 * 6);
    }

    #[test]
    fn idempotent_same_mapping() {
        let mut pt = table();
        let loc = FlashLocation {
            segment: 2,
            page: 2,
        };
        pt.map_flash(5, loc);
        pt.map_flash(5, loc); // same pair: allowed
        assert_eq!(pt.logical_at(loc), Some(5));
        pt.check_consistency().unwrap();
    }
}
