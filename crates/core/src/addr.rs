//! Address arithmetic: logical byte addresses, logical pages, and physical
//! Flash locations.

/// A logical page number in the host-visible linear array.
pub type LogicalPage = u64;

/// A physical page location in the Flash array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashLocation {
    /// Physical segment index.
    pub segment: u32,
    /// Page index within the segment.
    pub page: u32,
}

/// Where a logical page's current (authoritative) copy lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Never written: reads observe erased (0xFF) bytes.
    Unmapped,
    /// The live copy is in Flash.
    Flash(FlashLocation),
    /// The live copy is in the SRAM write buffer.
    Sram,
}

/// Splits byte addresses into (page, offset) pairs for a given page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrMap {
    page_bytes: u64,
    /// `log2(page_bytes)` when the page size is a power of two (every
    /// shipped geometry), so the per-access page/offset split is a
    /// shift/mask instead of two 64-bit divisions on the timed hot path.
    shift: Option<u32>,
}

impl AddrMap {
    /// Create a map for `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn new(page_bytes: u32) -> AddrMap {
        assert!(page_bytes > 0, "page size must be non-zero");
        AddrMap {
            page_bytes: page_bytes as u64,
            shift: page_bytes
                .is_power_of_two()
                .then(|| page_bytes.trailing_zeros()),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// The logical page containing `addr`.
    #[inline]
    pub fn page_of(&self, addr: u64) -> LogicalPage {
        match self.shift {
            Some(s) => addr >> s,
            None => addr / self.page_bytes,
        }
    }

    /// Byte offset of `addr` within its page.
    #[inline]
    pub fn offset_of(&self, addr: u64) -> usize {
        match self.shift {
            Some(_) => (addr & (self.page_bytes - 1)) as usize,
            None => (addr % self.page_bytes) as usize,
        }
    }

    /// Split `[addr, addr + len)` into per-page `(page, offset, len)`
    /// chunks, in address order.
    pub fn chunks(&self, addr: u64, len: usize) -> ChunkIter {
        ChunkIter {
            map: *self,
            addr,
            remaining: len,
        }
    }
}

/// Iterator over per-page chunks of a byte range. See [`AddrMap::chunks`].
#[derive(Debug, Clone)]
pub struct ChunkIter {
    map: AddrMap,
    addr: u64,
    remaining: usize,
}

/// One per-page piece of a byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Logical page.
    pub page: LogicalPage,
    /// Offset within the page.
    pub offset: usize,
    /// Length of this piece.
    pub len: usize,
}

impl Iterator for ChunkIter {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        if self.remaining == 0 {
            return None;
        }
        let page = self.map.page_of(self.addr);
        let offset = self.map.offset_of(self.addr);
        let room = self.map.page_bytes as usize - offset;
        let len = room.min(self.remaining);
        self.addr += len as u64;
        self.remaining -= len;
        Some(Chunk { page, offset, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_offset() {
        let m = AddrMap::new(256);
        assert_eq!(m.page_of(0), 0);
        assert_eq!(m.page_of(255), 0);
        assert_eq!(m.page_of(256), 1);
        assert_eq!(m.offset_of(257), 1);
        assert_eq!(m.page_bytes(), 256);
    }

    #[test]
    fn chunks_within_one_page() {
        let m = AddrMap::new(256);
        let chunks: Vec<Chunk> = m.chunks(10, 20).collect();
        assert_eq!(
            chunks,
            vec![Chunk {
                page: 0,
                offset: 10,
                len: 20
            }]
        );
    }

    #[test]
    fn chunks_spanning_pages() {
        let m = AddrMap::new(16);
        let chunks: Vec<Chunk> = m.chunks(12, 24).collect();
        assert_eq!(
            chunks,
            vec![
                Chunk {
                    page: 0,
                    offset: 12,
                    len: 4
                },
                Chunk {
                    page: 1,
                    offset: 0,
                    len: 16
                },
                Chunk {
                    page: 2,
                    offset: 0,
                    len: 4
                },
            ]
        );
        let total: usize = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 24);
    }

    #[test]
    fn zero_length_chunks() {
        let m = AddrMap::new(16);
        assert_eq!(m.chunks(5, 0).count(), 0);
    }

    #[test]
    fn chunk_boundaries_are_exact() {
        let m = AddrMap::new(8);
        let chunks: Vec<Chunk> = m.chunks(8, 8).collect();
        assert_eq!(
            chunks,
            vec![Chunk {
                page: 1,
                offset: 0,
                len: 8
            }]
        );
    }
}
