//! The timing model: background-operation scheduling, suspension, and
//! latency accounting.
//!
//! The eNVy controller hides Flash's long operations from the host (§3.4,
//! §5.1): flushes, cleaning copies and erases are executed by the cleaning
//! processor one at a time. A host Flash access suspends the in-progress
//! long operation and is serviced at memory speed; the operation resumes
//! only after a short back-off ("waits a few microseconds before resuming
//! … to avoid spurious restarts during bursts of I/O activity"). During a
//! burst of host accesses the resume point keeps moving out, so background
//! work effectively runs in the gaps between transactions — which is why
//! the paper's §5.3 busy-time breakdown (reads + cleaning + flushing +
//! erasing) sums to 100 % of wall-clock at saturation.
//!
//! The engine performs state changes logically and emits [`BgOp`]s — the
//! device time each step costs. [`TimingState`] replays that time against
//! the simulated clock and stalls host *writes* when the backlog of
//! un-executed flushes exceeds the write buffer's headroom — the condition
//! behind the paper's post-saturation write-latency jump (Figure 15).

use crate::stats::EnvyStats;
use envy_sim::time::Ns;
use std::collections::VecDeque;

/// What kind of background work a [`BgOp`] represents (for §5.3 busy-time
/// attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgKind {
    /// Programming a page flushed from the write buffer.
    Flush,
    /// Programming a page copied by the cleaner (including locality
    /// redistribution and shadow relocation).
    CleanCopy,
    /// Erasing a segment.
    Erase,
    /// Programming a page moved by wear leveling.
    WearCopy,
}

/// One unit of background device work emitted by the engine — or a run
/// of `count` identical units (a cleaning sweep programs every resident
/// of a victim segment at the same per-page cost, so the engine emits
/// one batched record instead of up to a segment's worth of entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgOp {
    /// The bank the operation occupies.
    pub bank: u32,
    /// Operation class.
    pub kind: BgKind,
    /// Device time of each unit.
    pub duration: Ns,
    /// Number of identical units (≥ 1 for meaningful work; 0 is a no-op).
    pub count: u32,
}

impl BgOp {
    /// A single background operation.
    pub fn once(bank: u32, kind: BgKind, duration: Ns) -> BgOp {
        BgOp {
            bank,
            kind,
            duration,
            count: 1,
        }
    }
}

/// Coalesces a stream of per-page background operations into batched
/// [`BgOp`] records: consecutive operations with the same bank, kind and
/// duration become one record with `count` incremented. The emitted
/// stream replays through [`TimingState`] with an identical state
/// trajectory to the per-op stream — batching compresses representation,
/// not behavior.
#[derive(Debug, Default)]
pub struct BgBatcher {
    run: Option<BgOp>,
}

impl BgBatcher {
    /// An empty batcher.
    pub fn new() -> BgBatcher {
        BgBatcher::default()
    }

    /// Append one operation, extending the current run or flushing it.
    pub fn add(&mut self, bank: u32, kind: BgKind, duration: Ns, ops: &mut Vec<BgOp>) {
        match &mut self.run {
            Some(run) if run.bank == bank && run.kind == kind && run.duration == duration => {
                run.count += 1;
            }
            _ => {
                if let Some(run) = self.run.take() {
                    ops.push(run);
                }
                self.run = Some(BgOp::once(bank, kind, duration));
            }
        }
    }

    /// Emit the final run. Must be called before `ops` is consumed.
    pub fn finish(&mut self, ops: &mut Vec<BgOp>) {
        if let Some(run) = self.run.take() {
            ops.push(run);
        }
    }
}

/// A run of `count` identical queued sub-operations of `per` each.
/// [`TimingState`] executes sub-operations one at a time — a batch is a
/// compressed queue segment, never a single long operation, so op-boundary
/// effects (suspension checks, flush-pending decrements) happen exactly
/// as they would with `count` individual entries.
#[derive(Debug, Clone, Copy)]
struct Batch {
    kind: BgKind,
    bank: u32,
    /// Scaled (post-`parallel_ops`) duration of each sub-operation.
    per: Ns,
    count: u32,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    kind: BgKind,
    bank: u32,
    remaining: Ns,
}

/// Replays background device time against the simulated clock.
#[derive(Debug, Clone)]
pub struct TimingState {
    cursor: Ns,
    queue: VecDeque<Batch>,
    current: Option<Pending>,
    pending_flushes: usize,
    parallel_ops: u32,
    resume_gap: Ns,
    /// Background work may not execute before this instant (suspension).
    suspended_until: Ns,
}

impl TimingState {
    /// Create an idle timeline.
    pub fn new(parallel_ops: u32, resume_gap: Ns) -> TimingState {
        TimingState {
            cursor: Ns::ZERO,
            queue: VecDeque::new(),
            current: None,
            pending_flushes: 0,
            parallel_ops: parallel_ops.max(1),
            resume_gap,
            suspended_until: Ns::ZERO,
        }
    }

    /// Queue background work emitted by the engine. Program and erase
    /// durations are divided by the §6 parallel-operation factor,
    /// rounding up so no operation loses time to truncation (a 4 µs
    /// program at `parallel_ops = 3` costs 1334 ns, never 0).
    pub fn enqueue(&mut self, ops: &[BgOp]) {
        for op in ops {
            self.enqueue_batch(op.bank, op.kind, op.count, op.duration);
        }
    }

    /// Queue `count` identical background operations as one batch entry:
    /// exactly equivalent to pushing `count` single operations — the
    /// backlog grows by `count × div_ceil(duration, parallel_ops)` and
    /// execution still settles one sub-operation at a time — but with
    /// O(1) queue traffic instead of O(count).
    pub fn enqueue_batch(&mut self, bank: u32, kind: BgKind, count: u32, duration: Ns) {
        if count == 0 {
            return;
        }
        if kind == BgKind::Flush {
            self.pending_flushes += count as usize;
        }
        self.queue.push_back(Batch {
            kind,
            bank,
            per: Ns::from_nanos(duration.as_nanos().div_ceil(self.parallel_ops as u64)),
            count,
        });
    }

    /// Take the next sub-operation off the queue head (decrementing the
    /// head batch's count), preserving per-op queue dynamics.
    fn next_subop(&mut self) -> Option<Pending> {
        let front = self.queue.front_mut()?;
        let sub = Pending {
            kind: front.kind,
            bank: front.bank,
            remaining: front.per,
        };
        if front.count <= 1 {
            self.queue.pop_front();
        } else {
            front.count -= 1;
        }
        Some(sub)
    }

    /// Number of flush programs not yet executed.
    pub fn pending_flushes(&self) -> usize {
        self.pending_flushes
    }

    /// Total backlog of background device time.
    pub fn backlog(&self) -> Ns {
        let queued: Ns = self
            .queue
            .iter()
            .map(|b| Ns::from_nanos(b.per.as_nanos() * b.count as u64))
            .sum();
        queued + self.current.map_or(Ns::ZERO, |c| c.remaining)
    }

    fn attribute(stats: &mut EnvyStats, kind: BgKind, t: Ns) {
        match kind {
            BgKind::Flush => stats.time_flush += t,
            BgKind::CleanCopy | BgKind::WearCopy => stats.time_clean += t,
            BgKind::Erase => stats.time_erase += t,
        }
    }

    /// Execute background work in the window up to `now`, honouring any
    /// suspension in force. Time spent suspended while work was pending
    /// is attributed to suspension overhead.
    #[inline]
    pub fn run_until(&mut self, now: Ns, stats: &mut EnvyStats) {
        // Idle fast path: with no in-progress operation and an empty
        // queue the loop below would only advance the cursor. Most host
        // accesses in a read-heavy workload land here.
        if self.current.is_none() && self.queue.is_empty() {
            if self.cursor < now {
                self.cursor = now;
            }
            return;
        }
        self.run_until_busy(now, stats)
    }

    /// [`TimingState::run_until`]'s settling loop when work is pending.
    #[inline(never)]
    fn run_until_busy(&mut self, now: Ns, stats: &mut EnvyStats) {
        while self.cursor < now {
            if self.current.is_none() {
                self.current = self.next_subop();
            }
            if self.current.is_none() {
                self.cursor = now;
                return;
            }
            if self.cursor < self.suspended_until {
                let skip = self.suspended_until.min(now) - self.cursor;
                self.cursor += skip;
                stats.time_suspend += skip;
                continue;
            }
            let op = self.current.as_mut().expect("checked above");
            let window = now - self.cursor;
            let step = op.remaining.min(window);
            op.remaining -= step;
            self.cursor += step;
            let done = op.remaining == Ns::ZERO;
            let kind = op.kind;
            Self::attribute(stats, kind, step);
            if done {
                if kind == BgKind::Flush {
                    self.pending_flushes -= 1;
                }
                self.current = None;
            }
        }
    }

    /// Account for a host Flash access at `now` (`bank` is `None` for
    /// SRAM accesses, which do not touch the Flash array and never
    /// suspend anything).
    ///
    /// Banks are independent (§3.4, §6): only an access to the bank the
    /// in-progress operation occupies collides with it — other banks'
    /// arrays stay readable and the background operation keeps running.
    ///
    /// Returns `true` only when the access interrupted a *running*
    /// operation on its own bank — that access pays the suspend-command
    /// latency; same-bank accesses within an ongoing suspension burst
    /// find the array already readable and merely push the resume point
    /// out.
    #[inline]
    pub fn host_access(&mut self, now: Ns, bank: Option<u32>, stats: &mut EnvyStats) -> bool {
        self.run_until(now, stats);
        let Some(bank) = bank else {
            return false;
        };
        let busy = self
            .current
            .as_ref()
            .is_some_and(|op| op.remaining > Ns::ZERO && op.bank == bank);
        if !busy {
            return false;
        }
        let fresh_suspend = now >= self.suspended_until;
        self.suspended_until = now + self.resume_gap;
        if fresh_suspend {
            stats.suspensions.incr();
        }
        fresh_suspend
    }

    /// Synchronously execute backlog until at most `max_pending` flush
    /// programs remain, ignoring any suspension (the blocked host write
    /// forces the controller to catch up); returns the device time
    /// consumed. This is the paper's buffer-full path: "the controller
    /// must flush a page to Flash before it can proceed" (§5.4).
    pub fn drain_flushes(&mut self, max_pending: usize, stats: &mut EnvyStats) -> Ns {
        let mut spent = Ns::ZERO;
        while self.pending_flushes > max_pending {
            if self.current.is_none() {
                self.current = self.next_subop();
            }
            let Some(op) = self.current.take() else { break };
            spent += op.remaining;
            Self::attribute(stats, op.kind, op.remaining);
            if op.kind == BgKind::Flush {
                self.pending_flushes -= 1;
            }
        }
        self.cursor += spent;
        spent
    }

    /// The timeline's internal clock (how far background work has been
    /// settled).
    pub fn cursor(&self) -> Ns {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: BgKind, us: u64, bank: u32) -> BgOp {
        BgOp::once(bank, kind, Ns::from_micros(us))
    }

    #[test]
    fn idle_time_executes_backlog() {
        let mut t = TimingState::new(1, Ns::from_micros(2));
        let mut stats = EnvyStats::default();
        t.enqueue(&[op(BgKind::Flush, 4, 0)]);
        assert_eq!(t.pending_flushes(), 1);
        t.run_until(Ns::from_micros(10), &mut stats);
        assert_eq!(t.pending_flushes(), 0);
        assert_eq!(stats.time_flush, Ns::from_micros(4));
        assert_eq!(t.backlog(), Ns::ZERO);
    }

    #[test]
    fn partial_windows_accumulate() {
        let mut t = TimingState::new(1, Ns::ZERO);
        let mut stats = EnvyStats::default();
        t.enqueue(&[op(BgKind::Erase, 10, 0)]);
        t.run_until(Ns::from_micros(4), &mut stats);
        assert_eq!(t.backlog(), Ns::from_micros(6));
        t.run_until(Ns::from_micros(12), &mut stats);
        assert_eq!(t.backlog(), Ns::ZERO);
        assert_eq!(stats.time_erase, Ns::from_micros(10));
    }

    #[test]
    fn suspension_freezes_background_work() {
        let mut t = TimingState::new(1, Ns::from_micros(2));
        let mut stats = EnvyStats::default();
        t.enqueue(&[op(BgKind::CleanCopy, 4, 3)]);
        // Run 1us in; op has 3us left.
        t.run_until(Ns::from_micros(1), &mut stats);
        assert_eq!(t.backlog(), Ns::from_micros(3));
        // Host Flash access to the op's bank suspends it (pays the
        // penalty).
        assert!(t.host_access(Ns::from_micros(1), Some(3), &mut stats));
        assert_eq!(stats.suspensions.get(), 1);
        // 500ns later, within the burst, same bank: array already
        // readable, no penalty, resume point pushed out; no background
        // progress.
        assert!(!t.host_access(Ns::from_nanos(1_500), Some(3), &mut stats));
        assert_eq!(stats.suspensions.get(), 1);
        assert_eq!(t.backlog(), Ns::from_micros(3));
        // SRAM accesses never suspend.
        assert!(!t.host_access(Ns::from_nanos(1_600), None, &mut stats));
        // After the burst, the op resumes at 1.5us + 2us = 3.5us and
        // finishes its remaining 3us at 6.5us.
        t.run_until(Ns::from_micros(10), &mut stats);
        assert_eq!(t.backlog(), Ns::ZERO);
        assert_eq!(stats.time_clean, Ns::from_micros(4));
        // Suspended-with-work-pending time: 1.0us → 3.5us = 2.5us.
        assert_eq!(stats.time_suspend, Ns::from_nanos(2_500));
    }

    /// Regression test: `BgOp::bank` used to be dropped on the floor, so
    /// a host access to bank A suspended a background operation running
    /// on bank B, contradicting §3.4/§6 bank independence. An access to
    /// a different bank must neither suspend the operation nor delay it.
    #[test]
    fn suspension_only_on_matching_bank() {
        let mut t = TimingState::new(1, Ns::from_micros(2));
        let mut stats = EnvyStats::default();
        t.enqueue(&[op(BgKind::CleanCopy, 4, 2)]);
        t.run_until(Ns::from_micros(1), &mut stats);
        assert_eq!(t.backlog(), Ns::from_micros(3));
        // Bank 5 access: the op occupies bank 2, so bank 5's array is
        // free — no suspension, no penalty.
        assert!(!t.host_access(Ns::from_micros(1), Some(5), &mut stats));
        assert_eq!(stats.suspensions.get(), 0);
        // The operation keeps running: it finishes its remaining 3us at
        // 4us, with no suspension gap.
        t.run_until(Ns::from_micros(10), &mut stats);
        assert_eq!(t.backlog(), Ns::ZERO);
        assert_eq!(stats.time_clean, Ns::from_micros(4));
        assert_eq!(stats.time_suspend, Ns::ZERO);
        // A matching-bank access against a fresh op does suspend.
        t.enqueue(&[op(BgKind::CleanCopy, 4, 2)]);
        t.run_until(Ns::from_micros(11), &mut stats);
        assert!(t.host_access(Ns::from_micros(11), Some(2), &mut stats));
        assert_eq!(stats.suspensions.get(), 1);
    }

    /// Regression test: `enqueue` used truncating division by
    /// `parallel_ops`, losing up to `parallel_ops - 1` ns per operation
    /// (short ops could become zero-duration). With round-up division
    /// the attributed background time is conserved: every op costs
    /// `ceil(duration / parallel_ops)` and no op with nonzero duration
    /// vanishes.
    #[test]
    fn enqueue_rounds_durations_up_conserving_time() {
        for parallel in [1u32, 2, 3, 4, 7, 16] {
            let mut t = TimingState::new(parallel, Ns::ZERO);
            let mut stats = EnvyStats::default();
            // Durations chosen to not divide evenly: 1ns, 5ns, 4001ns.
            let ops = [
                BgOp::once(0, BgKind::Flush, Ns::from_nanos(1)),
                BgOp::once(1, BgKind::CleanCopy, Ns::from_nanos(5)),
                BgOp::once(2, BgKind::Erase, Ns::from_nanos(4_001)),
            ];
            t.enqueue(&ops);
            let expected: u64 = ops
                .iter()
                .map(|o| o.duration.as_nanos().div_ceil(parallel as u64))
                .sum();
            assert_eq!(t.backlog(), Ns::from_nanos(expected), "p={parallel}");
            t.run_until(Ns::from_secs(1), &mut stats);
            let attributed = stats.time_flush + stats.time_clean + stats.time_erase;
            assert_eq!(attributed, Ns::from_nanos(expected), "p={parallel}");
            // No op with nonzero duration may vanish: each contributes
            // at least 1ns to its own attribution class.
            assert!(stats.time_flush >= Ns::from_nanos(1), "p={parallel}");
            assert!(stats.time_clean >= Ns::from_nanos(1), "p={parallel}");
            assert!(stats.time_erase >= Ns::from_nanos(1), "p={parallel}");
        }
    }

    /// `enqueue_batch(bank, kind, n, d)` must be indistinguishable from
    /// enqueueing `n` single ops — same backlog, same attribution, same
    /// suspension and flush-drain dynamics — across non-dividing
    /// durations and parallelism factors (the batched form still costs
    /// `n × div_ceil(d, parallel_ops)`, extending the conservation
    /// property of `enqueue_rounds_durations_up_conserving_time`).
    #[test]
    fn enqueue_batch_equals_per_op_loop() {
        for parallel in [1u32, 2, 3, 7] {
            for (count, nanos) in [(1u32, 1u64), (3, 5), (5, 4_001), (64, 333)] {
                let d = Ns::from_nanos(nanos);
                let mut batched = TimingState::new(parallel, Ns::from_nanos(40));
                let mut looped = TimingState::new(parallel, Ns::from_nanos(40));
                for kind in [BgKind::CleanCopy, BgKind::Flush] {
                    batched.enqueue_batch(0, kind, count, d);
                    for _ in 0..count {
                        looped.enqueue(&[BgOp::once(0, kind, d)]);
                    }
                }
                let mut sb = EnvyStats::default();
                let mut sl = EnvyStats::default();
                assert_eq!(
                    batched.backlog(),
                    looped.backlog(),
                    "p={parallel} n={count}"
                );
                assert_eq!(batched.pending_flushes(), looped.pending_flushes());
                // Drive both through the same host-visible schedule,
                // including an instant that lands exactly on a sub-op
                // boundary (t = per) — a batch must expose the same
                // "between ops" idle instant a per-op queue does.
                let per = nanos.div_ceil(parallel as u64);
                for t in [per / 2, per, per + 3, per * 2, per * (count as u64) + 9] {
                    let t = Ns::from_nanos(t);
                    batched.run_until(t, &mut sb);
                    looped.run_until(t, &mut sl);
                    assert_eq!(
                        batched.host_access(t, Some(0), &mut sb),
                        looped.host_access(t, Some(0), &mut sl),
                        "p={parallel} n={count} t={t:?}"
                    );
                    assert_eq!(batched.backlog(), looped.backlog());
                    assert_eq!(batched.cursor(), looped.cursor());
                }
                assert_eq!(
                    batched.drain_flushes(0, &mut sb),
                    looped.drain_flushes(0, &mut sl)
                );
                assert_eq!(batched.pending_flushes(), 0);
                assert_eq!(
                    format!("{sb:?}"),
                    format!("{sl:?}"),
                    "p={parallel} n={count}"
                );
            }
        }
    }

    /// `BgBatcher` merges only runs of identical (bank, kind, duration)
    /// operations and preserves stream order.
    #[test]
    fn batcher_coalesces_identical_runs_in_order() {
        let mut ops = Vec::new();
        let mut b = BgBatcher::new();
        let d4 = Ns::from_micros(4);
        let d9 = Ns::from_micros(9);
        b.add(0, BgKind::CleanCopy, d4, &mut ops);
        b.add(0, BgKind::CleanCopy, d4, &mut ops);
        b.add(0, BgKind::CleanCopy, d9, &mut ops); // duration change splits
        b.add(1, BgKind::CleanCopy, d9, &mut ops); // bank change splits
        b.add(1, BgKind::Erase, d9, &mut ops); // kind change splits
        b.finish(&mut ops);
        assert_eq!(
            ops,
            vec![
                BgOp {
                    bank: 0,
                    kind: BgKind::CleanCopy,
                    duration: d4,
                    count: 2
                },
                BgOp::once(0, BgKind::CleanCopy, d9),
                BgOp::once(1, BgKind::CleanCopy, d9),
                BgOp::once(1, BgKind::Erase, d9),
            ]
        );
        // An unused batcher emits nothing.
        BgBatcher::new().finish(&mut ops);
        assert_eq!(ops.len(), 4);
    }

    #[test]
    fn no_suspension_when_idle() {
        let mut t = TimingState::new(1, Ns::from_micros(2));
        let mut stats = EnvyStats::default();
        assert!(!t.host_access(Ns::from_micros(5), Some(0), &mut stats));
        assert_eq!(stats.suspensions.get(), 0);
    }

    #[test]
    fn drain_flushes_charges_time_and_ignores_suspension() {
        let mut t = TimingState::new(1, Ns::from_micros(2));
        let mut stats = EnvyStats::default();
        t.enqueue(&[
            op(BgKind::CleanCopy, 4, 0),
            op(BgKind::Flush, 4, 0),
            op(BgKind::Flush, 4, 0),
        ]);
        t.run_until(Ns::from_nanos(100), &mut stats);
        t.host_access(Ns::from_nanos(100), Some(0), &mut stats); // suspend
                                                                 // Drain until at most 1 flush pending: executes the remaining
                                                                 // clean copy (3.9us) and the first flush (4us), suspension or not.
        let spent = t.drain_flushes(1, &mut stats);
        assert_eq!(spent, Ns::from_nanos(7_900));
        assert_eq!(t.pending_flushes(), 1);
        assert_eq!(stats.time_clean, Ns::from_micros(4));
        assert_eq!(stats.time_flush, Ns::from_micros(4));
    }

    #[test]
    fn parallel_ops_scale_durations() {
        let mut t = TimingState::new(4, Ns::ZERO);
        let mut stats = EnvyStats::default();
        t.enqueue(&[op(BgKind::Flush, 4, 0)]);
        assert_eq!(t.backlog(), Ns::from_micros(1)); // 4us / 4
        t.run_until(Ns::from_micros(1), &mut stats);
        assert_eq!(t.pending_flushes(), 0);
    }

    #[test]
    fn drain_flushes_accounts_pending_cursor_and_passing_ops() {
        let mut t = TimingState::new(1, Ns::ZERO);
        let mut stats = EnvyStats::default();
        t.enqueue(&[
            op(BgKind::CleanCopy, 4, 0),
            op(BgKind::Flush, 4, 1),
            op(BgKind::Flush, 4, 2),
            op(BgKind::Flush, 4, 3),
        ]);
        assert_eq!(t.pending_flushes(), 3);
        // Partially execute the clean copy: 2us done, 2us remaining.
        t.run_until(Ns::from_micros(2), &mut stats);
        assert_eq!(stats.time_clean, Ns::from_micros(2));
        assert_eq!(t.cursor(), Ns::from_micros(2));
        // Drain until one flush remains: finishes the partially-executed
        // current op (2us, attributed as cleaning — a non-flush op
        // drained in passing) plus two full flushes (8us).
        let spent = t.drain_flushes(1, &mut stats);
        assert_eq!(spent, Ns::from_micros(10));
        assert_eq!(t.pending_flushes(), 1);
        // Only the remaining portion of the current op is charged.
        assert_eq!(stats.time_clean, Ns::from_micros(4));
        assert_eq!(stats.time_flush, Ns::from_micros(8));
        // The cursor advances by exactly the drained device time.
        assert_eq!(t.cursor(), Ns::from_micros(12));
        assert_eq!(t.backlog(), Ns::from_micros(4));
        // Draining the rest completes the accounting.
        let spent = t.drain_flushes(0, &mut stats);
        assert_eq!(spent, Ns::from_micros(4));
        assert_eq!(t.pending_flushes(), 0);
        assert_eq!(stats.time_flush, Ns::from_micros(12));
        assert_eq!(t.backlog(), Ns::ZERO);
    }

    #[test]
    fn drain_flushes_with_partially_executed_flush() {
        let mut t = TimingState::new(1, Ns::ZERO);
        let mut stats = EnvyStats::default();
        t.enqueue(&[op(BgKind::Flush, 4, 0), op(BgKind::Flush, 4, 1)]);
        // 1us into the first flush.
        t.run_until(Ns::from_micros(1), &mut stats);
        assert_eq!(t.pending_flushes(), 2);
        // Draining to one pending completes only the current flush's
        // remaining 3us and decrements the pending count once.
        let spent = t.drain_flushes(1, &mut stats);
        assert_eq!(spent, Ns::from_micros(3));
        assert_eq!(t.pending_flushes(), 1);
        assert_eq!(stats.time_flush, Ns::from_micros(4));
        assert_eq!(t.cursor(), Ns::from_micros(4));
    }

    #[test]
    fn drain_with_nothing_pending_is_free() {
        let mut t = TimingState::new(1, Ns::ZERO);
        let mut stats = EnvyStats::default();
        assert_eq!(t.drain_flushes(0, &mut stats), Ns::ZERO);
    }

    #[test]
    fn idle_skip_attributes_nothing() {
        let mut t = TimingState::new(1, Ns::from_micros(2));
        let mut stats = EnvyStats::default();
        t.run_until(Ns::from_micros(50), &mut stats);
        assert_eq!(stats.time_suspend, Ns::ZERO);
        assert_eq!(t.cursor(), Ns::from_micros(50));
    }
}
