//! The linear-memory interface eNVy exposes (§1): "access to this
//! permanent storage system should be provided by means of word-sized
//! reads and writes, just as with conventional memory".
//!
//! Data structures built on top of eNVy (B-Trees, the RAM-disk layer)
//! program against [`Memory`] so they also run on plain RAM
//! ([`VecMemory`]) for differential testing.

use crate::error::EnvyError;

/// A byte-addressable, bounded linear memory.
pub trait Memory {
    /// Size of the address space in bytes.
    fn size(&self) -> u64;

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`] if the range exceeds the address space.
    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EnvyError>;

    /// Write `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`] if the range exceeds the address space.
    fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EnvyError>;
}

/// Plain-RAM implementation of [`Memory`] for tests and baselines.
#[derive(Debug, Clone)]
pub struct VecMemory {
    data: Vec<u8>,
}

impl VecMemory {
    /// Create a zeroed memory of `size` bytes.
    pub fn new(size: u64) -> VecMemory {
        VecMemory {
            data: vec![0; size as usize],
        }
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), EnvyError> {
        if addr + len as u64 > self.data.len() as u64 {
            return Err(EnvyError::OutOfBounds {
                addr,
                size: self.data.len() as u64,
            });
        }
        Ok(())
    }
}

impl Memory for VecMemory {
    fn size(&self) -> u64 {
        self.data.len() as u64
    }

    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EnvyError> {
        self.check(addr, buf.len())?;
        let start = addr as usize;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        Ok(())
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EnvyError> {
        self.check(addr, bytes.len())?;
        let start = addr as usize;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_memory_roundtrip() {
        let mut m = VecMemory::new(64);
        assert_eq!(m.size(), 64);
        m.write(10, &[1, 2, 3]).unwrap();
        let mut out = [0u8; 3];
        m.read(10, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn vec_memory_bounds() {
        let mut m = VecMemory::new(8);
        assert!(m.write(6, &[0; 3]).is_err());
        let mut buf = [0u8; 9];
        assert!(m.read(0, &mut buf).is_err());
        // Exactly at the boundary is fine.
        m.write(5, &[0; 3]).unwrap();
    }

    #[test]
    fn trait_object_usable() {
        let mut m = VecMemory::new(16);
        let mem: &mut dyn Memory = &mut m;
        mem.write(0, &[42]).unwrap();
        let mut b = [0u8];
        mem.read(0, &mut b).unwrap();
        assert_eq!(b[0], 42);
    }
}
