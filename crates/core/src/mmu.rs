//! The MMU mapping cache (§5.1).
//!
//! "A memory-management unit (MMU) acts as a cache of recently used
//! mappings to make this translation faster." A hit overlaps translation
//! with the access; a miss pays one SRAM page-table read.
//!
//! The cache is direct-mapped (the paper's controller is simple hardware).
//! It caches only *residency* — the controller consults the page table for
//! the physical address on the datapath in parallel — so entries are just
//! tags; what matters for timing is hit vs. miss, and for correctness that
//! remaps invalidate stale entries.

use crate::addr::LogicalPage;
use envy_sim::stats::Counter;
use envy_sync::{SharedWords, WordsView};

/// Tag value for an empty MMU slot. Logical page numbers are bounded far
/// below `u64::MAX` by the configuration's logical array size, so the
/// sentinel can never collide with a real tag; packing tags as bare `u64`
/// halves the table versus `Option<u64>` and drops the discriminant
/// compare from the per-access hit check.
pub(crate) const TAG_EMPTY: u64 = u64::MAX;

/// Direct-mapped translation cache with hit/miss accounting.
///
/// A zero-entry cache is legal and misses on every access (used to
/// quantify the MMU's benefit in ablation runs).
#[derive(Debug, Clone)]
pub struct Mmu {
    /// Tag words, shared with concurrent readers (a reader probing the
    /// cache only needs residency hints; hit/miss *accounting* stays on
    /// the writer, whose timing model is single-threaded by design).
    tags: SharedWords,
    /// `entries - 1` when the slot count is a power of two (every shipped
    /// configuration), so the per-access slot computation is a mask
    /// instead of a 64-bit modulo. The mapping is identical either way.
    mask: Option<u64>,
    hits: Counter,
    misses: Counter,
}

impl Mmu {
    /// Create a cache with `entries` direct-mapped slots.
    pub fn new(entries: usize) -> Mmu {
        Mmu {
            tags: SharedWords::new(entries, TAG_EMPTY),
            mask: (entries.is_power_of_two()).then(|| entries as u64 - 1),
            hits: Counter::default(),
            misses: Counter::default(),
        }
    }

    /// Number of slots.
    pub fn entries(&self) -> usize {
        self.tags.len()
    }

    #[inline]
    fn slot(&self, lp: LogicalPage) -> usize {
        match self.mask {
            Some(m) => (lp & m) as usize,
            None => (lp % self.tags.len() as u64) as usize,
        }
    }

    /// Look up a translation; records and returns whether it hit, and
    /// fills the slot on a miss.
    #[inline]
    pub fn access(&mut self, lp: LogicalPage) -> bool {
        if self.tags.is_empty() {
            self.misses.incr();
            return false;
        }
        debug_assert_ne!(lp, TAG_EMPTY, "logical page collides with the empty tag");
        let slot = self.slot(lp);
        if self.tags.get(slot) == lp {
            self.hits.incr();
            true
        } else {
            self.tags.set(slot, lp);
            self.misses.incr();
            false
        }
    }

    /// Non-mutating residency probe: whether `lp` currently hits, without
    /// touching the tag array or the hit/miss counters. This is the
    /// reader-thread variant of [`Mmu::access`] — concurrent readers may
    /// consult the cache but only the writer trains it.
    #[inline]
    pub fn peek(&self, lp: LogicalPage) -> bool {
        !self.tags.is_empty() && self.tags.get(self.slot(lp)) == lp
    }

    /// Reader handle to the tag words plus the slot mask, for lock-free
    /// concurrent residency probes.
    pub fn reader_tags(&self) -> (WordsView, Option<u64>) {
        (self.tags.view(), self.mask)
    }

    /// Drop a translation after its mapping changed (copy-on-write, flush,
    /// or cleaning moved the page).
    pub fn invalidate(&mut self, lp: LogicalPage) {
        if self.tags.is_empty() {
            return;
        }
        let slot = self.slot(lp);
        if self.tags.get(slot) == lp {
            self.tags.set(slot, TAG_EMPTY);
        }
    }

    /// Drop every translation (power failure: the MMU is volatile).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(TAG_EMPTY);
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Zero the hit/miss counters; cached tags are kept, so a warmed
    /// cache can be measured from a clean slate.
    pub fn reset_stats(&mut self) {
        self.hits = Counter::default();
        self.misses = Counter::default();
    }

    /// Hit fraction (0 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut m = Mmu::new(16);
        assert!(!m.access(5));
        assert!(m.access(5));
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 1);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_tags_evict() {
        let mut m = Mmu::new(4);
        assert!(!m.access(1));
        assert!(!m.access(5)); // same slot (1 % 4 == 5 % 4)
        assert!(!m.access(1)); // evicted
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut m = Mmu::new(8);
        m.access(3);
        m.invalidate(3);
        assert!(!m.access(3));
    }

    #[test]
    fn invalidate_wrong_page_is_noop() {
        let mut m = Mmu::new(8);
        m.access(3);
        m.invalidate(11); // same slot, different tag: must not clobber
        assert!(m.access(3));
    }

    #[test]
    fn invalidate_all_clears() {
        let mut m = Mmu::new(8);
        m.access(1);
        m.access(2);
        m.invalidate_all();
        assert!(!m.access(1));
        assert!(!m.access(2));
    }

    #[test]
    fn zero_entry_cache_always_misses() {
        let mut m = Mmu::new(0);
        assert!(!m.access(1));
        assert!(!m.access(1));
        assert_eq!(m.hit_rate(), 0.0);
        m.invalidate(1);
        m.invalidate_all();
    }
}
