//! Lock-free concurrent read path: a cloneable, `Send + Sync` snapshot
//! handle over a live [`EnvyStore`](crate::EnvyStore).
//!
//! A [`ReadView`] holds cheap atomic views of the structures a read
//! touches — the packed forward page table, the SRAM buffer index and
//! frame arena, and the Flash payload arena — plus the store's seqlock
//! epoch. Reads are *optimistic*: the view snapshots the epoch, copies
//! the bytes it needs with relaxed atomic loads, then validates that no
//! writer ran in between. On conflict the attempt is discarded and
//! retried, so a reader can never observe a torn page-table entry or a
//! half-relocated page; it only ever returns states the single writer has
//! published (even epoch).
//!
//! The view is untimed by design: it bypasses the latency model, MMU
//! cache counters and statistics entirely, which is what makes it safe
//! to run from any thread without the store lock — and what makes it
//! fast. Timed reads stay on the writer thread.

use crate::addr::AddrMap;
use crate::engine::Engine;
use crate::error::EnvyError;
use crate::page_table::fwd_decode;
use envy_sync::{ArenaView, EpochView, SharedEpoch, SlotsView, WordsView};

/// Outcome of a single optimistic read attempt.
enum Attempt {
    /// The copy validated against the epoch.
    Done,
    /// A writer ran during the copy (or the snapshot raced a relocation);
    /// retry.
    Conflict,
}

/// A lock-free reader handle over an [`EnvyStore`](crate::EnvyStore).
///
/// Cloneable and `Send + Sync`: hand one to each reader thread. All
/// clones observe the same live store; reads issued while the writer is
/// between mutating operations return exactly what the single-threaded
/// [`EnvyStore::read`](crate::EnvyStore::read) would.
///
/// Obtained from [`EnvyStore::read_view`](crate::EnvyStore::read_view).
#[derive(Debug, Clone)]
pub struct ReadView {
    epoch: EpochView,
    /// Packed forward page table (one atomic word per logical page).
    forward: WordsView,
    /// SRAM buffer index: `slot + 1` per buffered logical page, 0 empty.
    sram_index: SlotsView,
    /// SRAM frame payload arena (absent when the store is stateless).
    sram_frames: Option<ArenaView>,
    /// Flash page payload arena (absent when the store is stateless).
    flash_payload: Option<ArenaView>,
    addr_map: AddrMap,
    page_bytes: usize,
    pages_per_segment: u32,
    segments: u32,
    size: u64,
}

impl ReadView {
    pub(crate) fn new(engine: &Engine, epoch: &SharedEpoch) -> ReadView {
        let geo = engine.flash.geometry();
        ReadView {
            epoch: epoch.view(),
            forward: engine.page_table.reader_forward(),
            sram_index: engine.buffer.reader_index(),
            sram_frames: engine.buffer.reader_frames(),
            flash_payload: engine.flash.payload_view(),
            addr_map: engine.addr_map,
            page_bytes: geo.page_bytes() as usize,
            pages_per_segment: geo.pages_per_segment(),
            segments: geo.segments(),
            size: engine.config().logical_bytes(),
        }
    }

    /// Size of the logical array in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// One optimistic attempt at a single in-page chunk.
    ///
    /// Every byte lands in `buf` between the epoch snapshot and the
    /// validation, so a `Done` return is a consistent published state.
    /// Index values read under a stale snapshot can be arbitrary (a
    /// relocation may have moved the page mid-copy), so location and
    /// bounds failures are conflicts, never panics.
    fn read_chunk(&self, lp: u64, offset: usize, buf: &mut [u8]) -> Attempt {
        let Some(snap) = self.epoch.optimistic_read() else {
            return Attempt::Conflict;
        };
        let word = self.forward.get(lp as usize);
        match fwd_decode(word) {
            crate::addr::Location::Unmapped => buf.fill(0xFF),
            crate::addr::Location::Sram => match &self.sram_frames {
                Some(frames) => {
                    let slot = self.sram_index.get(lp as usize);
                    if slot == 0 {
                        // Forward map and index disagree: raced a flush.
                        return Attempt::Conflict;
                    }
                    let base = (slot as usize - 1) * self.page_bytes + offset;
                    if !frames.in_bounds(base, buf.len()) {
                        return Attempt::Conflict;
                    }
                    frames.read_bytes(base, buf);
                }
                // Stateless store: buffered pages carry no payload and
                // read as erased, matching `WriteBuffer::read_into`.
                None => buf.fill(0xFF),
            },
            crate::addr::Location::Flash(loc) => match &self.flash_payload {
                Some(payload) => {
                    if loc.segment >= self.segments || loc.page >= self.pages_per_segment {
                        return Attempt::Conflict;
                    }
                    let page =
                        loc.segment as usize * self.pages_per_segment as usize + loc.page as usize;
                    let base = page * self.page_bytes + offset;
                    if !payload.in_bounds(base, buf.len()) {
                        return Attempt::Conflict;
                    }
                    payload.read_bytes(base, buf);
                }
                None => buf.fill(0xFF),
            },
        }
        if self.epoch.validate(snap) {
            Attempt::Done
        } else {
            Attempt::Conflict
        }
    }

    /// Read a byte range, retrying each page-sized chunk until it
    /// validates. Returns the number of retries taken (0 on a clean run)
    /// for observability.
    ///
    /// The backoff spins briefly and then yields to the scheduler: on a
    /// loaded single-core host the writer holds the epoch odd until it is
    /// next scheduled, so a pure spin would burn the reader's whole
    /// timeslice.
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`] if the range exceeds the logical array.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<u64, EnvyError> {
        if addr + buf.len() as u64 > self.size {
            return Err(EnvyError::OutOfBounds {
                addr,
                size: self.size,
            });
        }
        let mut retries = 0u64;
        let mut cursor = 0usize;
        for c in self.addr_map.chunks(addr, buf.len()) {
            let dst = &mut buf[cursor..cursor + c.len];
            let mut spins = 0u32;
            while let Attempt::Conflict = self.read_chunk(c.page, c.offset, dst) {
                retries += 1;
                spins += 1;
                if spins < 16 {
                    std::hint::spin_loop();
                } else {
                    spins = 0;
                    std::thread::yield_now();
                }
            }
            cursor += c.len;
        }
        Ok(retries)
    }

    /// One non-blocking attempt at a byte range: `Ok(true)` if every
    /// chunk validated, `Ok(false)` if any attempt conflicted (contents
    /// of `buf` are then unspecified; retry or fall back to the writer).
    ///
    /// # Errors
    ///
    /// [`EnvyError::OutOfBounds`] if the range exceeds the logical array.
    pub fn try_read(&self, addr: u64, buf: &mut [u8]) -> Result<bool, EnvyError> {
        if addr + buf.len() as u64 > self.size {
            return Err(EnvyError::OutOfBounds {
                addr,
                size: self.size,
            });
        }
        let mut cursor = 0usize;
        for c in self.addr_map.chunks(addr, buf.len()) {
            let dst = &mut buf[cursor..cursor + c.len];
            if let Attempt::Conflict = self.read_chunk(c.page, c.offset, dst) {
                return Ok(false);
            }
            cursor += c.len;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::EnvyConfig;
    use crate::store::EnvyStore;

    fn assert_send_sync<T: Send + Sync + Clone>() {}

    #[test]
    fn view_is_send_sync_clone() {
        assert_send_sync::<super::ReadView>();
    }

    #[test]
    fn view_matches_store_reads() {
        let mut store = EnvyStore::new(EnvyConfig::small_test()).unwrap();
        store.prefill().unwrap();
        let view = store.read_view();
        let pb = store.config().geometry.page_bytes() as u64;
        // Straddle SRAM-buffered, Flash-resident and unmapped pages.
        store.write(3, b"abcdef").unwrap();
        store.write(pb * 2 - 2, b"straddle").unwrap();
        store.flush_all().unwrap();
        store.write(pb * 5 + 17, b"buffered").unwrap();
        for addr in [0u64, 3, pb * 2 - 2, pb * 5, pb * 5 + 17] {
            let mut a = [0u8; 32];
            let mut b = [0u8; 32];
            store.read(addr, &mut a).unwrap();
            let retries = view.read(addr, &mut b).unwrap();
            assert_eq!(a, b, "addr {addr}");
            assert_eq!(retries, 0, "no writer ran concurrently");
            let mut c = [0u8; 32];
            assert!(view.try_read(addr, &mut c).unwrap());
            assert_eq!(a, c);
        }
    }

    #[test]
    fn view_rejects_out_of_bounds() {
        let store = EnvyStore::new(EnvyConfig::small_test()).unwrap();
        let view = store.read_view();
        let mut buf = [0u8; 8];
        assert!(view.read(store.size(), &mut buf).is_err());
        assert!(view.try_read(store.size() - 4, &mut buf).is_err());
    }

    #[test]
    fn stateless_view_reads_erased() {
        let mut cfg = EnvyConfig::small_test();
        cfg.store_data = false;
        let mut store = EnvyStore::new(cfg).unwrap();
        store.write(100, b"dropped").unwrap();
        let view = store.read_view();
        let mut buf = [0u8; 7];
        view.read(100, &mut buf).unwrap();
        assert_eq!(buf, [0xFF; 7]);
    }
}
