//! Low-overhead structured controller tracing.
//!
//! The engine can record a bounded ring of typed events — every state
//! transition the paper's evaluation reasons about (copy-on-write, buffer
//! hits, flushes, cleans with victim and live-page count, sheds, erases,
//! wear swaps, suspensions, stalls, injected faults) — stamped with the
//! simulated time at which it happened. Tracing is **off by default** and
//! behavior-neutral: it touches no statistic, no timing decision and no
//! device state, so enabling it cannot change a run's results, and when
//! disabled the only cost per event site is one branch on a bool.
//!
//! The ring is bounded ([`TraceRing::enable`] sets the capacity): a long
//! run keeps the most recent events at a fixed memory ceiling, which is
//! what post-hoc latency forensics need — "what was the controller doing
//! just before the spike".

use envy_sim::time::Ns;
use std::collections::VecDeque;
use std::fmt;

/// One traced controller event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Copy-on-write: a Flash-resident page was pulled into SRAM
    /// (§3.1–3.2).
    Cow {
        /// Logical page written.
        lp: u64,
        /// Physical segment the original copy lived in.
        segment: u32,
    },
    /// First write to a never-written page: fresh SRAM allocation.
    FreshAlloc {
        /// Logical page written.
        lp: u64,
    },
    /// Write absorbed in place by a page already in the SRAM buffer.
    BufferHit {
        /// Logical page written.
        lp: u64,
    },
    /// Page flushed from the write buffer into Flash.
    Flush {
        /// Logical page flushed.
        lp: u64,
        /// Destination physical segment.
        segment: u32,
    },
    /// Cleaning began.
    CleanStart {
        /// Segment position being cleaned.
        position: u32,
        /// Physical victim segment.
        victim: u32,
        /// Live pages the cleaner must copy.
        live_pages: u32,
    },
    /// Cleaning finished; the victim was erased and became the spare.
    CleanEnd {
        /// The erased victim (now the spare).
        victim: u32,
    },
    /// A page was shed to a neighbouring partition by locality
    /// gathering (§4.3).
    Shed {
        /// Logical page shed.
        lp: u64,
        /// Destination physical segment.
        to_segment: u32,
    },
    /// A segment was erased.
    Erase {
        /// The erased physical segment.
        segment: u32,
        /// Its lifetime erase-cycle count after this erase.
        cycles: u64,
    },
    /// Wear leveling swapped the most- and least-worn segments' data
    /// (§4.3).
    WearSwap {
        /// Most-worn physical segment (parked under cold data).
        worn: u32,
        /// Least-worn physical segment.
        young: u32,
    },
    /// A host access suspended an in-progress background operation on
    /// its bank (§3.4).
    Suspend {
        /// The contended bank.
        bank: u32,
    },
    /// A host write stalled on the un-executed flush backlog (the
    /// buffer-full path behind Figure 15's post-saturation jump).
    Stall {
        /// Device time the write waited for.
        waited: Ns,
    },
    /// An injected program verify failure was observed (the controller
    /// retries on the next erased page).
    ProgramFault {
        /// Segment whose program failed.
        segment: u32,
    },
    /// An injected erase verify failure was observed (the controller
    /// reissues the erase).
    EraseFault {
        /// Segment whose erase failed.
        segment: u32,
    },
    /// Retries exhausted a flush target's erased pages; the program was
    /// remapped to a different segment.
    Remap {
        /// The exhausted segment.
        segment: u32,
    },
    /// A serving front end admitted a request into a shard's queue
    /// (recorded by the shard worker in admission order).
    ServeEnqueue {
        /// Shard the request was routed to.
        shard: u32,
        /// Request id assigned by the front end.
        seq: u64,
    },
    /// A shard worker drained a batch from its request queue.
    ServeDispatch {
        /// The dispatching shard.
        shard: u32,
        /// Requests in the drained batch.
        batch: u32,
    },
    /// A shard worker finished executing a request and posted its
    /// completion.
    ServeComplete {
        /// The executing shard.
        shard: u32,
        /// Request id assigned by the front end.
        seq: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Cow { lp, segment } => write!(f, "cow lp={lp} from seg={segment}"),
            TraceEvent::FreshAlloc { lp } => write!(f, "fresh-alloc lp={lp}"),
            TraceEvent::BufferHit { lp } => write!(f, "buffer-hit lp={lp}"),
            TraceEvent::Flush { lp, segment } => write!(f, "flush lp={lp} to seg={segment}"),
            TraceEvent::CleanStart {
                position,
                victim,
                live_pages,
            } => write!(
                f,
                "clean-start pos={position} victim={victim} live={live_pages}"
            ),
            TraceEvent::CleanEnd { victim } => write!(f, "clean-end victim={victim}"),
            TraceEvent::Shed { lp, to_segment } => write!(f, "shed lp={lp} to seg={to_segment}"),
            TraceEvent::Erase { segment, cycles } => {
                write!(f, "erase seg={segment} cycles={cycles}")
            }
            TraceEvent::WearSwap { worn, young } => {
                write!(f, "wear-swap worn={worn} young={young}")
            }
            TraceEvent::Suspend { bank } => write!(f, "suspend bank={bank}"),
            TraceEvent::Stall { waited } => write!(f, "stall waited={waited}"),
            TraceEvent::ProgramFault { segment } => write!(f, "program-fault seg={segment}"),
            TraceEvent::EraseFault { segment } => write!(f, "erase-fault seg={segment}"),
            TraceEvent::Remap { segment } => write!(f, "remap from seg={segment}"),
            TraceEvent::ServeEnqueue { shard, seq } => {
                write!(f, "serve-enqueue shard={shard} seq={seq}")
            }
            TraceEvent::ServeDispatch { shard, batch } => {
                write!(f, "serve-dispatch shard={shard} batch={batch}")
            }
            TraceEvent::ServeComplete { shard, seq } => {
                write!(f, "serve-complete shard={shard} seq={seq}")
            }
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time the event was recorded at.
    pub at: Ns,
    /// Monotone sequence number (index into the stream of all events
    /// ever emitted, including those the ring has since dropped).
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded ring buffer of [`TraceRecord`]s; disabled by default.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    enabled: bool,
    capacity: usize,
    now: Ns,
    seq: u64,
    ring: VecDeque<TraceRecord>,
}

impl TraceRing {
    /// Enable tracing with a ring of `capacity` records (older records
    /// are dropped as new ones arrive).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace capacity must be positive");
        self.enabled = true;
        self.capacity = capacity;
        self.ring.truncate(0);
        self.ring.reserve(capacity.min(4096));
    }

    /// Disable tracing and drop all buffered records.
    pub fn disable(&mut self) {
        self.enabled = false;
        self.ring = VecDeque::new();
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Advance the simulated timestamp subsequent events are stamped
    /// with. Timestamps are monotone: an earlier `now` is ignored.
    pub fn set_now(&mut self, now: Ns) {
        self.now = self.now.max(now);
    }

    /// Record one event from an embedding layer (a serving front end, a
    /// replay harness) that stamps its own [`TraceRing::set_now`]
    /// timestamps. No-op when disabled, like every emit site.
    pub fn push(&mut self, event: TraceEvent) {
        self.emit(event);
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub(crate) fn emit(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceRecord {
            at: self.now,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Buffered records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// The most recent `n` records, oldest first.
    pub fn last(&self, n: usize) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter().skip(self.ring.len().saturating_sub(n))
    }

    /// Number of buffered records (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events emitted since tracing was enabled, including records
    /// the ring has since dropped.
    pub fn total_emitted(&self) -> u64 {
        self.seq
    }

    /// Drop all buffered records (capacity and enablement unchanged).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let mut t = TraceRing::default();
        assert!(!t.is_enabled());
        t.emit(TraceEvent::FreshAlloc { lp: 1 });
        assert!(t.is_empty());
        assert_eq!(t.total_emitted(), 0);
    }

    #[test]
    fn ring_bounds_and_sequences() {
        let mut t = TraceRing::default();
        t.enable(3);
        for lp in 0..5u64 {
            t.set_now(Ns::from_micros(lp));
            t.emit(TraceEvent::BufferHit { lp });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_emitted(), 5);
        let recs: Vec<_> = t.records().collect();
        assert_eq!(recs[0].seq, 2);
        assert_eq!(recs[2].seq, 4);
        assert_eq!(recs[2].at, Ns::from_micros(4));
        let last: Vec<_> = t.last(2).collect();
        assert_eq!(last[0].seq, 3);
        // Timestamps are monotone even if set_now goes backwards.
        t.set_now(Ns::ZERO);
        t.emit(TraceEvent::FreshAlloc { lp: 9 });
        assert_eq!(t.records().last().unwrap().at, Ns::from_micros(4));
    }

    #[test]
    fn disable_drops_records() {
        let mut t = TraceRing::default();
        t.enable(8);
        t.emit(TraceEvent::Suspend { bank: 1 });
        assert_eq!(t.len(), 1);
        t.disable();
        assert!(t.is_empty());
        t.emit(TraceEvent::Suspend { bank: 1 });
        assert!(t.is_empty());
    }

    #[test]
    fn event_display_is_compact() {
        let e = TraceEvent::CleanStart {
            position: 3,
            victim: 7,
            live_pages: 100,
        };
        assert_eq!(e.to_string(), "clean-start pos=3 victim=7 live=100");
        assert_eq!(
            TraceEvent::Stall {
                waited: Ns::from_micros(4)
            }
            .to_string(),
            "stall waited=4.000us"
        );
    }
}
