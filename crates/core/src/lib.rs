#![warn(missing_docs)]
//! # envy-core — the eNVy controller
//!
//! A reproduction of the storage system of *eNVy: A Non-Volatile, Main
//! Memory Storage System* (Wu & Zwaenepoel, ASPLOS '94): a large Flash
//! array presented to the host as a linear, memory-mapped, word-
//! addressable array with in-place update semantics.
//!
//! The controller overcomes Flash's three deficiencies (§2) with the
//! paper's mechanisms:
//!
//! * **No update-in-place** → copy-on-write into a battery-backed SRAM
//!   write buffer plus page remapping through an SRAM page table
//!   ([`page_table`], [`engine`]).
//! * **Slow programs/erases** → FIFO write buffering, background flushing
//!   and cleaning, and suspension of long operations when the host
//!   accesses a busy bank ([`timing`]).
//! * **Limited program/erase cycles** → cleaning policies that minimize
//!   write amplification (greedy, FIFO, locality gathering, and the
//!   hybrid of §4) plus explicit wear leveling.
//!
//! The main entry point is [`EnvyStore`]:
//!
//! ```
//! use envy_core::{EnvyConfig, EnvyStore, PolicyKind};
//!
//! # fn main() -> Result<(), envy_core::EnvyError> {
//! let config = EnvyConfig::small_test().with_policy(PolicyKind::Greedy);
//! let mut store = EnvyStore::new(config)?;
//! store.write(0, &1234u32.to_le_bytes())?;
//! let mut word = [0u8; 4];
//! store.read(0, &mut word)?;
//! assert_eq!(u32::from_le_bytes(word), 1234);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod config;
pub mod engine;
pub mod error;
pub mod memory;
pub mod mmu;
pub mod page_table;
pub mod params;
pub mod stats;
pub mod store;
pub mod telemetry;
pub mod timing;
pub mod trace;
pub mod view;

pub use config::{EnvyConfig, PolicyKind};
pub use engine::{Engine, FaultPlan, InjectionPoint, ReadSource, RecoveryReport, WriteKind};
pub use error::EnvyError;
pub use memory::{Memory, VecMemory};
pub use stats::{lifetime_days, EnvyStats, TimeBreakdown};
pub use store::{EnvyStore, TimedAccess, TxnMemory, SAMPLER_COLUMNS};
pub use telemetry::{SegmentReport, SegmentSnapshot};
pub use timing::{BgKind, BgOp};
pub use trace::{TraceEvent, TraceRecord, TraceRing};
pub use view::ReadView;
