//! Per-segment wear and utilization telemetry.
//!
//! The paper's §5.5 lifetime estimate and §4.3 wear-leveling argument
//! both rest on per-segment erase-cycle distributions, and software-
//! guided wear policies need the same visibility at run time. A
//! [`SegmentReport`] is a point-in-time snapshot of every physical
//! segment: its bank, position, erase cycles, and page-state breakdown.

use crate::engine::{Engine, POS_NONE};

/// Point-in-time snapshot of one physical segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentSnapshot {
    /// Physical segment index.
    pub segment: u32,
    /// Bank the segment belongs to.
    pub bank: u32,
    /// Segment position, `None` for the spare.
    pub position: Option<u32>,
    /// Lifetime program/erase cycles.
    pub erase_cycles: u64,
    /// Pages holding live data.
    pub valid_pages: u32,
    /// Pages holding stale data awaiting cleaning.
    pub invalid_pages: u32,
    /// Erased, programmable pages.
    pub erased_pages: u32,
    /// Live-data fraction.
    pub utilization: f64,
}

/// Array-wide per-segment telemetry: one [`SegmentSnapshot`] per
/// physical segment plus wear aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReport {
    /// One snapshot per physical segment, in segment order.
    pub segments: Vec<SegmentSnapshot>,
    /// Fewest erase cycles over all segments.
    pub min_erase_cycles: u64,
    /// Most erase cycles over all segments.
    pub max_erase_cycles: u64,
    /// Mean erase cycles over all segments.
    pub mean_erase_cycles: f64,
}

impl SegmentReport {
    /// The wear spread (`max − min` erase cycles) — the quantity the
    /// §4.3 wear leveler bounds by the configured threshold.
    pub fn wear_spread(&self) -> u64 {
        self.max_erase_cycles - self.min_erase_cycles
    }

    /// Relative wear imbalance: spread over mean (`0` for a perfectly
    /// even array or one never erased).
    pub fn wear_imbalance(&self) -> f64 {
        if self.mean_erase_cycles == 0.0 {
            0.0
        } else {
            self.wear_spread() as f64 / self.mean_erase_cycles
        }
    }
}

impl Engine {
    /// Snapshot per-segment wear and utilization telemetry.
    pub fn segment_report(&self) -> SegmentReport {
        let geo = &self.config.geometry;
        let mut segments = Vec::with_capacity(geo.segments() as usize);
        let (mut min_c, mut max_c, mut sum_c) = (u64::MAX, 0u64, 0u64);
        for seg in 0..geo.segments() {
            let cycles = self.flash.erase_cycles(seg);
            min_c = min_c.min(cycles);
            max_c = max_c.max(cycles);
            sum_c += cycles;
            let pos = self.pos_of[seg as usize];
            segments.push(SegmentSnapshot {
                segment: seg,
                bank: self.flash.bank_of(seg),
                position: (pos != POS_NONE).then_some(pos),
                erase_cycles: cycles,
                valid_pages: self.flash.valid_pages(seg),
                invalid_pages: self.flash.invalid_pages(seg),
                erased_pages: self.flash.erased_pages(seg),
                utilization: self.flash.utilization(seg),
            });
        }
        SegmentReport {
            min_erase_cycles: min_c,
            max_erase_cycles: max_c,
            mean_erase_cycles: sum_c as f64 / segments.len() as f64,
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvyConfig;

    #[test]
    fn report_covers_every_segment_and_spare() {
        let mut e = Engine::new(EnvyConfig::small_test()).unwrap();
        e.prefill().unwrap();
        let r = e.segment_report();
        assert_eq!(r.segments.len(), 16);
        let spares: Vec<_> = r.segments.iter().filter(|s| s.position.is_none()).collect();
        assert_eq!(spares.len(), 1, "exactly one spare");
        assert_eq!(spares[0].erased_pages, 64);
        assert_eq!(r.wear_spread(), 0);
        assert_eq!(r.wear_imbalance(), 0.0);
        // Page-state counts always partition the segment.
        for s in &r.segments {
            assert_eq!(s.valid_pages + s.invalid_pages + s.erased_pages, 64);
        }
    }

    #[test]
    fn report_tracks_wear_after_churn() {
        let mut e = Engine::new(EnvyConfig::small_test()).unwrap();
        e.prefill().unwrap();
        let mut ops = Vec::new();
        let pages = e.config().logical_pages;
        for i in 0..6_000u64 {
            e.write_page_bytes(((i * 13) % pages) as u64, 0, &[i as u8], None, &mut ops)
                .unwrap();
            ops.clear();
        }
        let r = e.segment_report();
        assert!(r.max_erase_cycles > 0, "churn must erase segments");
        assert_eq!(
            r.segments.iter().map(|s| s.erase_cycles).max().unwrap(),
            r.max_erase_cycles
        );
        assert!(r.mean_erase_cycles > 0.0);
    }
}
