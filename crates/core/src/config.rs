//! Controller configuration.

use crate::error::EnvyError;
use envy_flash::{FlashGeometry, FlashTimings};
use envy_sim::time::Ns;

/// Which cleaning policy the controller runs (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Clean the segment with the most invalid data; writes fill the
    /// newly cleaned segment (§4.2).
    Greedy,
    /// Sprite LFS's cost-benefit victim selection (Rosenblum &
    /// Ousterhout \[13\]): clean the segment maximizing
    /// `age × (1 − u) / 2u`. The paper considered and rejected this
    /// policy for eNVy (§4.1); it is implemented here as a baseline so
    /// that decision can be quantified.
    CostBenefit,
    /// Clean segments in round-robin order. The paper notes FIFO has the
    /// same steady-state cost as greedy but is simpler hardware (§4.4).
    Fifo,
    /// Locality gathering: flush-to-origin plus free-space redistribution
    /// that equalizes (cleaning frequency × cleaning cost) (§4.3).
    LocalityGathering,
    /// The hybrid: locality gathering between partitions of adjoining
    /// segments, FIFO within a partition (§4.4). The paper's optimum for
    /// a 128-segment array is 16 segments per partition.
    Hybrid {
        /// Number of adjoining segments per partition.
        segments_per_partition: u32,
    },
}

impl PolicyKind {
    /// The paper's production choice: hybrid with 16-segment partitions.
    pub fn paper_default() -> PolicyKind {
        PolicyKind::Hybrid {
            segments_per_partition: 16,
        }
    }
}

/// Full configuration of an eNVy storage system.
///
/// Construct via [`EnvyConfig::paper_2gb`], [`EnvyConfig::small_test`] or
/// [`EnvyConfig::scaled`], then adjust with the `with_*` methods:
///
/// ```
/// use envy_core::{EnvyConfig, PolicyKind};
///
/// let cfg = EnvyConfig::small_test()
///     .with_policy(PolicyKind::Greedy)
///     .with_utilization(0.5);
/// assert_eq!(cfg.policy, PolicyKind::Greedy);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnvyConfig {
    /// Flash array shape.
    pub geometry: FlashGeometry,
    /// Flash device timings.
    pub timings: FlashTimings,
    /// Whether page payloads are stored (functional mode) or only page
    /// state is tracked (large timing studies).
    pub store_data: bool,
    /// Size of the host-visible linear array, in pages. The paper caps
    /// live data at 80 % of the Flash array (Figure 6 rationale).
    pub logical_pages: u64,
    /// SRAM write-buffer capacity in pages. The paper sizes it at one
    /// segment (§5.1).
    pub buffer_pages: usize,
    /// Flush when the buffer holds more than this many pages (§3.2).
    pub flush_threshold: usize,
    /// Cleaning policy.
    pub policy: PolicyKind,
    /// Wear-leveling trigger: swap data when the oldest segment exceeds
    /// the youngest by more than this many erase cycles (§4.3; the paper
    /// uses 100).
    pub wear_threshold: u64,
    /// Host-side word size in bytes (the host bus is 32 or 64 bits,
    /// Figure 11); byte ranges are split into word accesses for timing.
    pub word_bytes: u32,
    /// Propagation/control overhead added to every host access (§5.1:
    /// "60ns is added to each access").
    pub bus_overhead: Ns,
    /// Extra latency a host access pays when it must suspend an
    /// in-progress program/erase on its bank.
    pub suspend_penalty: Ns,
    /// How long the controller waits after a suspension before resuming
    /// the long operation ("waits a few microseconds", §3.4). The exact
    /// value is not published; 1.5 µs calibrates the simulated system's
    /// saturation point to the paper's ~30 000 TPS (see EXPERIMENTS.md).
    pub resume_gap: Ns,
    /// Entries in the MMU mapping cache (§5.1).
    pub mmu_entries: usize,
    /// Concurrent program/erase operations (§6 extension; 1 = the base
    /// system evaluated in §5).
    pub parallel_ops: u32,
    /// Ablation switch: locality gathering's free-space redistribution
    /// between partitions (§4.3). On by default.
    pub lg_redistribute: bool,
    /// Ablation switch: flush pages back to their partition of origin
    /// (§4.3: "Care must be taken to prevent flushes from the SRAM write
    /// buffer from destroying locality"). On by default.
    pub lg_flush_to_origin: bool,
    /// Concurrent-transaction slots per controller (§6 extension). The
    /// paper's hardware facility is a single slot; raising this lets N
    /// transactions be open at once, isolated by per-page write sets
    /// (`docs/TRANSACTIONS.md`). 1 by default — the paper-faithful
    /// configuration every digest anchor runs under.
    pub txn_slots: u32,
}

impl EnvyConfig {
    /// The paper's simulated system (Figure 12): 2 GB of Flash in 128
    /// segments of 16 MB across 8 banks, 256-byte pages, a 16 MB
    /// (one-segment) SRAM write buffer, hybrid(16) cleaning, 80 %
    /// utilization.
    pub fn paper_2gb() -> EnvyConfig {
        let geometry = FlashGeometry::paper_2gb();
        let total_pages = geometry.total_pages();
        let buffer_pages = geometry.pages_per_segment() as usize;
        EnvyConfig {
            geometry,
            timings: FlashTimings::paper(),
            store_data: false,
            logical_pages: (total_pages as f64 * 0.8) as u64,
            buffer_pages,
            flush_threshold: buffer_pages / 2,
            policy: PolicyKind::paper_default(),
            wear_threshold: 100,
            word_bytes: 4,
            bus_overhead: Ns::from_nanos(60),
            suspend_penalty: Ns::from_nanos(150),
            resume_gap: Ns::from_nanos(1_500),
            mmu_entries: 4096,
            parallel_ops: 1,
            lg_redistribute: true,
            lg_flush_to_origin: true,
            txn_slots: 1,
        }
    }

    /// A small functional-test configuration with payload storage: 4 banks,
    /// 16 segments of 64 × 256-byte pages (256 KB), 50 % utilization.
    pub fn small_test() -> EnvyConfig {
        EnvyConfig::scaled(4, 16, 64, 256).with_utilization(0.5)
    }

    /// A scaled-down array with the paper's timings and policy defaults.
    /// The buffer is one segment and utilization defaults to 80 %.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see
    /// [`FlashGeometry::new`]).
    pub fn scaled(
        banks: u32,
        segments: u32,
        pages_per_segment: u32,
        page_bytes: u32,
    ) -> EnvyConfig {
        let geometry = FlashGeometry::new(banks, segments, pages_per_segment, page_bytes)
            .expect("scaled geometry must be valid");
        let total_pages = geometry.total_pages();
        let buffer_pages = pages_per_segment as usize;
        EnvyConfig {
            geometry,
            timings: FlashTimings::paper(),
            store_data: true,
            logical_pages: (total_pages as f64 * 0.8) as u64,
            buffer_pages,
            flush_threshold: buffer_pages / 2,
            policy: PolicyKind::paper_default(),
            wear_threshold: 100,
            word_bytes: 4,
            bus_overhead: Ns::from_nanos(60),
            suspend_penalty: Ns::from_nanos(150),
            resume_gap: Ns::from_nanos(1_500),
            mmu_entries: 256,
            parallel_ops: 1,
            lg_redistribute: true,
            lg_flush_to_origin: true,
            txn_slots: 1,
        }
    }

    /// Set the cleaning policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> EnvyConfig {
        self.policy = policy;
        self
    }

    /// Size the logical array to a fraction of the physical array.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < utilization < 1.0`.
    pub fn with_utilization(mut self, utilization: f64) -> EnvyConfig {
        assert!(
            utilization > 0.0 && utilization < 1.0,
            "utilization must be in (0, 1)"
        );
        self.logical_pages = (self.geometry.total_pages() as f64 * utilization) as u64;
        self
    }

    /// Set the write-buffer capacity (and scale the flush threshold to
    /// half of it).
    pub fn with_buffer_pages(mut self, pages: usize) -> EnvyConfig {
        self.buffer_pages = pages;
        self.flush_threshold = pages / 2;
        self
    }

    /// Set the flush threshold directly.
    pub fn with_flush_threshold(mut self, threshold: usize) -> EnvyConfig {
        self.flush_threshold = threshold;
        self
    }

    /// Enable or disable payload storage.
    pub fn with_store_data(mut self, store: bool) -> EnvyConfig {
        self.store_data = store;
        self
    }

    /// Set the wear-leveling trigger threshold.
    pub fn with_wear_threshold(mut self, cycles: u64) -> EnvyConfig {
        self.wear_threshold = cycles;
        self
    }

    /// Set the §6 parallel-operation count.
    pub fn with_parallel_ops(mut self, ops: u32) -> EnvyConfig {
        self.parallel_ops = ops;
        self
    }

    /// Set the MMU mapping-cache size (0 disables the cache).
    pub fn with_mmu_entries(mut self, entries: usize) -> EnvyConfig {
        self.mmu_entries = entries;
        self
    }

    /// Set the number of concurrent-transaction slots (1 = the paper's
    /// single hardware facility).
    pub fn with_txn_slots(mut self, slots: u32) -> EnvyConfig {
        self.txn_slots = slots;
        self
    }

    /// The logical array size in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages * self.geometry.page_bytes() as u64
    }

    /// Ratio of logical (live) pages to physical pages.
    pub fn target_utilization(&self) -> f64 {
        self.logical_pages as f64 / self.geometry.total_pages() as f64
    }

    /// SRAM required for the page table, using the paper's 6 bytes per
    /// mapping (§3.3).
    pub fn page_table_sram_bytes(&self) -> u64 {
        self.logical_pages * 6
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`EnvyError::BadConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), EnvyError> {
        let pps = self.geometry.pages_per_segment() as u64;
        let total = self.geometry.total_pages();
        if self.geometry.segments() < 2 {
            return Err(EnvyError::BadConfig(
                "at least two segments required (one is always kept erased)",
            ));
        }
        if self.logical_pages == 0 {
            return Err(EnvyError::BadConfig("logical array must be non-empty"));
        }
        // The spare segment never holds steady-state data, and cleaning a
        // 100%-utilized array livelocks; insist on headroom beyond the
        // spare.
        if self.logical_pages > total - pps - (total - pps) / 50 {
            return Err(EnvyError::BadConfig(
                "logical array oversubscribed: leave at least one spare segment plus 2% slack",
            ));
        }
        if self.buffer_pages == 0 {
            return Err(EnvyError::BadConfig("write buffer must be non-empty"));
        }
        if self.flush_threshold >= self.buffer_pages {
            return Err(EnvyError::BadConfig(
                "flush threshold must be below buffer capacity",
            ));
        }
        if self.word_bytes == 0 || !self.geometry.page_bytes().is_multiple_of(self.word_bytes) {
            return Err(EnvyError::BadConfig(
                "word size must be non-zero and divide the page size",
            ));
        }
        if self.parallel_ops == 0 {
            return Err(EnvyError::BadConfig("parallel_ops must be at least 1"));
        }
        if self.txn_slots == 0 {
            return Err(EnvyError::BadConfig("txn_slots must be at least 1"));
        }
        if let PolicyKind::Hybrid {
            segments_per_partition,
        } = self.policy
        {
            if segments_per_partition == 0 {
                return Err(EnvyError::BadConfig(
                    "hybrid partitions must contain at least one segment",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_figure_12() {
        let c = EnvyConfig::paper_2gb();
        c.validate().unwrap();
        assert_eq!(c.geometry.segments(), 128);
        assert_eq!(c.buffer_pages, 65_536); // 16 MB / 256 B = one segment
        assert!((c.target_utilization() - 0.8).abs() < 1e-6);
        // §3.3: 24 MB of page-table SRAM per GB of Flash. 80% of 2 GB
        // logical → 6.7M mappings × 6 B ≈ 38.4 MB.
        let mb = c.page_table_sram_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 30.0 && mb < 48.0, "page table SRAM {mb} MB");
    }

    #[test]
    fn small_test_is_valid() {
        EnvyConfig::small_test().validate().unwrap();
    }

    #[test]
    fn oversubscription_rejected() {
        let mut c = EnvyConfig::small_test();
        c.logical_pages = c.geometry.total_pages(); // no spare
        assert!(matches!(c.validate(), Err(EnvyError::BadConfig(_))));
    }

    #[test]
    fn bad_threshold_rejected() {
        let c = EnvyConfig::small_test().with_flush_threshold(10_000_000);
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_word_size_rejected() {
        let mut c = EnvyConfig::small_test();
        c.word_bytes = 7; // does not divide 256
        assert!(c.validate().is_err());
        c.word_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_parallel_ops_rejected() {
        let mut c = EnvyConfig::small_test();
        c.parallel_ops = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_txn_slots_rejected() {
        let c = EnvyConfig::small_test().with_txn_slots(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn hybrid_zero_partition_rejected() {
        let c = EnvyConfig::small_test().with_policy(PolicyKind::Hybrid {
            segments_per_partition: 0,
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_utilization_resizes_logical_space() {
        let c = EnvyConfig::small_test().with_utilization(0.25);
        let total = c.geometry.total_pages();
        assert_eq!(c.logical_pages, total / 4);
    }

    #[test]
    #[should_panic(expected = "utilization must be in (0, 1)")]
    fn with_utilization_rejects_one() {
        EnvyConfig::small_test().with_utilization(1.0);
    }

    #[test]
    fn builder_chaining() {
        let c = EnvyConfig::small_test()
            .with_policy(PolicyKind::Fifo)
            .with_buffer_pages(32)
            .with_wear_threshold(10)
            .with_parallel_ops(4)
            .with_mmu_entries(0)
            .with_txn_slots(4)
            .with_store_data(false);
        assert_eq!(c.policy, PolicyKind::Fifo);
        assert_eq!(c.buffer_pages, 32);
        assert_eq!(c.flush_threshold, 16);
        assert_eq!(c.wear_threshold, 10);
        assert_eq!(c.parallel_ops, 4);
        assert_eq!(c.mmu_entries, 0);
        assert_eq!(c.txn_slots, 4);
        assert!(!c.store_data);
    }

    #[test]
    fn paper_default_policy_is_hybrid_16() {
        assert_eq!(
            PolicyKind::paper_default(),
            PolicyKind::Hybrid {
                segments_per_partition: 16
            }
        );
    }
}
