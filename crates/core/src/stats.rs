//! Controller statistics: the quantities the paper reports.

use envy_sim::stats::{Counter, Histogram};
use envy_sim::time::Ns;

/// Counters and accumulators for one controller instance.
///
/// The central derived metric is [`EnvyStats::cleaning_cost`], the paper's
/// §4.1 definition: "the number of Flash program operations performed by
/// the cleaning algorithm for every page that is flushed from the write
/// buffer" — it excludes reads and the initial flush program itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvyStats {
    /// Host read accesses (word-granularity).
    pub host_reads: Counter,
    /// Host write accesses (word-granularity).
    pub host_writes: Counter,
    /// Latency of host reads (timed mode only).
    pub read_latency: Histogram,
    /// Latency of host writes (timed mode only).
    pub write_latency: Histogram,
    /// Copy-on-write operations (Flash page pulled into SRAM).
    pub cow_ops: Counter,
    /// Writes to pages never before written (no Flash copy to pull).
    pub fresh_allocs: Counter,
    /// Writes absorbed by a page already in the SRAM buffer.
    pub sram_write_hits: Counter,
    /// Pages flushed from the write buffer into Flash.
    pub pages_flushed: Counter,
    /// Pages programmed by the cleaner (segment copies and locality
    /// redistribution, including shadow-page relocation).
    pub clean_programs: Counter,
    /// Subset of `clean_programs`: pages moved between partitions by
    /// locality gathering.
    pub shed_programs: Counter,
    /// Subset of `clean_programs`: transaction shadow pages relocated.
    pub shadow_programs: Counter,
    /// Cleaning operations (segments cleaned).
    pub cleans: Counter,
    /// Segment erases.
    pub erases: Counter,
    /// Wear-leveling swaps triggered.
    pub wear_swaps: Counter,
    /// Pages programmed by wear-leveling swaps (not counted as cleaning).
    pub wear_programs: Counter,
    /// Simulated time the storage system spent servicing host reads.
    pub time_reads: Ns,
    /// Simulated time servicing host writes (including synchronous
    /// stalls).
    pub time_writes: Ns,
    /// Background time programming buffer flushes.
    pub time_flush: Ns,
    /// Background time programming cleaning copies.
    pub time_clean: Ns,
    /// Background time erasing segments.
    pub time_erase: Ns,
    /// Background time lost to suspension back-offs (§3.4).
    pub time_suspend: Ns,
    /// Host accesses that had to suspend a long Flash operation.
    pub suspensions: Counter,
    /// Injected `program_error` faults observed (chip verify failures).
    pub program_faults: Counter,
    /// Program operations reissued after a verify failure (same
    /// segment, next erased page).
    pub program_retries: Counter,
    /// Programs that had to be remapped to a different segment because
    /// the target segment ran out of erased pages during retries.
    pub program_remaps: Counter,
    /// Injected `erase_error` faults observed.
    pub erase_faults: Counter,
    /// Erase operations reissued after a verify failure.
    pub erase_retries: Counter,
    /// Orphaned flash pages scavenged by recovery (valid in the array
    /// but unreferenced by the page table — torn or unmapped programs).
    pub recovery_scavenged: Counter,
    /// Buffered pages dropped by recovery because their logical page no
    /// longer maps to SRAM (flush crashed after the map update).
    pub recovery_dropped_buffer: Counter,
    /// Shadow pages released by recovery because their transaction was
    /// already committed or aborted at the crash.
    pub recovery_stale_shadows: Counter,
    /// Transactions committed (including commits completed by recovery
    /// from a journaled commit record).
    pub txn_commits: Counter,
    /// Transactions aborted (explicit aborts plus uncommitted
    /// transactions rolled back by recovery).
    pub txn_aborts: Counter,
    /// Shadow pages pinned against the cleaner by open transactions
    /// (cumulative: each first copy-on-write of a page inside a
    /// transaction pins one shadow).
    pub shadow_pages_pinned: Counter,
    /// Writes refused with [`crate::EnvyError::TxnConflict`]: the page
    /// was in the write set of another open transaction (includes plain
    /// non-transactional writes refused the same way).
    pub txn_conflict_refusals: Counter,
    /// Transactions opened (begin operations that were granted a slot;
    /// cumulative, not a gauge).
    pub open_txns: Counter,
}

/// A normalized busy-time breakdown, as in §5.3 ("approximately 40 % of
/// the time is servicing reads … cleaning (30 %), flushing (15 %), or
/// erasing (15 %)").
///
/// Fractions are of *productive* controller time (host service plus
/// background device work). Suspension time — background work frozen
/// while the host bursts through the array — overlaps host service time
/// by construction and is reported separately as a ratio against the
/// productive total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Fraction of productive time servicing reads.
    pub reads: f64,
    /// Fraction servicing writes.
    pub writes: f64,
    /// Fraction flushing buffer pages.
    pub flushing: f64,
    /// Fraction copying live data while cleaning.
    pub cleaning: f64,
    /// Fraction erasing segments.
    pub erasing: f64,
    /// Suspension (background frozen with work pending) relative to
    /// productive time; overlaps the host fractions.
    pub suspended: f64,
}

impl EnvyStats {
    /// Merge another controller's statistics into this one — the
    /// aggregation a sharded front end performs over its shared-nothing
    /// controllers (§6's multiple-controller organization). Counters and
    /// histograms add; times sum. Derived metrics ([`cleaning_cost`],
    /// [`breakdown`]) then describe the fleet as a whole.
    ///
    /// [`cleaning_cost`]: EnvyStats::cleaning_cost
    /// [`breakdown`]: EnvyStats::breakdown
    pub fn merge(&mut self, other: &EnvyStats) {
        self.host_reads.add(other.host_reads.get());
        self.host_writes.add(other.host_writes.get());
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.cow_ops.add(other.cow_ops.get());
        self.fresh_allocs.add(other.fresh_allocs.get());
        self.sram_write_hits.add(other.sram_write_hits.get());
        self.pages_flushed.add(other.pages_flushed.get());
        self.clean_programs.add(other.clean_programs.get());
        self.shed_programs.add(other.shed_programs.get());
        self.shadow_programs.add(other.shadow_programs.get());
        self.cleans.add(other.cleans.get());
        self.erases.add(other.erases.get());
        self.wear_swaps.add(other.wear_swaps.get());
        self.wear_programs.add(other.wear_programs.get());
        self.time_reads += other.time_reads;
        self.time_writes += other.time_writes;
        self.time_flush += other.time_flush;
        self.time_clean += other.time_clean;
        self.time_erase += other.time_erase;
        self.time_suspend += other.time_suspend;
        self.suspensions.add(other.suspensions.get());
        self.program_faults.add(other.program_faults.get());
        self.program_retries.add(other.program_retries.get());
        self.program_remaps.add(other.program_remaps.get());
        self.erase_faults.add(other.erase_faults.get());
        self.erase_retries.add(other.erase_retries.get());
        self.recovery_scavenged.add(other.recovery_scavenged.get());
        self.recovery_dropped_buffer
            .add(other.recovery_dropped_buffer.get());
        self.recovery_stale_shadows
            .add(other.recovery_stale_shadows.get());
        self.txn_commits.add(other.txn_commits.get());
        self.txn_aborts.add(other.txn_aborts.get());
        self.shadow_pages_pinned
            .add(other.shadow_pages_pinned.get());
        self.txn_conflict_refusals
            .add(other.txn_conflict_refusals.get());
        self.open_txns.add(other.open_txns.get());
    }

    /// The paper's cleaning-cost metric (§4.1). Zero before any flush.
    pub fn cleaning_cost(&self) -> f64 {
        let flushed = self.pages_flushed.get();
        if flushed == 0 {
            0.0
        } else {
            self.clean_programs.get() as f64 / flushed as f64
        }
    }

    /// Total productive time across host service and background device
    /// work (suspension overlap excluded).
    pub fn busy_time(&self) -> Ns {
        self.time_reads + self.time_writes + self.time_flush + self.time_clean + self.time_erase
    }

    /// Fractional busy-time breakdown; `None` if nothing has been timed.
    pub fn breakdown(&self) -> Option<TimeBreakdown> {
        let total = self.busy_time().as_nanos() as f64;
        if total == 0.0 {
            return None;
        }
        Some(TimeBreakdown {
            reads: self.time_reads.as_nanos() as f64 / total,
            writes: self.time_writes.as_nanos() as f64 / total,
            flushing: self.time_flush.as_nanos() as f64 / total,
            cleaning: self.time_clean.as_nanos() as f64 / total,
            erasing: self.time_erase.as_nanos() as f64 / total,
            suspended: self.time_suspend.as_nanos() as f64 / total,
        })
    }
}

/// Estimate system lifetime with the paper's §5.5 formula.
///
/// `Lifetime = WriteCapacity / PageWriteRate`, where write capacity is
/// `total_pages × rated_cycles` page writes and the page write rate is
/// `flushes_per_sec × (1 + cleaning_cost)`.
///
/// Returns the lifetime in days of continuous use (infinite if the write
/// rate is zero).
pub fn lifetime_days(
    total_pages: u64,
    rated_cycles: u64,
    flushes_per_sec: f64,
    cleaning_cost: f64,
) -> f64 {
    let capacity = total_pages as f64 * rated_cycles as f64;
    let rate = flushes_per_sec * (1.0 + cleaning_cost);
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    capacity / rate / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_histograms_and_times() {
        let mut a = EnvyStats::default();
        a.host_writes.add(3);
        a.pages_flushed.add(10);
        a.clean_programs.add(5);
        a.time_reads = Ns::from_nanos(100);
        a.read_latency.record(Ns::from_nanos(160));
        let mut b = EnvyStats::default();
        b.host_writes.add(7);
        b.pages_flushed.add(10);
        b.clean_programs.add(15);
        b.time_reads = Ns::from_nanos(50);
        b.read_latency.record(Ns::from_nanos(260));
        a.merge(&b);
        assert_eq!(a.host_writes.get(), 10);
        assert_eq!(a.read_latency.count(), 2);
        assert_eq!(a.read_latency.max(), Some(Ns::from_nanos(260)));
        assert_eq!(a.time_reads, Ns::from_nanos(150));
        // Derived fleet metric: 20 programs over 20 flushes.
        assert!((a.cleaning_cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cleaning_cost_definition() {
        let mut s = EnvyStats::default();
        assert_eq!(s.cleaning_cost(), 0.0);
        s.pages_flushed.add(100);
        s.clean_programs.add(197);
        assert!((s.cleaning_cost() - 1.97).abs() < 1e-12);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let s = EnvyStats {
            time_reads: Ns::from_nanos(40),
            time_flush: Ns::from_nanos(15),
            time_clean: Ns::from_nanos(30),
            time_erase: Ns::from_nanos(15),
            ..EnvyStats::default()
        };
        let b = s.breakdown().unwrap();
        let sum = b.reads + b.writes + b.flushing + b.cleaning + b.erasing;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((b.reads - 0.4).abs() < 1e-12);
        assert_eq!(b.suspended, 0.0);
    }

    #[test]
    fn breakdown_empty_is_none() {
        assert_eq!(EnvyStats::default().breakdown(), None);
    }

    #[test]
    fn lifetime_reproduces_section_5_5() {
        // 2 GB / 256 B pages = 8 Mi pages, 1 M cycles, 10 376 pages/s
        // flushed at cleaning cost 1.97 → "3,151 days (8.63 years)".
        let pages = 2u64 * 1024 * 1024 * 1024 / 256;
        let days = lifetime_days(pages, 1_000_000, 10_376.0, 1.97);
        assert!((days - 3151.0).abs() < 15.0, "days = {days}");
        assert!((days / 365.25 - 8.63).abs() < 0.05);
    }

    #[test]
    fn lifetime_zero_rate_is_infinite() {
        assert!(lifetime_days(100, 100, 0.0, 1.0).is_infinite());
    }

    #[test]
    fn lifetime_proportional_to_array_size() {
        let full = lifetime_days(1000, 10, 5.0, 1.0);
        let half = lifetime_days(500, 10, 5.0, 1.0);
        assert!((full / half - 2.0).abs() < 1e-12);
    }
}
