//! Cleaning-policy state and decisions (§4).
//!
//! All four policies of the paper are implemented over the same machinery:
//!
//! * **Greedy** (§4.2): one global active segment receives flushes; when
//!   it fills, the segment with the most invalid data is cleaned and
//!   becomes the new active segment.
//! * **FIFO** (§4.4): a single partition spanning the array with
//!   round-robin cleaning — the degenerate hybrid.
//! * **Locality gathering** (§4.3): one-segment partitions — all behaviour
//!   comes from flush-to-origin and inter-partition redistribution.
//! * **Hybrid(k)** (§4.4): k-segment partitions; FIFO inside a partition,
//!   locality gathering between partitions.

use crate::config::{EnvyConfig, PolicyKind};
use crate::engine::Engine;
use crate::error::EnvyError;
use crate::timing::BgOp;
use envy_sim::stats::Ewma;

/// How the single-active-segment policies pick their victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimRule {
    /// Most invalid pages (§4.2).
    MostInvalid,
    /// Sprite LFS cost-benefit: maximize `age × (1 − u) / 2u` [13].
    CostBenefit,
}

/// Greedy-policy state (shared by the greedy and cost-benefit baselines).
#[derive(Debug, Clone)]
pub struct GreedyState {
    /// Position currently receiving flushed pages.
    active: u32,
    /// Victim-selection rule.
    rule: VictimRule,
}

/// Partitioned-policy state (FIFO / locality gathering / hybrid).
#[derive(Debug, Clone)]
pub struct PartitionedState {
    /// Segments per partition.
    k: u32,
    /// Number of positions (cached).
    positions: u32,
    /// Per-partition active position (absolute).
    active: Vec<u32>,
    /// Per-partition cleaning-frequency estimate (cleans per flushed
    /// page), EWMA-smoothed.
    freq: Vec<Ewma>,
    /// Global flush count at each partition's last clean.
    last_clean_flush: Vec<u64>,
    /// Round-robin cursor for pages with no origin.
    fill_cursor: u32,
}

/// Policy state machine.
#[derive(Debug, Clone)]
pub enum PolicyState {
    /// Greedy victim selection.
    Greedy(GreedyState),
    /// Partitioned FIFO with optional locality gathering.
    Partitioned(PartitionedState),
}

/// A planned redistribution: `count` pages from the cleaned segment are
/// diverted to other partitions instead of the spare.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShedPlan {
    /// Destination slots `(position, pages)` in fill order.
    pub dests: Vec<(u32, u32)>,
    /// Total pages to shed.
    pub total: u32,
    /// Take pages from the head (cold end) of the victim when `true`,
    /// from the tail (hot end) otherwise.
    pub from_head: bool,
}

/// The locality-gathering decision for one clean (§4.3).
#[derive(Debug, Clone, Default)]
pub(crate) enum LgPlan {
    /// Products are balanced (or redistribution is off): plain clean.
    #[default]
    None,
    /// Lower this partition's utilization: divert pages toward the cold
    /// end of the array.
    Shed(ShedPlan),
}

impl PolicyState {
    /// Initialize policy state for `positions` segment positions.
    pub fn new(config: &EnvyConfig, positions: u32) -> PolicyState {
        let k = match config.policy {
            PolicyKind::Greedy => {
                return PolicyState::Greedy(GreedyState {
                    active: 0,
                    rule: VictimRule::MostInvalid,
                });
            }
            PolicyKind::CostBenefit => {
                return PolicyState::Greedy(GreedyState {
                    active: 0,
                    rule: VictimRule::CostBenefit,
                });
            }
            PolicyKind::Fifo => positions,
            PolicyKind::LocalityGathering => 1,
            PolicyKind::Hybrid {
                segments_per_partition,
            } => segments_per_partition.min(positions),
        };
        let nparts = positions.div_ceil(k);
        PolicyState::Partitioned(PartitionedState {
            k,
            positions,
            active: (0..nparts).map(|p| p * k).collect(),
            freq: vec![Ewma::new(0.3); nparts as usize],
            last_clean_flush: vec![0; nparts as usize],
            fill_cursor: 0,
        })
    }

    /// Number of partitions (1 for greedy).
    pub fn partitions(&self) -> u32 {
        match self {
            PolicyState::Greedy(_) => 1,
            PolicyState::Partitioned(p) => p.active.len() as u32,
        }
    }
}

impl PartitionedState {
    /// The partition a position belongs to.
    pub(crate) fn partition_of(&self, pos: u32) -> u32 {
        pos / self.k
    }

    /// The positions of a partition.
    pub(crate) fn positions_of(&self, part: u32) -> std::ops::Range<u32> {
        let start = part * self.k;
        start..(start + self.k).min(self.positions)
    }
}

impl Engine {
    /// Decide where the next flushed page goes, cleaning if necessary.
    /// Returns a position guaranteed to have at least one erased page.
    pub(crate) fn policy_flush_target(
        &mut self,
        origin: Option<u32>,
        ops: &mut Vec<BgOp>,
    ) -> Result<u32, EnvyError> {
        match &self.policy {
            PolicyState::Greedy(g) => {
                let active = g.active;
                let rule = g.rule;
                if self.has_space(self.order[active as usize]) {
                    return Ok(active);
                }
                // §4.2: cleaning happens "when there is no space to flush
                // data" — while any segment still has erased pages (the
                // initial fill), keep writing into the emptiest one.
                let target = match self.most_erased_position() {
                    Some(pos) => pos,
                    None => {
                        let victim = match rule {
                            VictimRule::MostInvalid => self.greedy_victim()?,
                            VictimRule::CostBenefit => self.cost_benefit_victim()?,
                        };
                        self.clean_position(victim, ops)?;
                        if !self.has_space(self.order[victim as usize]) {
                            return Err(EnvyError::ArrayFull);
                        }
                        victim
                    }
                };
                if let PolicyState::Greedy(g) = &mut self.policy {
                    g.active = target;
                }
                Ok(target)
            }
            PolicyState::Partitioned(p) => {
                let k = p.k;
                let nparts = p.active.len() as u32;
                let fill_cursor = p.fill_cursor;
                let part = match origin {
                    Some(pos) if self.config.lg_flush_to_origin => pos / k,
                    _ => {
                        // No origin (fresh page) or flush-to-origin
                        // disabled: round-robin fill.
                        if let PolicyState::Partitioned(p) = &mut self.policy {
                            p.fill_cursor = fill_cursor.wrapping_add(1);
                        }
                        fill_cursor % nparts
                    }
                };
                self.partition_slot(part, ops)
            }
        }
    }

    /// The position with the most erased pages, if any has one.
    fn most_erased_position(&self) -> Option<u32> {
        let best = (0..self.order.len() as u32)
            .max_by_key(|&pos| self.flash.erased_pages(self.order[pos as usize]))?;
        (self.flash.erased_pages(self.order[best as usize]) > 0).then_some(best)
    }

    /// Greedy victim: the position whose segment has the most invalid
    /// pages (§4.2: "the cleaner chooses to clean the segment with the
    /// most invalidated space").
    fn greedy_victim(&self) -> Result<u32, EnvyError> {
        let mut best: Option<(u32, u32)> = None;
        for (pos, &phys) in self.order.iter().enumerate() {
            let invalid = self.flash.invalid_pages(phys);
            if best.is_none_or(|(_, b)| invalid > b) {
                best = Some((pos as u32, invalid));
            }
        }
        match best {
            Some((pos, invalid)) if invalid > 0 => Ok(pos),
            _ => Err(EnvyError::ArrayFull),
        }
    }

    /// Sprite LFS cost-benefit victim [13]: maximize
    /// `age × (1 − u) / 2u`, where age is measured in flushed pages since
    /// the segment last received a write and u is its live fraction. The
    /// ratio trades the space reclaimed (1 − u) against the copy work
    /// (the `2u`: read + rewrite of live data) weighted by how long the
    /// segment's free space would likely remain stable (age).
    fn cost_benefit_victim(&self) -> Result<u32, EnvyError> {
        let now = self.flush_clock;
        let pps = self.config.geometry.pages_per_segment() as f64;
        let mut best: Option<(u32, f64)> = None;
        for (pos, &phys) in self.order.iter().enumerate() {
            if self.flash.invalid_pages(phys) == 0 {
                continue;
            }
            let u = self.flash.valid_pages(phys) as f64 / pps;
            let age = (now - self.seg_last_write[phys as usize]) as f64 + 1.0;
            let score = if u <= 0.0 {
                f64::INFINITY
            } else {
                age * (1.0 - u) / (2.0 * u)
            };
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((pos as u32, score));
            }
        }
        best.map(|(pos, _)| pos).ok_or(EnvyError::ArrayFull)
    }

    /// Find (or make) space in a partition: write into the active segment;
    /// when it fills, advance in FIFO order, cleaning the next segment
    /// (§4.4: "a FIFO cleaning order is used within each partition …
    /// written sequentially into the active segment").
    fn partition_slot(&mut self, part: u32, ops: &mut Vec<BgOp>) -> Result<u32, EnvyError> {
        let PolicyState::Partitioned(p) = &self.policy else {
            unreachable!("partition_slot requires partitioned policy");
        };
        let range = p.positions_of(part);
        let len = range.end - range.start;
        let mut pos = p.active[part as usize];
        if self.has_space(self.order[pos as usize]) {
            return Ok(pos);
        }
        for _ in 0..len {
            // Advance FIFO within the partition.
            pos = if pos + 1 >= range.end {
                range.start
            } else {
                pos + 1
            };
            if !self.has_space(self.order[pos as usize]) {
                self.clean_position(pos, ops)?;
            }
            if self.has_space(self.order[pos as usize]) {
                if let PolicyState::Partitioned(p) = &mut self.policy {
                    p.active[part as usize] = pos;
                }
                return Ok(pos);
            }
        }
        Err(EnvyError::ArrayFull)
    }

    /// Plan the locality-gathering redistribution for a clean of `pos`
    /// (§4.3): "When a segment is cleaned, the cleaner computes the
    /// product of that segment's cleaning cost and the frequency with
    /// which it is being cleaned. This value is compared to the average
    /// over all segments. If the value of the product for the cleaned
    /// segment is above the average, its utilization should be lowered.
    /// Otherwise, it should be increased. Pages are transferred between
    /// the cleaned segment and its neighbors."
    ///
    /// Transfers respect the migration directions: pages headed to a
    /// higher-numbered partition leave from the head (cold end); pages
    /// pulled down from a higher neighbour come from its tail (hot end).
    pub(crate) fn lg_plan(&mut self, pos: u32) -> LgPlan {
        let PolicyState::Partitioned(p) = &mut self.policy else {
            return LgPlan::None;
        };
        let nparts = p.active.len() as u32;
        if nparts < 2 || !self.config.lg_redistribute {
            return LgPlan::None;
        }
        let part = p.partition_of(pos);
        let flushes = self.flush_clock;

        // Update this partition's cleaning-frequency estimate from the
        // inter-clean gap measured in flushed pages.
        let gap = flushes.saturating_sub(p.last_clean_flush[part as usize]) + 1;
        p.last_clean_flush[part as usize] = flushes;
        p.freq[part as usize].record(1.0 / gap as f64);
        let freq = p.freq[part as usize].value().expect("recorded above");

        // Partition utilization and cleaning cost u/(1-u), Figure 6.
        let pps = self.config.geometry.pages_per_segment() as f64;
        let part_util = |p: &PartitionedState, q: u32| -> f64 {
            let range = p.positions_of(q);
            let cap = (range.end - range.start) as f64 * pps;
            let live: u64 = range
                .clone()
                .map(|pp| self.flash.valid_pages(self.order[pp as usize]) as u64)
                .sum();
            live as f64 / cap
        };
        let cost_of = |u: f64| -> f64 {
            if u >= 0.99 {
                99.0
            } else {
                u / (1.0 - u)
            }
        };
        let u_here = part_util(p, part);
        let product = freq * cost_of(u_here);

        // Average product over all partitions (unknown frequencies count
        // as zero: partitions that never clean have no cleaning load).
        let mut sum = 0.0;
        for q in 0..nparts {
            let f = p.freq[q as usize].value().unwrap_or(0.0);
            sum += f * cost_of(part_util(p, q));
        }
        let avg = sum / nparts as f64;
        if avg <= 0.0 {
            return LgPlan::None;
        }
        // Dead band: under uniform traffic every product is (noisily)
        // equal; acting on the noise only churns pages. This is what pins
        // pure LG at the fixed cost of 4 for uniform access (§4.3).
        let band = 0.25 * avg;
        let range = p.positions_of(part);
        let cap = (range.end - range.start) as f64 * pps;
        let desired_cost = (avg / freq).max(0.01);
        let u_star = (desired_cost / (1.0 + desired_cost)).clamp(0.02, 0.98);
        let max_move = (pps as u32 / 8).max(1);

        if product <= avg + band {
            return LgPlan::None;
        }
        // Too much cleaning load: shed live pages toward the cold end of
        // the array (from the head — the victim's coldest pages); the
        // last partition sheds downward instead, from its tail.
        let excess = ((u_here - u_star) * cap).floor();
        let victim_live = self.flash.valid_pages(self.order[pos as usize]);
        let want = (excess.max(0.0) as u32).min(max_move).min(victim_live);
        if want == 0 {
            return LgPlan::None;
        }
        // Prefer shedding toward the cold end (cold pages from the head);
        // when everything above is packed — e.g. after a hot spot moved
        // into previously cold territory — fall back to shedding hot
        // (tail) pages downward so free space can flow back. This is the
        // bidirectional aspect of the paper's transfer scheme.
        let upward = part + 1 < nparts;
        let plan = Self::plan_dest_slots(p, &self.order, &self.flash, part, want, upward);
        if plan.total > 0 {
            return LgPlan::Shed(plan);
        }
        let fallback = Self::plan_dest_slots(p, &self.order, &self.flash, part, want, !upward);
        if fallback.total > 0 {
            LgPlan::Shed(fallback)
        } else {
            LgPlan::None
        }
    }

    /// Fill-order slots with erased space in the partitions beyond
    /// `part` in the shed direction (upward when `upward`, else
    /// downward), nearest partition first. Hot neighbours are often full;
    /// scanning onward lets free space keep flowing toward the hot end of
    /// the array.
    fn plan_dest_slots(
        p: &PartitionedState,
        order: &[u32],
        flash: &envy_flash::FlashArray,
        part: u32,
        want: u32,
        upward: bool,
    ) -> ShedPlan {
        let nparts = (p.positions.div_ceil(p.k)).max(1);
        let mut dests = Vec::new();
        let mut remaining = want;
        let parts: Vec<u32> = if upward {
            (part + 1..nparts).collect()
        } else {
            (0..part).rev().collect()
        };
        // Receivers are capped below full so shed pages do not stuff a
        // neighbour to 100% live (which would just move the cleaning
        // hot-spot one partition over).
        let pps = flash.geometry().pages_per_segment();
        let live_cap = pps - (pps / 8).max(1);
        'outer: for dest_part in parts {
            let range = p.positions_of(dest_part);
            let len = range.end - range.start;
            let start = p.active[dest_part as usize].clamp(range.start, range.end - 1);
            for i in 0..len {
                let pos = range.start + (start - range.start + i) % len;
                let seg = order[pos as usize];
                let free = flash.erased_pages(seg);
                let room = live_cap.saturating_sub(flash.valid_pages(seg)).min(free);
                if room > 0 {
                    let take = room.min(remaining);
                    dests.push((pos, take));
                    remaining -= take;
                    if remaining == 0 {
                        break 'outer;
                    }
                }
            }
        }
        ShedPlan {
            total: want - remaining,
            dests,
            from_head: upward,
        }
    }

    /// Emergency shed: the victim segment is 100 % live and cleaning it
    /// in place cannot create space. Divert pages to any partition with
    /// room (rare; only possible when redistribution is disabled or
    /// utilization is extreme).
    pub(crate) fn forced_shed_plan(&self, pos: u32) -> ShedPlan {
        let PolicyState::Partitioned(p) = &self.policy else {
            return ShedPlan::default();
        };
        let part = p.partition_of(pos);
        let pps = self.config.geometry.pages_per_segment();
        let want = (pps / 16).max(1);
        let up = Self::plan_dest_slots(p, &self.order, &self.flash, part, want, true);
        if up.total > 0 {
            return up;
        }
        Self::plan_dest_slots(p, &self.order, &self.flash, part, want, false)
    }
}
