//! The eNVy controller engine: state and logical operations.
//!
//! The engine owns the Flash array, the SRAM write buffer, the page table
//! and the cleaning-policy state, and implements every state transition of
//! the system — copy-on-write, flushing, cleaning, wear leveling,
//! transactions and recovery — as *logical* operations that also report
//! the device time each step would cost (as [`crate::timing::BgOp`]s).
//! The timing layer in [`crate::store`] replays that time against the
//! simulated clock.
//!
//! # Segment positions
//!
//! Cleaning policies reason about stable *positions* (the paper's segment
//! numbering for locality gathering), while physical segments rotate
//! through the spare role. `order[position] = physical segment` and
//! `pos_of[physical] = position` maintain the indirection; exactly one
//! physical segment — the spare — has no position and is always erased
//! (§3.4: "eNVy must always keep one segment completely erased").

mod clean;
mod faults;
mod flush;
mod host;
mod policy;
mod recovery;
#[cfg(test)]
mod tests;
mod txn;
mod wear;

pub use faults::{FaultPlan, InjectionPoint};
pub use host::{ReadSource, WriteKind, WriteResult};
pub use policy::PolicyState;
pub use recovery::{CleanJournal, RecoveryReport};
pub use txn::ShadowTable;

use crate::addr::AddrMap;
use crate::config::EnvyConfig;
use crate::error::EnvyError;
use crate::mmu::Mmu;
use crate::page_table::PageTable;
use crate::stats::EnvyStats;
use envy_flash::FlashArray;
use envy_sram::WriteBuffer;

/// Marker for "this physical segment has no position" (it is the spare).
pub(crate) const POS_NONE: u32 = u32::MAX;

/// The eNVy controller state machine.
///
/// Most users interact through [`crate::store::EnvyStore`], which adds
/// byte-granularity addressing and the timing model on top. The engine
/// is `Clone`: every field is plain owned state, so a clone is an exact,
/// independent snapshot — the basis of [`Engine::fork`].
#[derive(Debug, Clone)]
pub struct Engine {
    pub(crate) config: EnvyConfig,
    pub(crate) addr_map: AddrMap,
    pub(crate) flash: FlashArray,
    pub(crate) buffer: WriteBuffer,
    pub(crate) page_table: PageTable,
    pub(crate) mmu: Mmu,
    pub(crate) policy: PolicyState,
    /// `order[position] = physical segment`.
    pub(crate) order: Vec<u32>,
    /// `pos_of[physical segment] = position`, [`POS_NONE`] for the spare.
    pub(crate) pos_of: Vec<u32>,
    /// The always-erased physical segment.
    pub(crate) spare: u32,
    pub(crate) stats: EnvyStats,
    pub(crate) shadows: ShadowTable,
    /// Pages first created (fresh-allocated) inside an open transaction,
    /// mapped to their writer: they have no Flash shadow, and rollback
    /// returns them to unmapped. Together with the shadow directory this
    /// is the per-transaction write set.
    pub(crate) txn_fresh: std::collections::HashMap<crate::addr::LogicalPage, u64>,
    /// Slot table of open transactions, in begin order. Capacity is
    /// [`crate::EnvyConfig::txn_slots`]; recovery rolls back survivors
    /// in this order.
    pub(crate) open_txns: Vec<u64>,
    pub(crate) next_txn_id: u64,
    /// Increment between successive transaction ids (see
    /// [`Engine::seed_txn_ids`]); 1 for a standalone controller.
    pub(crate) txn_id_stride: u64,
    /// Durable commit records (battery-backed SRAM, §6 + §3.4): a record
    /// is pushed at the atomic commit point of [`Engine::txn_commit`] and
    /// removed once that transaction's shadow release completes.
    /// [`Engine::recover`] treats each surviving record as "committed"
    /// and finishes the release independently.
    pub(crate) txn_journal: Vec<u64>,
    /// Scratch rollback list reused by abort/recovery so a rollback
    /// does not allocate per transaction.
    pub(crate) txn_scratch: Vec<(crate::addr::LogicalPage, crate::addr::FlashLocation)>,
    pub(crate) journal: Option<CleanJournal>,
    pub(crate) wear_in_progress: bool,
    /// Segment parked with cold data by the last wear swap; ineligible
    /// for another swap until normal cleaning recycles it.
    pub(crate) wear_parked: Option<u32>,
    /// Flush-sequence number of the most recent write into each physical
    /// segment — the age input of the cost-benefit baseline policy.
    pub(crate) seg_last_write: Vec<u64>,
    /// Logical clock advanced by every page flush. Policies measure
    /// segment age and cleaning frequency against this clock; unlike the
    /// `pages_flushed` statistic it is never reset (see [`Engine::fork`]),
    /// so it stays coherent with `seg_last_write`.
    pub(crate) flush_clock: u64,
    /// Scratch page buffer reused by copies.
    pub(crate) scratch: Vec<u8>,
    /// Persistent resident-scan buffer reused by cleaning and wear
    /// leveling, so a paper-scale clean does not allocate a fresh list of
    /// up to 65 536 residents per victim.
    pub(crate) resident_scan: Vec<(u32, crate::addr::LogicalPage)>,
    /// Armed fault-injection state ([`FaultPlan`]); `None` when running
    /// clean. Boxed so the unarmed fast path carries one pointer.
    pub(crate) faults: Option<Box<faults::FaultState>>,
    /// Structured event trace ([`crate::trace::TraceRing`]); disabled by
    /// default and behavior-neutral when enabled.
    pub(crate) trace: crate::trace::TraceRing,
}

impl Engine {
    /// Build a controller from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnvyError::BadConfig`] if the configuration is invalid.
    pub fn new(config: EnvyConfig) -> Result<Engine, EnvyError> {
        config.validate()?;
        let geo = config.geometry;
        let flash = FlashArray::new(geo, config.timings, config.store_data);
        let buffer = WriteBuffer::new(
            config.buffer_pages,
            geo.page_bytes() as usize,
            config.logical_pages,
            config.store_data,
        );
        let page_table = PageTable::new(config.logical_pages, &geo);
        let mmu = Mmu::new(config.mmu_entries);
        let positions = geo.segments() - 1;
        let order: Vec<u32> = (0..positions).collect();
        let mut pos_of = vec![POS_NONE; geo.segments() as usize];
        for (pos, &phys) in order.iter().enumerate() {
            pos_of[phys as usize] = pos as u32;
        }
        let spare = positions; // the last physical segment starts as spare
        let policy = PolicyState::new(&config, positions);
        Ok(Engine {
            addr_map: AddrMap::new(geo.page_bytes()),
            scratch: vec![0xFF; geo.page_bytes() as usize],
            resident_scan: Vec::new(),
            config,
            flash,
            buffer,
            page_table,
            mmu,
            policy,
            order,
            pos_of,
            spare,
            stats: EnvyStats::default(),
            shadows: ShadowTable::default(),
            txn_fresh: std::collections::HashMap::new(),
            open_txns: Vec::new(),
            next_txn_id: 1,
            txn_id_stride: 1,
            txn_journal: Vec::new(),
            txn_scratch: Vec::new(),
            journal: None,
            wear_in_progress: false,
            wear_parked: None,
            seg_last_write: vec![0; geo.segments() as usize],
            flush_clock: 0,
            faults: None,
            trace: crate::trace::TraceRing::default(),
        })
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EnvyConfig {
        &self.config
    }

    /// Resize the transaction slot table. The capacity only gates
    /// [`Engine::txn_begin`], so resizing an existing engine (e.g. a
    /// fork of a churned baseline) is safe at any point where no more
    /// than `slots` transactions are already open.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or below the number of currently open
    /// transactions.
    pub fn set_txn_slots(&mut self, slots: u32) {
        assert!(slots >= 1, "at least one transaction slot");
        assert!(
            self.open_txns.len() <= slots as usize,
            "cannot shrink the slot table below {} open transactions",
            self.open_txns.len()
        );
        self.config.txn_slots = slots;
    }

    /// Snapshot the engine for an independent experiment run: the clone
    /// carries the full device state (Flash contents and wear, buffered
    /// pages, page table, policy state) but starts measuring from zero —
    /// controller, MMU and Flash operation counters are all reset.
    ///
    /// This lets a sweep build and warm one baseline system, then fork it
    /// per point instead of repeating the prefill/churn for every point.
    #[must_use]
    pub fn fork(&self) -> Engine {
        let mut forked = self.clone();
        forked.stats = EnvyStats::default();
        forked.mmu.reset_stats();
        forked.flash.reset_stats();
        forked.disarm_faults();
        forked.trace.clear();
        forked
    }

    /// Controller statistics.
    pub fn stats(&self) -> &EnvyStats {
        &self.stats
    }

    /// The structured event trace (disabled by default).
    pub fn trace(&self) -> &crate::trace::TraceRing {
        &self.trace
    }

    /// Mutable trace access (enable/disable, timestamp advance).
    pub fn trace_mut(&mut self) -> &mut crate::trace::TraceRing {
        &mut self.trace
    }

    /// MMU hit/miss accounting.
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// The Flash substrate (wear and operation counters).
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Number of pages currently in the SRAM write buffer.
    pub fn buffered_pages(&self) -> usize {
        self.buffer.len()
    }

    /// Number of segment positions (segments minus the spare).
    pub fn positions(&self) -> u32 {
        self.order.len() as u32
    }

    /// The physical segment currently occupying a position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn segment_at(&self, pos: u32) -> u32 {
        self.order[pos as usize]
    }

    /// Live-data fraction of the segment at a position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn position_utilization(&self, pos: u32) -> f64 {
        self.flash.utilization(self.order[pos as usize])
    }

    /// First erased page index of a physical segment (pages are written
    /// sequentially from the head, so erased pages form the tail).
    pub(crate) fn write_cursor(&self, phys: u32) -> u32 {
        self.config.geometry.pages_per_segment() - self.flash.erased_pages(phys)
    }

    /// Whether a physical segment has room for another page.
    pub(crate) fn has_space(&self, phys: u32) -> bool {
        self.flash.erased_pages(phys) > 0
    }

    /// Pre-populate the logical array: every logical page is programmed
    /// directly into Flash, sequentially, leaving each segment at the
    /// configured utilization. This is the steady-state starting point for
    /// the paper's experiments (a freshly loaded database).
    ///
    /// # Errors
    ///
    /// Propagates Flash errors (which indicate an engine bug) and
    /// [`EnvyError::ArrayFull`] if the logical space cannot fit.
    pub fn prefill(&mut self) -> Result<(), EnvyError> {
        let pps = self.config.geometry.pages_per_segment() as u64;
        let positions = self.order.len() as u64;
        let logical = self.config.logical_pages;
        // Spread logical pages evenly across positions, sequentially:
        // position 0 gets pages [0, per), position 1 [per, 2*per), etc.
        let per = logical.div_ceil(positions);
        if per > pps {
            return Err(EnvyError::ArrayFull);
        }
        // One erased frame shared by every programmed page (the array
        // copies it in), instead of an allocation per page.
        let erased = self
            .config
            .store_data
            .then(|| vec![0xFF; self.addr_map.page_bytes() as usize]);
        let mut lp: u64 = 0;
        'outer: for pos in 0..positions {
            let phys = self.order[pos as usize];
            for _ in 0..per {
                if lp >= logical {
                    break 'outer;
                }
                let page = self.write_cursor(phys);
                self.flash.program_page(phys, page, erased.as_deref())?;
                self.page_table.map_flash(
                    lp,
                    crate::addr::FlashLocation {
                        segment: phys,
                        page,
                    },
                );
                lp += 1;
            }
        }
        Ok(())
    }

    /// Verify every cross-structure invariant; used by tests and
    /// [`Engine::recover`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.page_table.check_consistency()?;
        let geo = &self.config.geometry;
        // The spare is fully erased and has no position.
        if self.flash.erased_pages(self.spare) != geo.pages_per_segment() {
            return Err(format!("spare segment {} is not fully erased", self.spare));
        }
        if self.pos_of[self.spare as usize] != POS_NONE {
            return Err("spare segment has a position".into());
        }
        // order/pos_of are mutually inverse and cover all non-spare
        // segments.
        for (pos, &phys) in self.order.iter().enumerate() {
            if self.pos_of[phys as usize] != pos as u32 {
                return Err(format!("order/pos_of mismatch at position {pos}"));
            }
        }
        let placed = self.pos_of.iter().filter(|&&p| p != POS_NONE).count();
        if placed != self.order.len() {
            return Err("pos_of count does not match order".into());
        }
        // Valid page counts match page-table residency plus nothing else:
        // every Valid flash page must be referenced by the page table.
        for seg in 0..geo.segments() {
            let resident = self.page_table.resident_count(seg);
            let valid = self.flash.valid_pages(seg);
            if resident != valid {
                return Err(format!(
                    "segment {seg}: {valid} valid pages but {resident} page-table residents"
                ));
            }
            // Erased pages form the tail (sequential-write invariant).
            let cursor = self.write_cursor(seg);
            for page in cursor..geo.pages_per_segment() {
                if self.flash.page_state(seg, page) != envy_flash::PageState::Erased {
                    return Err(format!(
                        "segment {seg} page {page} behind the write cursor is not erased"
                    ));
                }
            }
        }
        // Buffered pages are exactly the SRAM-mapped logical pages.
        let mut sram_mapped = 0u64;
        for lp in 0..self.page_table.logical_pages() {
            if self.page_table.lookup(lp) == crate::addr::Location::Sram {
                sram_mapped += 1;
                if !self.buffer.contains(lp) {
                    return Err(format!(
                        "logical page {lp} maps to SRAM but is not buffered"
                    ));
                }
            }
        }
        if sram_mapped != self.buffer.len() as u64 {
            return Err(format!(
                "{} buffered pages but {sram_mapped} SRAM mappings",
                self.buffer.len()
            ));
        }
        // Shadow pages reference invalid flash pages.
        self.shadows.check(&self.flash)?;
        Ok(())
    }
}
