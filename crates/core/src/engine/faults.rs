//! Deterministic fault injection: power loss at numbered points, chip
//! verify failures, and torn multi-chip programs.
//!
//! The paper's recovery story (§3.4) rests on every controller operation
//! being safe to lose power in the middle of: the write buffer and page
//! table live in battery-backed SRAM, the clean journal is persistent,
//! and everything else is reconstructed. This module makes that claim
//! testable. A [`FaultPlan`] arms the engine so that a chosen
//! [`InjectionPoint`] aborts the operation in flight with
//! [`EnvyError::PowerLoss`], leaving all persistent state *exactly* as a
//! real power cut would; the harness then calls
//! [`Engine::power_failure`] and [`Engine::recover`] and verifies the
//! recovery contract (see `docs/CRASH_CONSISTENCY.md`).
//!
//! Fault plans are fully deterministic: the same plan over the same
//! workload crashes at the same operation, so every failure a randomized
//! checker finds is replayable from its seed.

use crate::engine::Engine;
use crate::error::EnvyError;
use envy_flash::FlashFaults;

/// A numbered place inside a controller operation where a power failure
/// can be injected.
///
/// Each point sits between (or inside) the primitive steps of flush,
/// clean, wear-leveling and transaction commit. The `During*` points
/// model *torn* operations: the flash op itself is cut mid-way (some of
/// the 256 chips in the bank programmed, others not), not just the
/// controller losing its place between ops. The invariant recovery must
/// restore at each point is cataloged in `docs/CRASH_CONSISTENCY.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InjectionPoint {
    /// Flush: destination resolved (cleaning done), nothing programmed.
    FlushBeforeProgram,
    /// Flush: the page program torn mid-transfer (prefix of chips
    /// written). The buffered SRAM copy is still the page of record.
    FlushDuringProgram,
    /// Flush: page fully programmed, page table still points at SRAM.
    FlushAfterProgram,
    /// Flush: page table repointed at Flash, page not yet popped from
    /// the buffer.
    FlushAfterMap,
    /// Clean: journal written, no data copied yet.
    CleanAfterJournal,
    /// Clean: a live-page copy torn mid-transfer.
    CleanDuringCopy,
    /// Clean: between two live-page copies (some pages moved and
    /// remapped, the rest still in the victim).
    CleanAfterCopy,
    /// Clean: a transaction shadow-page relocation torn mid-transfer.
    CleanDuringShadowCopy,
    /// Clean: all data out of the victim, erase not yet issued.
    CleanBeforeErase,
    /// Clean: the victim erase torn (every page indeterminate).
    CleanDuringErase,
    /// Clean: victim erased, segment rotation not yet performed.
    CleanAfterErase,
    /// Clean: rotation done, journal not yet cleared.
    CleanAfterRotate,
    /// Wear swap: journal written for a wear relocation, nothing copied.
    WearAfterJournal,
    /// Wear swap: a relocation copy torn mid-transfer.
    WearDuringCopy,
    /// Wear swap: between two relocation copies.
    WearAfterCopy,
    /// Commit: requested but the commit record not yet journaled — the
    /// transaction must roll back on recovery.
    CommitBefore,
    /// Commit: the commit record cleared after a full release — the
    /// transaction is durable and recovery has nothing to do.
    CommitAfterPoint,
    /// Commit: the commit record journaled, shadow bookkeeping not yet
    /// released — recovery must finish the commit (release the shadows
    /// and clear the record), never roll back.
    CommitAfterJournal,
    /// Abort: requested but no page restored yet — recovery must finish
    /// the rollback (the transaction stays open across the crash).
    AbortBefore,
    /// Abort: between two page restores (a prefix of the written pages
    /// repointed at their shadows, the rest still showing transaction
    /// data) — recovery must restore the remainder.
    AbortMidRollback,
    /// Abort: every page restored, the transaction id not yet cleared —
    /// recovery re-runs an empty rollback and closes the transaction.
    AbortAfterRollback,
    /// Begin: the write buffer drained, no slot taken yet — recovery has
    /// no transaction to resolve (the begin was never acknowledged).
    BeginAfterDrain,
    /// Begin: the slot is taken but the id was never returned to the
    /// caller — recovery rolls back an empty transaction.
    BeginAfterOpen,
}

impl InjectionPoint {
    /// Every injection point, in catalog order. `ALL[i].index() == i`.
    pub const ALL: [InjectionPoint; 23] = [
        InjectionPoint::FlushBeforeProgram,
        InjectionPoint::FlushDuringProgram,
        InjectionPoint::FlushAfterProgram,
        InjectionPoint::FlushAfterMap,
        InjectionPoint::CleanAfterJournal,
        InjectionPoint::CleanDuringCopy,
        InjectionPoint::CleanAfterCopy,
        InjectionPoint::CleanDuringShadowCopy,
        InjectionPoint::CleanBeforeErase,
        InjectionPoint::CleanDuringErase,
        InjectionPoint::CleanAfterErase,
        InjectionPoint::CleanAfterRotate,
        InjectionPoint::WearAfterJournal,
        InjectionPoint::WearDuringCopy,
        InjectionPoint::WearAfterCopy,
        InjectionPoint::CommitBefore,
        InjectionPoint::CommitAfterPoint,
        InjectionPoint::CommitAfterJournal,
        InjectionPoint::AbortBefore,
        InjectionPoint::AbortMidRollback,
        InjectionPoint::AbortAfterRollback,
        InjectionPoint::BeginAfterDrain,
        InjectionPoint::BeginAfterOpen,
    ];

    /// Stable catalog number of this point.
    pub fn index(self) -> usize {
        InjectionPoint::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every point is in ALL")
    }

    /// Whether this point tears a flash operation mid-transfer rather
    /// than cutting power between operations.
    pub fn is_torn(self) -> bool {
        matches!(
            self,
            InjectionPoint::FlushDuringProgram
                | InjectionPoint::CleanDuringCopy
                | InjectionPoint::CleanDuringShadowCopy
                | InjectionPoint::CleanDuringErase
                | InjectionPoint::WearDuringCopy
        )
    }

    /// Short stable name for reports and bench output.
    pub fn label(self) -> &'static str {
        match self {
            InjectionPoint::FlushBeforeProgram => "flush_before_program",
            InjectionPoint::FlushDuringProgram => "flush_during_program",
            InjectionPoint::FlushAfterProgram => "flush_after_program",
            InjectionPoint::FlushAfterMap => "flush_after_map",
            InjectionPoint::CleanAfterJournal => "clean_after_journal",
            InjectionPoint::CleanDuringCopy => "clean_during_copy",
            InjectionPoint::CleanAfterCopy => "clean_after_copy",
            InjectionPoint::CleanDuringShadowCopy => "clean_during_shadow_copy",
            InjectionPoint::CleanBeforeErase => "clean_before_erase",
            InjectionPoint::CleanDuringErase => "clean_during_erase",
            InjectionPoint::CleanAfterErase => "clean_after_erase",
            InjectionPoint::CleanAfterRotate => "clean_after_rotate",
            InjectionPoint::WearAfterJournal => "wear_after_journal",
            InjectionPoint::WearDuringCopy => "wear_during_copy",
            InjectionPoint::WearAfterCopy => "wear_after_copy",
            InjectionPoint::CommitBefore => "commit_before",
            InjectionPoint::CommitAfterPoint => "commit_after_point",
            InjectionPoint::CommitAfterJournal => "commit_after_journal",
            InjectionPoint::AbortBefore => "abort_before",
            InjectionPoint::AbortMidRollback => "abort_mid_rollback",
            InjectionPoint::AbortAfterRollback => "abort_after_rollback",
            InjectionPoint::BeginAfterDrain => "begin_after_drain",
            InjectionPoint::BeginAfterOpen => "begin_after_open",
        }
    }
}

/// A deterministic, seedable fault schedule for one engine.
///
/// Arm it with [`Engine::arm_faults`]. All schedules are counted in
/// operation order, so a plan replays identically over the same
/// workload:
///
/// * `crash` — power-fail at the given [`InjectionPoint`] the Nth time
///   execution reaches it (1-based). Fires once, then disarms, so
///   recovery itself never crashes.
/// * `torn_chips` — for `During*` program points, how many of the
///   bank's chips latch their byte before the cut (a byte prefix of the
///   page).
/// * `program_fail_ops` / `erase_fail_ops` — 1-based global operation
///   numbers at which the flash array reports `program_error` /
///   `erase_error`, exercising the controller's retry-then-remap path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Power-fail at `(point, nth_hit)`; `None` for no crash.
    pub crash: Option<(InjectionPoint, u64)>,
    /// Chips programmed before the cut in torn programs (bytes of the
    /// page that latch). Clamped to the page size by the flash layer.
    pub torn_chips: u32,
    /// 1-based page-program operation numbers that fail verify.
    pub program_fail_ops: Vec<u64>,
    /// 1-based segment-erase operation numbers that fail verify.
    pub erase_fail_ops: Vec<u64>,
}

impl FaultPlan {
    /// Plan a single power failure at `point`, the `nth` (1-based) time
    /// it is reached, with a default half-bank tear for torn points.
    pub fn crash_at(point: InjectionPoint, nth: u64) -> FaultPlan {
        FaultPlan {
            crash: Some((point, nth.max(1))),
            torn_chips: 128,
            ..FaultPlan::default()
        }
    }

    /// Override how many chips latch before a torn program is cut.
    #[must_use]
    pub fn with_torn_chips(mut self, chips: u32) -> FaultPlan {
        self.torn_chips = chips;
        self
    }

    /// Add program verify failures at the given 1-based operation
    /// numbers.
    #[must_use]
    pub fn with_program_failures(mut self, ops: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.program_fail_ops.extend(ops);
        self
    }

    /// Add erase verify failures at the given 1-based operation numbers.
    #[must_use]
    pub fn with_erase_failures(mut self, ops: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.erase_fail_ops.extend(ops);
        self
    }

    fn flash_faults(&self) -> Option<FlashFaults> {
        if self.program_fail_ops.is_empty() && self.erase_fail_ops.is_empty() {
            return None;
        }
        let mut faults = FlashFaults::default();
        faults
            .program_fail_ops
            .extend(self.program_fail_ops.iter().copied());
        faults
            .erase_fail_ops
            .extend(self.erase_fail_ops.iter().copied());
        Some(faults)
    }
}

/// Armed fault state carried by the engine (crash countdown + tear
/// width). The verify-failure schedules live in the flash array itself.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Remaining hits before the crash fires: `(point, countdown)`.
    crash: Option<(InjectionPoint, u64)>,
    /// Set once the crash has fired (and the countdown disarmed).
    fired: bool,
    torn_chips: u32,
}

impl Engine {
    /// Arm a fault plan on this engine, replacing any previous plan.
    ///
    /// With an empty plan this is equivalent to [`Engine::disarm_faults`]
    /// — the engine behaves byte-identically to an unarmed one.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.flash.set_faults(plan.flash_faults());
        self.faults = plan.crash.map(|crash| {
            Box::new(FaultState {
                crash: Some(crash),
                fired: false,
                torn_chips: plan.torn_chips,
            })
        });
    }

    /// Remove every armed fault; the engine runs clean from here on.
    pub fn disarm_faults(&mut self) {
        self.faults = None;
        self.flash.set_faults(None);
    }

    /// Whether an armed power-failure crash has fired. After a fired
    /// crash the countdown is disarmed, so recovery cannot crash again.
    pub fn crash_fired(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.fired)
    }

    /// Count a hit on `point`; `true` exactly when the armed countdown
    /// reaches zero here (the caller must then stop as if power was
    /// lost). Used directly by torn points, which perform the partial
    /// flash op before returning [`EnvyError::PowerLoss`].
    pub(crate) fn crash_armed(&mut self, point: InjectionPoint) -> bool {
        let Some(faults) = self.faults.as_deref_mut() else {
            return false;
        };
        match &mut faults.crash {
            Some((armed, countdown)) if *armed == point => {
                *countdown -= 1;
                if *countdown == 0 {
                    faults.crash = None;
                    faults.fired = true;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Count a hit on `point` and cut power (return
    /// [`EnvyError::PowerLoss`]) if the countdown fires here.
    pub(crate) fn crash_point(&mut self, point: InjectionPoint) -> Result<(), EnvyError> {
        if self.crash_armed(point) {
            Err(EnvyError::PowerLoss)
        } else {
            Ok(())
        }
    }

    /// Chips latched before the cut for torn programs (plan value, or
    /// a half bank when unarmed — unreachable in practice because torn
    /// points only tear when armed).
    pub(crate) fn torn_chips(&self) -> u32 {
        self.faults.as_ref().map_or(128, |f| f.torn_chips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvyConfig;

    fn engine() -> Engine {
        Engine::new(EnvyConfig::small_test()).unwrap()
    }

    #[test]
    fn all_points_are_distinct_and_indexed_in_order() {
        for (i, p) in InjectionPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let labels: std::collections::HashSet<_> =
            InjectionPoint::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), InjectionPoint::ALL.len());
    }

    #[test]
    fn crash_countdown_fires_on_nth_hit_then_disarms() {
        let mut e = engine();
        e.arm_faults(FaultPlan::crash_at(InjectionPoint::FlushBeforeProgram, 3));
        assert!(!e.crash_armed(InjectionPoint::FlushBeforeProgram));
        // A different point never consumes the countdown.
        assert!(!e.crash_armed(InjectionPoint::CleanBeforeErase));
        assert!(!e.crash_armed(InjectionPoint::FlushBeforeProgram));
        assert!(!e.crash_fired());
        assert!(e.crash_armed(InjectionPoint::FlushBeforeProgram));
        assert!(e.crash_fired());
        // Fired once; never again.
        assert!(!e.crash_armed(InjectionPoint::FlushBeforeProgram));
    }

    #[test]
    fn crash_point_returns_power_loss() {
        let mut e = engine();
        e.arm_faults(FaultPlan::crash_at(InjectionPoint::CommitBefore, 1));
        assert_eq!(
            e.crash_point(InjectionPoint::CommitBefore),
            Err(EnvyError::PowerLoss)
        );
        assert!(e.crash_point(InjectionPoint::CommitBefore).is_ok());
    }

    #[test]
    fn empty_plan_is_fully_disarmed() {
        let mut e = engine();
        e.arm_faults(FaultPlan::default());
        assert!(e.faults.is_none());
        assert!(e.flash.faults().is_none());
        e.arm_faults(FaultPlan::crash_at(InjectionPoint::FlushAfterMap, 1));
        e.disarm_faults();
        assert!(e.faults.is_none());
        assert!(!e.crash_armed(InjectionPoint::FlushAfterMap));
    }

    #[test]
    fn plan_builders_compose() {
        let plan = FaultPlan::crash_at(InjectionPoint::CleanDuringCopy, 2)
            .with_torn_chips(7)
            .with_program_failures([1, 4])
            .with_erase_failures([2]);
        assert_eq!(plan.crash, Some((InjectionPoint::CleanDuringCopy, 2)));
        assert_eq!(plan.torn_chips, 7);
        let mut e = engine();
        e.arm_faults(plan);
        assert_eq!(e.torn_chips(), 7);
        let flash_faults = e.flash.faults().unwrap();
        assert!(flash_faults.program_fail_ops.contains(&4));
        assert!(flash_faults.erase_fail_ops.contains(&2));
    }

    #[test]
    fn torn_points_are_the_during_variants() {
        let torn: Vec<_> = InjectionPoint::ALL
            .iter()
            .filter(|p| p.is_torn())
            .map(|p| p.label())
            .collect();
        assert_eq!(
            torn,
            [
                "flush_during_program",
                "clean_during_copy",
                "clean_during_shadow_copy",
                "clean_during_erase",
                "wear_during_copy",
            ]
        );
    }
}
