//! Crash and power-failure recovery.
//!
//! Everything the controller needs is in persistent memory: the Flash
//! array (inherently non-volatile), the battery-backed SRAM write buffer
//! and page table, the transaction state, and the cleaning journal
//! (§3.4: "The state of the cleaning process is kept in persistent
//! memory so the controller can recover quickly after a failure").
//! Volatile state — the MMU mapping cache, the copy scratch buffer, and
//! in-flight background-operation timing — is discarded by
//! [`Engine::power_failure`] and rebuilt here.
//!
//! [`Engine::recover`] restores the invariants in five steps, each
//! matched to the debris one class of crash leaves behind (the full
//! catalog is in `docs/CRASH_CONSISTENCY.md` and, for transactions,
//! `docs/TRANSACTIONS.md`):
//!
//! 1. release shadow bookkeeping of transactions that already passed
//!    their commit point (crash between commit point and release);
//! 2. scavenge *orphans* — valid flash pages no logical page references
//!    (a flush or copy that programmed, possibly torn, but never
//!    repointed the page table);
//! 3. drop buffered pages whose logical page no longer maps to SRAM (a
//!    flush that repointed the page table but never popped the buffer);
//! 4. replay the clean journal, completing any interrupted clean or
//!    wear relocation (this also relocates pinned transaction shadows
//!    off the victim);
//! 5. resolve every in-flight transaction to all-or-nothing,
//!    independently: each journaled commit record finishes its commit
//!    (release that transaction's shadows, clear its record); each open
//!    uncommitted transaction rolls back to its pre-transaction page
//!    images, in begin order.

use crate::addr::{Location, LogicalPage};
use crate::engine::Engine;
use crate::error::EnvyError;
use crate::timing::BgOp;
use envy_flash::PageState;

/// Persistent record of an in-progress clean or wear relocation (victim,
/// destination and position); copied pages are recoverable from the page
/// table itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanJournal {
    /// The position being cleaned.
    pub pos: u32,
    /// The physical victim segment.
    pub victim: u32,
    /// The physical destination (the spare at clean start).
    pub dest: u32,
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A mid-clean journal was found and the clean was completed.
    pub resumed_clean: bool,
    /// Pages that survived in the battery-backed write buffer.
    pub buffered_pages: usize,
    /// Shadow pages still protected for an open transaction.
    pub shadow_pages: usize,
    /// Orphaned valid flash pages invalidated (torn or unmapped
    /// programs cut by the failure).
    pub scavenged_pages: u64,
    /// Buffered pages discarded because their logical page already
    /// mapped to flash (the flush completed; only the pop was lost).
    pub dropped_buffer_pages: u64,
    /// Shadow entries released because their transaction had already
    /// passed its commit point.
    pub released_shadows: u64,
    /// Journaled commit records found, in commit order; each commit was
    /// completed (that transaction's writes are durable and visible).
    pub txn_completed: Vec<u64>,
    /// Open, uncommitted transactions found, in begin order; each was
    /// rolled back to its pre-transaction page images (its writes are
    /// gone).
    pub txn_rolled_back: Vec<u64>,
}

impl Engine {
    /// Simulate a power failure: volatile state is lost; Flash, the
    /// battery-backed buffer, page table, transaction ids and clean
    /// journal survive.
    ///
    /// Volatile state means the MMU mapping cache, the controller's copy
    /// scratch buffer (poisoned, so recovery cannot silently rely on
    /// mid-operation contents), and the in-progress flag of a wear swap.
    /// Callers holding un-replayed [`BgOp`]s must drop them — the timed
    /// store does this in [`crate::store::EnvyStore::power_failure`].
    pub fn power_failure(&mut self) {
        self.mmu.invalidate_all();
        self.scratch.fill(0xA5);
        self.wear_in_progress = false;
    }

    /// Recover after a power failure: rebuild volatile state, clear the
    /// debris of the interrupted operation, complete any journaled clean
    /// and verify consistency. See the module docs for the step-by-step
    /// contract.
    ///
    /// # Errors
    ///
    /// [`EnvyError::CorruptState`] if the persistent structures are
    /// inconsistent after repair (use [`Engine::check_invariants`] for
    /// details); cleaning errors while completing an interrupted clean.
    pub fn recover(&mut self, ops: &mut Vec<BgOp>) -> Result<RecoveryReport, EnvyError> {
        self.mmu.invalidate_all();
        // 1. Transactions past their commit point: the shadow directory
        // and fresh-page map may still hold entries for them; release
        // everything not owned by a still-open transaction.
        let released_shadows = self.shadows.release_stale(&self.open_txns);
        self.stats.recovery_stale_shadows.add(released_shadows);
        let open = std::mem::take(&mut self.open_txns);
        self.txn_fresh.retain(|_, t| open.contains(t));
        self.open_txns = open;
        // 2–3. Flush/copy debris.
        let scavenged_pages = self.scavenge_orphans()?;
        let dropped_buffer_pages = self.drop_stale_buffer_entries();
        // 4. Journal replay.
        let resumed_clean = if let Some(journal) = self.journal {
            self.finish_clean(journal, ops)?;
            true
        } else {
            false
        };
        // 5. Resolve every in-flight transaction to all-or-nothing,
        // independently. This runs after the clean replay so any shadows
        // the interrupted clean was relocating have already landed at
        // their final locations. A journaled commit record wins — that
        // transaction passed its durable commit point, so finish its
        // release; every remaining open transaction never committed and
        // rolls back, in begin order.
        let txn_completed: Vec<u64> = self.txn_journal.clone();
        for &txn in &txn_completed {
            self.finish_commit(txn);
        }
        let txn_rolled_back: Vec<u64> = self.open_txns.clone();
        for &txn in &txn_rolled_back {
            self.rollback_open(txn)?;
        }
        self.check_invariants()
            .map_err(|_| EnvyError::CorruptState)?;
        Ok(RecoveryReport {
            resumed_clean,
            buffered_pages: self.buffer.len(),
            shadow_pages: self.shadows.len(),
            scavenged_pages,
            dropped_buffer_pages,
            released_shadows,
            txn_completed,
            txn_rolled_back,
        })
    }

    /// Invalidate every valid flash page that no logical page
    /// references: the debris of a program (whole or torn) whose page-
    /// table update was cut off. Shadow pages are untouched — they are
    /// already invalid in the array.
    fn scavenge_orphans(&mut self) -> Result<u64, EnvyError> {
        let segments = self.config.geometry.segments();
        let pps = self.config.geometry.pages_per_segment();
        let mut referenced = vec![false; (segments as usize) * (pps as usize)];
        for lp in 0..self.page_table.logical_pages() {
            if let Location::Flash(loc) = self.page_table.lookup(lp) {
                referenced[(loc.segment * pps + loc.page) as usize] = true;
            }
        }
        let mut scavenged = 0u64;
        for seg in 0..segments {
            for page in 0..pps {
                if self.flash.page_state(seg, page) == PageState::Valid
                    && !referenced[(seg * pps + page) as usize]
                {
                    self.flash.invalidate_page(seg, page)?;
                    scavenged += 1;
                }
            }
        }
        self.stats.recovery_scavenged.add(scavenged);
        Ok(scavenged)
    }

    /// Drop buffered pages whose logical page does not map to SRAM: the
    /// flush already made the flash copy the page of record; only the
    /// buffer pop was lost.
    fn drop_stale_buffer_entries(&mut self) -> u64 {
        let stale: Vec<LogicalPage> = self
            .buffer
            .iter()
            .map(|p| p.logical)
            .filter(|&lp| self.page_table.lookup(lp) != Location::Sram)
            .collect();
        let dropped = stale.len() as u64;
        for lp in stale {
            self.buffer.remove(lp);
        }
        self.stats.recovery_dropped_buffer.add(dropped);
        dropped
    }

    /// Complete an interrupted clean: pages already copied were remapped
    /// before the crash, so the page table's remaining residents of the
    /// victim are exactly the uncopied pages. Re-executing the tail is
    /// idempotent — at worst the victim is erased a second time (one
    /// extra cycle) when the crash hit after the erase.
    fn finish_clean(
        &mut self,
        journal: CleanJournal,
        ops: &mut Vec<BgOp>,
    ) -> Result<(), EnvyError> {
        let CleanJournal { pos, victim, dest } = journal;
        for (page, lp) in self.page_table.residents_of(victim) {
            let t = self.copy_flash_page(
                crate::addr::FlashLocation {
                    segment: victim,
                    page,
                },
                dest,
                lp,
                None,
            )?;
            self.stats.clean_programs.incr();
            ops.push(BgOp::once(
                self.flash.bank_of(dest),
                crate::timing::BgKind::CleanCopy,
                t,
            ));
        }
        self.complete_clean_tail(pos, victim, dest, ops)?;
        self.stats.cleans.incr();
        Ok(())
    }

    /// Whether a clean is recorded as in progress (test support).
    pub fn clean_in_progress(&self) -> bool {
        self.journal.is_some()
    }
}
